"""Tests for the Column abstraction."""

import pytest

from repro.tables.column import Column
from repro.tables.types import ValueType


@pytest.fixture
def city_column():
    return Column("City", ["Manchester", "Salford", "Salford", None, "Bolton"])


@pytest.fixture
def patients_column():
    return Column("Patients", ["1202", "3572", "", "845"])


class TestConstruction:
    def test_requires_non_empty_name(self):
        with pytest.raises(ValueError):
            Column("", ["a"])

    def test_requires_string_name(self):
        with pytest.raises(ValueError):
            Column(None, ["a"])  # type: ignore[arg-type]

    def test_length(self, city_column):
        assert len(city_column) == 5

    def test_iteration_preserves_order(self, city_column):
        assert list(city_column)[:2] == ["Manchester", "Salford"]

    def test_getitem(self, city_column):
        assert city_column[0] == "Manchester"

    def test_equality(self):
        assert Column("a", ["1"]) == Column("a", ["1"])
        assert Column("a", ["1"]) != Column("a", ["2"])
        assert Column("a", ["1"]) != Column("b", ["1"])

    def test_from_numeric_preserves_none(self):
        column = Column.from_numeric("x", [1.0, None, 2.5])
        assert column.values[1] is None
        assert column.numeric_values == [1.0, 2.5]


class TestTyping:
    def test_text_column(self, city_column):
        assert city_column.value_type is ValueType.TEXT
        assert city_column.is_textual
        assert not city_column.is_numeric

    def test_numeric_column(self, patients_column):
        assert patients_column.value_type is ValueType.NUMERIC
        assert patients_column.is_numeric

    def test_empty_column(self):
        column = Column("empty", [None, "", "n/a"])
        assert column.value_type is ValueType.EMPTY
        assert not column.is_numeric
        assert not column.is_textual


class TestDerivedViews:
    def test_non_missing_strips_and_drops(self, city_column):
        assert city_column.non_missing == ["Manchester", "Salford", "Salford", "Bolton"]

    def test_numeric_values(self, patients_column):
        assert patients_column.numeric_values == [1202.0, 3572.0, 845.0]

    def test_distinct_values_preserve_first_occurrence_order(self, city_column):
        assert city_column.distinct_values == ["Manchester", "Salford", "Bolton"]

    def test_null_ratio(self, city_column):
        assert city_column.null_ratio == pytest.approx(1 / 5)

    def test_null_ratio_of_empty_column(self):
        assert Column("x", []).null_ratio == 1.0

    def test_distinct_ratio(self, city_column):
        assert city_column.distinct_ratio == pytest.approx(3 / 4)

    def test_distinct_ratio_empty(self):
        assert Column("x", [None]).distinct_ratio == 0.0

    def test_mean_string_length(self):
        column = Column("x", ["ab", "abcd"])
        assert column.mean_string_length == 3.0

    def test_head(self, city_column):
        assert city_column.head(2) == ["Manchester", "Salford"]

    def test_rename_keeps_values(self, city_column):
        renamed = city_column.rename("Town")
        assert renamed.name == "Town"
        assert renamed.values == city_column.values

    def test_take_selects_rows(self, city_column):
        taken = city_column.take([0, 4])
        assert taken.values == ["Manchester", "Bolton"]

    def test_estimated_bytes_positive(self, city_column):
        assert city_column.estimated_bytes() > 0
