"""Tests for CSV reading and writing."""

import pytest

from repro.tables.csv_io import read_csv, read_csv_directory, write_csv, write_csv_directory
from repro.tables.table import Table


@pytest.fixture
def sample_table():
    return Table.from_dict(
        "gp_list",
        {
            "Practice": ["Blackfriars", "Radclife Care"],
            "City": ["Salford", None],
            "Patients": ["3572", "2209"],
        },
    )


class TestRoundTrip:
    def test_write_then_read(self, sample_table, tmp_path):
        path = write_csv(sample_table, tmp_path / "gp_list.csv")
        loaded = read_csv(path)
        assert loaded.name == "gp_list"
        assert loaded.column_names == sample_table.column_names
        assert loaded.cardinality == sample_table.cardinality

    def test_missing_cells_round_trip_as_empty(self, sample_table, tmp_path):
        path = write_csv(sample_table, tmp_path / "gp_list.csv")
        loaded = read_csv(path)
        assert loaded.column("City").values[1] == ""
        assert loaded.column("City").non_missing == ["Salford"]

    def test_write_creates_parent_directories(self, sample_table, tmp_path):
        path = write_csv(sample_table, tmp_path / "nested" / "deep" / "t.csv")
        assert path.exists()


class TestReadCsv:
    def test_explicit_name_overrides_stem(self, sample_table, tmp_path):
        path = write_csv(sample_table, tmp_path / "file.csv")
        loaded = read_csv(path, name="custom")
        assert loaded.name == "custom"

    def test_max_rows_limits_read(self, sample_table, tmp_path):
        path = write_csv(sample_table, tmp_path / "t.csv")
        loaded = read_csv(path, max_rows=1)
        assert loaded.cardinality == 1

    def test_empty_file_raises(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ValueError):
            read_csv(empty)

    def test_blank_header_cells_get_positional_names(self, tmp_path):
        path = tmp_path / "odd.csv"
        path.write_text("Name,,Value\nfoo,bar,1\n")
        loaded = read_csv(path)
        assert loaded.column_names == ["Name", "column_1", "Value"]


class TestDirectoryIo:
    def test_write_and_read_directory(self, sample_table, tmp_path):
        other = sample_table.with_name("other")
        write_csv_directory([sample_table, other], tmp_path / "lake")
        tables = read_csv_directory(tmp_path / "lake")
        assert {table.name for table in tables} == {"gp_list", "other"}

    def test_max_tables_limits_directory_read(self, sample_table, tmp_path):
        write_csv_directory(
            [sample_table.with_name(f"t{i}") for i in range(5)], tmp_path / "lake"
        )
        tables = read_csv_directory(tmp_path / "lake", max_tables=2)
        assert len(tables) == 2

    def test_unparseable_files_are_skipped(self, sample_table, tmp_path):
        directory = tmp_path / "lake"
        write_csv_directory([sample_table], directory)
        (directory / "broken.csv").write_text("")
        tables = read_csv_directory(directory)
        assert {table.name for table in tables} == {"gp_list"}

    def test_empty_directory_returns_no_tables(self, tmp_path):
        (tmp_path / "lake").mkdir()
        assert read_csv_directory(tmp_path / "lake") == []
