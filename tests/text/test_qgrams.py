"""Tests for q-gram extraction from attribute names."""

from repro.text.qgrams import name_qgrams, normalise_name, qgrams


class TestNormaliseName:
    def test_lowercases(self):
        assert normalise_name("Practice Name") == "practice name"

    def test_strips_separators(self):
        assert normalise_name("practice_name") == "practice name"
        assert normalise_name("Practice-Name") == "practice name"

    def test_collapses_whitespace(self):
        assert normalise_name("  Practice   Name  ") == "practice name"


class TestQgrams:
    def test_paper_example(self):
        # The paper's Example 2: Address with q=4 (lower-cased here).
        assert qgrams("address", 4) == {"addr", "ddre", "dres", "ress"}

    def test_short_string_returns_itself(self):
        assert qgrams("gp", 4) == {"gp"}

    def test_empty_string(self):
        assert qgrams("", 4) == set()

    def test_q_equal_to_length(self):
        assert qgrams("city", 4) == {"city"}

    def test_invalid_q(self):
        import pytest

        with pytest.raises(ValueError):
            qgrams("abc", 0)

    def test_number_of_grams(self):
        assert len(qgrams("postcode", 4)) == len("postcode") - 4 + 1


class TestNameQgrams:
    def test_single_word_name(self):
        assert name_qgrams("City") == qgrams("city", 4)

    def test_multi_word_name_includes_concatenation(self):
        grams = name_qgrams("Practice Name")
        assert qgrams("practice", 4) <= grams
        assert qgrams("name", 4) <= grams
        assert "cena" in grams  # from the concatenation "practicename"

    def test_similar_names_share_grams(self):
        first = name_qgrams("Practice Name")
        second = name_qgrams("Practice")
        assert first & second

    def test_unrelated_names_share_few_grams(self):
        first = name_qgrams("Postcode")
        second = name_qgrams("Payment")
        overlap = len(first & second) / len(first | second)
        assert overlap < 0.2

    def test_empty_name(self):
        assert name_qgrams("") == set()

    def test_separator_insensitive(self):
        assert name_qgrams("practice_name") == name_qgrams("Practice Name")
