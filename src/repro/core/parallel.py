"""Sharded, multi-process index construction and query fan-out.

Figure 6a of the paper shows index construction dominating end-to-end cost:
a deployment indexes the lake once and answers many queries afterwards.
:class:`ParallelIndexBuilder` splits that one expensive pass across worker
processes; :class:`ParallelQueryExecutor` applies the same shard/merge
discipline to the query side, fanning one target's attributes out across
workers for the batched query engine
(:meth:`~repro.core.discovery.D3L.query_batch`).

:class:`ParallelIndexBuilder` works as follows:

1. the lake's table names are sorted and dealt round-robin into one shard
   per worker (deterministic for a given lake and worker count);
2. each worker process profiles its shard's tables and computes their
   signatures with the table-level batched passes
   (:meth:`~repro.core.indexes.D3LIndexes.table_signatures`);
3. the main process merges the shard results **in globally sorted table
   order** through :meth:`~repro.core.indexes.D3LIndexes.add_profiled_table`,
   i.e. the existing buffered forest inserts and batched signature-matrix
   appends.

Because signature computation is deterministic and the merge order is the
same sorted order a serial ``add_lake`` uses, a sharded build produces
signature matrices, forest contents, and therefore query rankings identical
to a single-process build — which is what ``tests/core/test_parallel_build.py``
locks down.
"""

from __future__ import annotations

import weakref
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.lake.datalake import DataLake
from repro.tables.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.indexes import D3LIndexes
    from repro.lake.datalake import AttributeRef

#: One shard worker's result: per table, the profile plus the per-attribute
#: signatures (``{attribute name: {evidence: signature or None}}``).
ShardResult = List[Tuple[object, Dict[str, dict]]]


def partition_tables(table_names: Sequence[str], shards: int) -> List[List[str]]:
    """Deal the sorted table names round-robin into ``shards`` groups.

    Sorting first makes the partition a pure function of the name set, so
    rebuilding the same lake — regardless of the order its tables were added
    in — always yields the same shards.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    ordered = sorted(table_names)
    return [ordered[index::shards] for index in range(shards)]


def _profile_and_sign_shard(payload: Tuple["D3LIndexes", List[Table]]) -> ShardResult:
    """Worker entry point: profile and sign every table of one shard.

    ``payload`` carries a fresh (empty) ``D3LIndexes`` so the worker uses
    exactly the same configuration, embedding model, and subject classifier
    as the merging process; nothing is inserted into the carried indexes.
    Signatures are batched across the whole shard, so every worker exploits
    the same cross-table vocabulary sharing a serial ``add_lake`` does.
    """
    indexes, tables = payload
    table_profiles = [indexes.profile_table(table) for table in tables]
    signatures = indexes.batch_signatures(table_profiles)
    return [
        (table_profile, signatures[table_profile.table_name])
        for table_profile in table_profiles
    ]


class ParallelIndexBuilder:
    """Builds a :class:`~repro.core.indexes.D3LIndexes` over process shards.

    The target indexes (and through them the configuration, embedding model,
    and subject classifier) must be picklable, since an empty clone is
    shipped to every worker.  ``workers=1`` degenerates to profiling in the
    main process through the identical code path, which is how the
    determinism tests compare the two.
    """

    def __init__(self, indexes: "D3LIndexes", workers: int) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.indexes = indexes
        self.workers = workers

    def _worker_clone(self) -> "D3LIndexes":
        """A fresh, empty indexes object sharing the target's configuration."""
        from repro.core.indexes import D3LIndexes

        return D3LIndexes(
            config=self.indexes.config,
            embedding_model=self.indexes.embedding_model,
            subject_classifier=self.indexes.subject_classifier,
        )

    def build(self, lake: DataLake) -> "D3LIndexes":
        """Profile and sign ``lake`` across the shards, then merge in order."""
        shards = [
            names for names in partition_tables(lake.table_names, self.workers) if names
        ]
        payloads = [
            (self._worker_clone(), [lake.table(name) for name in names])
            for names in shards
        ]
        if len(payloads) <= 1:
            shard_results = [_profile_and_sign_shard(payload) for payload in payloads]
        else:
            with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
                shard_results = list(pool.map(_profile_and_sign_shard, payloads))

        by_table: Dict[str, Tuple[object, Dict[str, dict]]] = {}
        for result in shard_results:
            for table_profile, signatures in result:
                by_table[table_profile.table_name] = (table_profile, signatures)
        for name in sorted(by_table):
            table_profile, signatures = by_table[name]
            self.indexes.add_profiled_table(table_profile, signatures)
        return self.indexes


# --------------------------------------------------------------------------- #
# SA-join verification fan-out
# --------------------------------------------------------------------------- #


def _verify_join_shard(payload) -> List[Tuple["AttributeRef", "AttributeRef", float]]:
    """Worker entry point: exact value-overlap of one shard's candidate pairs.

    ``payload`` is ``(samples, pairs)``: the value samples of exactly the
    refs this shard touches, plus the ``(left, right)`` ref pairs to verify.
    """
    from repro.core.profiles import sample_overlap

    samples, pairs = payload
    return [
        (left, right, sample_overlap(samples[left], samples[right]))
        for left, right in pairs
    ]


def verify_value_overlaps(
    samples: Dict["AttributeRef", frozenset],
    pairs: Sequence[Tuple["AttributeRef", "AttributeRef"]],
    workers: Optional[int] = None,
) -> Dict[Tuple["AttributeRef", "AttributeRef"], float]:
    """Exact overlap coefficients of many candidate pairs, optionally sharded.

    The verification step of SA-join graph construction: every blocked
    ``(subject attribute, candidate attribute)`` pair surviving the
    estimated-overlap pre-filter is scored with the same overlap coefficient
    as :meth:`~repro.core.profiles.AttributeProfile.value_overlap`.
    ``workers > 1`` deals the deduplicated pairs round-robin across worker
    processes, shipping each shard only the value samples its pairs touch.
    Because the overlap of a pair is a pure function of the two samples and
    the merge is keyed by pair, ``workers=1`` and ``workers=N`` return the
    identical mapping.
    """
    from repro.core.profiles import sample_overlap

    ordered = list(dict.fromkeys(pairs))
    if workers is None or workers <= 1 or len(ordered) <= 1:
        return {
            (left, right): sample_overlap(samples[left], samples[right])
            for left, right in ordered
        }
    shards = [shard for shard in (ordered[index::workers] for index in range(workers)) if shard]
    payloads = [
        (
            {ref: samples[ref] for pair in shard for ref in pair},
            shard,
        )
        for shard in shards
    ]
    if len(payloads) <= 1:
        shard_results = [_verify_join_shard(payload) for payload in payloads]
    else:
        with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
            shard_results = list(pool.map(_verify_join_shard, payloads))
    return {
        (left, right): overlap
        for result in shard_results
        for left, right, overlap in result
    }


#: One query shard worker's result: per target attribute, the sorted
#: candidate refs plus the per-evidence distance columns aligned with them
#: (``[(attribute name, refs, {evidence: column})]``).
QueryShardResult = List[Tuple[str, List, Dict]]


#: The query-worker process's resident copy of the indexes, pinned once by
#: the pool initializer so repeated queries do not re-ship the (potentially
#: very large) index state per query.
_QUERY_WORKER_INDEXES: Optional["D3LIndexes"] = None


def _init_query_worker(indexes: "D3LIndexes") -> None:
    """Pool initializer: pin this worker process's copy of the indexes."""
    global _QUERY_WORKER_INDEXES
    _QUERY_WORKER_INDEXES = indexes


def _collect_shard_candidate_distances(payload) -> QueryShardResult:
    """Worker entry point: batched candidate collection for one shard.

    ``payload`` is ``(table_name, entries, context)``: the target's name,
    this shard's ``(attribute name, profile)`` pairs, and the shared query
    context (active evidence, pool, exclusions, subject-related tables).
    The indexes are the worker-resident copy installed by
    :func:`_init_query_worker`; the worker runs exactly the same batched
    sweeps the single-process engine runs on its shard.
    """
    table_name, entries, context = payload
    from repro.core.discovery import collect_attribute_candidate_distances

    return collect_attribute_candidate_distances(
        _QUERY_WORKER_INDEXES, table_name, entries, **context
    )


class ParallelQueryExecutor:
    """Fans one query's target attributes out across worker processes.

    The sorted attribute names are dealt round-robin into one shard per
    worker (:func:`partition_tables` — the partition is a pure function of
    the attribute-name set), each worker collects its shard's candidate
    distance vectors through the batched sweeps of
    :func:`~repro.core.discovery.collect_attribute_candidate_distances`, and
    the merge re-emits the results in the target profile's original
    attribute order — the order the sequential engine iterates.  Because
    every per-attribute result is a pure function of the (read-only) indexes
    and the shared query context, ``workers=1`` and ``workers=N`` answers
    are identical, which ``tests/core/test_parallel_query.py`` locks down.

    The worker pool is created lazily on the first fanned-out query and
    kept alive (with its resident copy of the indexes) for the executor's
    lifetime, so a serving workload ships the index state to each worker
    once rather than once per query.  The executor therefore snapshots the
    indexes at pool creation: the owning engine must :meth:`close` it when
    the lake changes (``D3L`` does).
    """

    def __init__(self, indexes: "D3LIndexes", workers: int) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.indexes = indexes
        self.workers = workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None

    def close(self) -> None:
        """Shut the worker pool down (the executor can be reused afterwards)."""
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_query_worker,
                initargs=(self.indexes,),
            )
            # Shut the pool down when the executor is dropped without an
            # explicit close(), so abandoned engines do not leak worker
            # processes or trip the interpreter-exit wakeup of
            # concurrent.futures on an already-collected pipe.
            self._finalizer = weakref.finalize(
                self, ProcessPoolExecutor.shutdown, self._pool, False
            )
        return self._pool

    def collect(
        self,
        table_name: str,
        entries: Sequence[Tuple[str, object]],
        **context,
    ) -> QueryShardResult:
        """Collect every attribute's candidate distances across the shards.

        When the shared query context carries memoized target signatures
        (``signature_maps``, from a serving session's profile cache), each
        worker is shipped only its own shard's slice of the map so repeated
        queries neither re-sign the target nor pay for signatures of
        attributes another shard owns.
        """
        entries = list(entries)
        profile_of = dict(entries)
        signature_maps = context.pop("signature_maps", None)
        shards = [
            names
            for names in partition_tables([name for name, _ in entries], self.workers)
            if names
        ]
        shard_entries = [
            [(name, profile_of[name]) for name in names] for names in shards
        ]

        def shard_signatures(names):
            if signature_maps is None:
                return None
            return {name: signature_maps[name] for name in names}

        if len(shard_entries) <= 1:
            from repro.core.discovery import collect_attribute_candidate_distances

            shard_results = [
                collect_attribute_candidate_distances(
                    self.indexes,
                    table_name,
                    entries_for_shard,
                    signature_maps=shard_signatures([name for name, _ in entries_for_shard]),
                    **context,
                )
                for entries_for_shard in shard_entries
            ]
        else:
            payloads = [
                (
                    table_name,
                    entries_for_shard,
                    context
                    | {
                        "signature_maps": shard_signatures(
                            [name for name, _ in entries_for_shard]
                        )
                    },
                )
                for entries_for_shard in shard_entries
            ]
            shard_results = list(
                self._ensure_pool().map(_collect_shard_candidate_distances, payloads)
            )
        by_attribute = {
            name: (refs, columns)
            for result in shard_results
            for name, refs, columns in result
        }
        return [
            (name, *by_attribute[name])
            for name, _ in entries
            if name in by_attribute
        ]
