"""Core-test fixtures: leak auditing for the zero-copy fan-out machinery.

Every test in ``tests/core`` runs under an autouse fixture asserting that it
left no stray shared-memory segments and no untracked child processes
behind.  Leaks in the snapshot lifecycle therefore fail tier-1 immediately
instead of accumulating in ``/dev/shm`` across runs.
"""

import multiprocessing
import time

import pytest

from repro.core.parallel import live_worker_pids
from repro.core.shared import stray_segments


def _untracked_children() -> set:
    """PIDs of live child processes not owned by a tracked executor pool."""
    tracked = live_worker_pids()
    return {
        process.pid
        for process in multiprocessing.active_children()
        if process.pid not in tracked
    }


@pytest.fixture(autouse=True)
def no_fanout_leaks():
    """Fail any test that leaks shared-memory segments or child processes.

    Both checks diff against the state before the test, so pre-existing
    debris (other processes' segments, module-scoped engines holding live
    pools — whose workers are tracked via ``live_worker_pids``) never
    produces false positives.  Child-process teardown is given a short grace
    period: garbage-collection finalizers reap pools with ``wait=False``.
    """
    segments_before = set(stray_segments())
    children_before = _untracked_children()
    yield
    leaked_segments = set(stray_segments()) - segments_before
    assert not leaked_segments, (
        f"test leaked shared-memory segments: {sorted(leaked_segments)}"
    )
    deadline = time.monotonic() + 5.0
    leaked_children = _untracked_children() - children_before
    while leaked_children and time.monotonic() < deadline:
        time.sleep(0.05)
        leaked_children = _untracked_children() - children_before
    assert not leaked_children, (
        f"test leaked child processes: {sorted(leaked_children)}"
    )
