"""The D3L discovery engine: top-k related-dataset search (sections III and IV).

Querying proceeds exactly as the paper describes:

1. the target table is profiled with the same feature extraction as the lake
   (Algorithm 1), but nothing is inserted into the indexes;
2. every target attribute is looked up in each of the four LSH indexes,
   returning related lake attributes paired with estimated distances;
3. numeric target attributes additionally receive KS-based D distances for
   candidates passing the Algorithm 2 guard;
4. results are grouped by source table, each (target, source) pair is
   aggregated into a 5-dimensional distance vector (Equation 1 with the
   Equation 2 CCDF weights), and the vector is reduced to a scalar with the
   Equation 3 weighted l2-norm;
5. the k smallest distances are the answer; optionally, the answer is
   extended with tables reachable through SA-join paths (Algorithm 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.aggregation import combined_distance, evidence_vector
from repro.core.config import D3LConfig
from repro.core.evidence import EvidenceType
from repro.core.indexes import D3LIndexes
from repro.core.joins import JoinPath, SAJoinGraph, find_join_paths, tables_reached
from repro.core.profiles import AttributeMatch, AttributeProfile, TableProfile
from repro.core.weights import EvidenceWeights
from repro.lake.datalake import AttributeRef, DataLake
from repro.ml.subject_attribute import SubjectAttributeClassifier
from repro.stats.distributions import ccdf_weight
from repro.stats.ks import ks_statistic_sorted
from repro.tables.table import Table
from repro.text.embeddings import WordEmbeddingModel


@dataclass
class TableResult:
    """One ranked source table with its relatedness evidence."""

    table_name: str
    distance: float
    evidence_distances: Dict[EvidenceType, float]
    matches: List[AttributeMatch]

    def covered_target_attributes(self) -> Set[str]:
        """Target attributes aligned with at least one attribute of this table."""
        return {match.target_attribute for match in self.matches}

    def aligned_sources(self) -> List[AttributeRef]:
        """Lake attributes participating in the alignment."""
        return [match.source for match in self.matches]


@dataclass
class QueryResult:
    """The full ranked answer for one target table.

    ``results`` contains every candidate table found by any index, ranked by
    ascending combined distance; ``top(k)`` slices the ranking.  Keeping the
    full ranking around is what makes coverage/precision sweeps over k cheap
    and lets the join-path machinery test the ``I*.lookup(T)`` condition.
    """

    target_name: str
    target_arity: int
    requested_k: int
    results: List[TableResult]

    def top(self, k: Optional[int] = None) -> List[TableResult]:
        """The ``k`` most related tables (default: the requested k)."""
        k = self.requested_k if k is None else k
        return self.results[:k]

    def table_names(self, k: Optional[int] = None) -> List[str]:
        """Names of the top-k tables."""
        return [result.table_name for result in self.top(k)]

    def candidate_tables(self) -> Set[str]:
        """Every table related to the target by at least one index."""
        return {result.table_name for result in self.results}

    def result_for(self, table_name: str) -> Optional[TableResult]:
        """The result entry of a specific table, when present."""
        for result in self.results:
            if result.table_name == table_name:
                return result
        return None


@dataclass
class AttributeSearchResult:
    """One ranked lake attribute returned by :meth:`D3L.related_attributes`."""

    ref: AttributeRef
    distances: Dict[EvidenceType, float]
    distance: float


@dataclass
class JoinAugmentedResult:
    """A query result extended with SA-join paths (``D3L+J``)."""

    base: QueryResult
    join_paths: List[JoinPath]
    joined_tables: Set[str]

    def tables_for(self, start: str) -> Set[str]:
        """Tables reachable through join paths starting at ``start``."""
        reached: Set[str] = set()
        for path in self.join_paths:
            if path.start == start:
                reached.update(path.reached)
        return reached


class D3L:
    """The D3L dataset-discovery engine.

    Typical usage::

        engine = D3L()
        engine.index_lake(lake)
        result = engine.query(target_table, k=10)
        for entry in result.top():
            print(entry.table_name, entry.distance)
    """

    def __init__(
        self,
        config: Optional[D3LConfig] = None,
        embedding_model: Optional[WordEmbeddingModel] = None,
        weights: Optional[EvidenceWeights] = None,
        subject_classifier: Optional[SubjectAttributeClassifier] = None,
    ) -> None:
        self.config = config or D3LConfig()
        self.weights = weights or EvidenceWeights()
        self.indexes = D3LIndexes(
            config=self.config,
            embedding_model=embedding_model,
            subject_classifier=subject_classifier,
        )
        self._join_graph: Optional[SAJoinGraph] = None

    # ------------------------------------------------------------------ #
    # indexing
    # ------------------------------------------------------------------ #
    def index_lake(self, lake: DataLake, workers: Optional[int] = None) -> None:
        """Profile and index every table of ``lake`` (Algorithm 1).

        ``workers > 1`` shards the lake across that many worker processes
        (:class:`~repro.core.parallel.ParallelIndexBuilder`); the resulting
        indexes are identical to a single-process build.
        """
        self.indexes.add_lake(lake, workers=workers)
        self._join_graph = None

    def index_table(self, table: Table) -> None:
        """Profile and index a single table."""
        self.indexes.add_table(table)
        self._join_graph = None

    def remove_table(self, table_name: str) -> bool:
        """Remove a table from the indexes (incremental lake maintenance)."""
        removed = self.indexes.remove_table(table_name)
        if removed:
            self._join_graph = None
        return removed

    @property
    def join_graph(self) -> SAJoinGraph:
        """The SA-join graph, built lazily and cached until the lake changes."""
        if self._join_graph is None:
            self._join_graph = SAJoinGraph.build(self.indexes, self.config)
        return self._join_graph

    def set_weights(self, weights: EvidenceWeights) -> None:
        """Replace the Equation 3 evidence weights."""
        self.weights = weights

    # ------------------------------------------------------------------ #
    # querying
    # ------------------------------------------------------------------ #
    def query(
        self,
        target: Table,
        k: int,
        evidence_types: Optional[Sequence[EvidenceType]] = None,
        exclude_self: bool = True,
        weights: Optional[EvidenceWeights] = None,
    ) -> QueryResult:
        """Return the ranked answer for ``target``.

        ``evidence_types`` restricts both candidate generation and ranking to
        a subset of the evidence (Experiment 1 queries with a single type);
        by default all five are used.  ``exclude_self`` removes the target's
        own lake entry from the answer, which is how the evaluation queries
        targets drawn from the lake.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        active = tuple(evidence_types) if evidence_types else EvidenceType.all()
        active_indexed = [evidence for evidence in active if evidence.is_indexed]
        use_distribution = EvidenceType.DISTRIBUTION in active
        ranking_weights = weights or (
            self.weights
            if evidence_types is None
            else EvidenceWeights(
                {evidence: (1.0 if evidence in active else 0.0) for evidence in EvidenceType.all()}
            )
        )

        exclude_table = target.name if exclude_self else None
        target_profile = self.indexes.profile_table(target)
        pool = self.config.candidate_pool_size(k)

        matches = self._collect_matches(
            target_profile, active_indexed, use_distribution, pool, exclude_table
        )

        results: List[TableResult] = []
        for table_name, table_matches in matches.items():
            vector = evidence_vector(table_matches)
            distance = combined_distance(vector, ranking_weights)
            results.append(
                TableResult(
                    table_name=table_name,
                    distance=distance,
                    evidence_distances=vector,
                    matches=table_matches,
                )
            )
        results.sort(key=lambda result: (result.distance, result.table_name))
        return QueryResult(
            target_name=target.name,
            target_arity=target.arity,
            requested_k=k,
            results=results,
        )

    def query_with_joins(
        self,
        target: Table,
        k: int,
        evidence_types: Optional[Sequence[EvidenceType]] = None,
        exclude_self: bool = True,
    ) -> JoinAugmentedResult:
        """D3L+J: the ranked answer extended with SA-join paths (section IV)."""
        base = self.query(target, k, evidence_types=evidence_types, exclude_self=exclude_self)
        top_k_tables = base.table_names(k)
        related = base.candidate_tables()
        paths = find_join_paths(
            self.join_graph,
            top_k_tables,
            related_tables=related,
            max_length=self.config.max_join_path_length,
            max_paths=self.config.max_join_paths,
        )
        return JoinAugmentedResult(
            base=base,
            join_paths=paths,
            joined_tables=tables_reached(paths),
        )

    def related_attributes(
        self,
        target: Table,
        attribute_name: str,
        k: int = 10,
        exclude_self: bool = True,
        weights: Optional[EvidenceWeights] = None,
    ) -> List[AttributeSearchResult]:
        """Attribute-level discovery: the lake attributes most related to one
        target attribute.

        This exposes the building block underneath table relatedness — useful
        when the caller wants join or union candidates for a single column
        rather than whole-table rankings.  Distances follow the same
        definitions as :meth:`query`; the combined score is the Equation 3
        norm restricted to a single attribute pair.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if not target.has_column(attribute_name):
            raise KeyError(f"target {target.name!r} has no attribute {attribute_name!r}")
        ranking_weights = weights or self.weights
        exclude_table = target.name if exclude_self else None

        profile = AttributeProfile.build(
            target.name,
            target.column(attribute_name),
            self.indexes.embedding_model,
            self.config,
        )
        query_signatures = self.indexes.signatures_for(profile)
        pool = self.config.candidate_pool_size(k)

        candidates: Set[AttributeRef] = set()
        for evidence in EvidenceType.indexed():
            for ref, _ in self.indexes.lookup(
                evidence,
                profile,
                k=pool,
                exclude_table=exclude_table,
                query_signatures=query_signatures,
            ):
                candidates.add(ref)

        # One vectorized distance pass per evidence type over all candidates.
        refs = sorted(candidates)
        distance_columns = {
            evidence: self.indexes.batch_attribute_distances(
                evidence, profile, refs, query_signatures
            )
            for evidence in EvidenceType.all()
        }
        results: List[AttributeSearchResult] = []
        for position, ref in enumerate(refs):
            distances = {
                evidence: float(distance_columns[evidence][position])
                for evidence in EvidenceType.all()
            }
            results.append(
                AttributeSearchResult(
                    ref=ref,
                    distances=distances,
                    distance=combined_distance(distances, ranking_weights),
                )
            )
        results.sort(key=lambda result: (result.distance, result.ref))
        return results[:k]

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _collect_matches(
        self,
        target_profile: TableProfile,
        active_indexed: Sequence[EvidenceType],
        use_distribution: bool,
        pool: int,
        exclude_table: Optional[str],
    ) -> Dict[str, List[AttributeMatch]]:
        """Per-source-table attribute matches with distances and Eq. 2 weights."""
        indexes = self.indexes

        # Tables whose attributes are retrieved by the target's subject
        # attribute through any index: the I* guard of Algorithm 2.
        subject_related_tables = self._subject_related_tables(
            target_profile, pool, exclude_table
        )

        per_table: Dict[str, Dict[str, AttributeMatch]] = {}
        for attribute_name, attribute_profile in target_profile.attributes.items():
            query_signatures = indexes.signatures_for(attribute_profile)

            lookups: Dict[EvidenceType, Dict[AttributeRef, float]] = {}
            candidate_refs: Set[AttributeRef] = set()
            for evidence in active_indexed:
                pairs = indexes.lookup(
                    evidence,
                    attribute_profile,
                    k=pool,
                    exclude_table=exclude_table,
                    query_signatures=query_signatures,
                )
                lookups[evidence] = dict(pairs)
                candidate_refs.update(lookups[evidence])

            if not candidate_refs:
                continue

            # Full distance vectors for every candidate of this attribute:
            # one vectorized matrix pass per evidence type instead of one
            # signature comparison per (candidate, evidence) pair.
            refs = sorted(candidate_refs)
            distance_columns = {
                evidence: indexes.batch_attribute_distances(
                    evidence, attribute_profile, refs, query_signatures
                )
                for evidence in EvidenceType.indexed()
            }
            distances_by_ref: Dict[AttributeRef, Dict[EvidenceType, float]] = {}
            for position, ref in enumerate(refs):
                distances: Dict[EvidenceType, float] = {
                    evidence: float(distance_columns[evidence][position])
                    for evidence in EvidenceType.indexed()
                }
                distances[EvidenceType.DISTRIBUTION] = (
                    self._distribution_distance(
                        attribute_profile,
                        ref,
                        lookups,
                        subject_related_tables,
                    )
                    if use_distribution
                    else 1.0
                )
                distances_by_ref[ref] = distances

            # Equation 2 populations: all observed distances of each type for
            # this target attribute.
            populations: Dict[EvidenceType, List[float]] = {
                evidence: [
                    distances[evidence]
                    for distances in distances_by_ref.values()
                    if distances[evidence] < 1.0
                ]
                for evidence in EvidenceType.all()
            }

            # Group candidates by source table, keeping the best alignment.
            for ref, distances in distances_by_ref.items():
                match = AttributeMatch(
                    target_attribute=attribute_name,
                    source=ref,
                    distances=distances,
                    weights={
                        evidence: ccdf_weight(distances[evidence], populations[evidence])
                        if distances[evidence] < 1.0
                        else 0.0
                        for evidence in EvidenceType.all()
                    },
                )
                table_matches = per_table.setdefault(ref.table, {})
                existing = table_matches.get(attribute_name)
                if existing is None or match.mean_distance() < existing.mean_distance():
                    table_matches[attribute_name] = match

        return {
            table_name: list(matches.values()) for table_name, matches in per_table.items()
        }

    def _subject_related_tables(
        self,
        target_profile: TableProfile,
        pool: int,
        exclude_table: Optional[str],
    ) -> Set[str]:
        subject = target_profile.subject_profile()
        if subject is None:
            return set()
        related: Set[str] = set()
        cutoff = self.indexes.threshold_distance()
        # The subject's signatures are the same for all four indexes; compute
        # them once instead of once per lookup.
        query_signatures = self.indexes.signatures_for(subject)
        for evidence in EvidenceType.indexed():
            for ref, _ in self.indexes.lookup(
                evidence,
                subject,
                k=pool,
                exclude_table=exclude_table,
                query_signatures=query_signatures,
                max_distance=cutoff,
            ):
                related.add(ref.table)
        return related

    def _distribution_distance(
        self,
        attribute_profile: AttributeProfile,
        ref: AttributeRef,
        lookups: Mapping[EvidenceType, Mapping[AttributeRef, float]],
        subject_related_tables: Set[str],
    ) -> float:
        """Algorithm 2, using the lookups already performed for this attribute."""
        if not attribute_profile.is_numeric:
            return 1.0
        other = self.indexes.profiles.get(ref)
        if other is None or not other.is_numeric:
            return 1.0
        cutoff = self.indexes.threshold_distance()
        guard = (
            ref.table in subject_related_tables
            or lookups.get(EvidenceType.NAME, {}).get(ref, 1.0) <= cutoff
            or lookups.get(EvidenceType.FORMAT, {}).get(ref, 1.0) <= cutoff
        )
        if not guard:
            return 1.0
        return ks_statistic_sorted(attribute_profile.numeric_sorted, other.numeric_sorted)
