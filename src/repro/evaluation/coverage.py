"""Target coverage, with and without join paths (Equations 4 and 5).

Coverage measures how much of the target a discovered table (or a table plus
the join paths starting from it) can populate: the fraction of target
attributes aligned with at least one attribute of the table(s).
"""

from __future__ import annotations

from typing import Mapping, Set

from repro.tables.table import Table


def table_coverage(result, target: Table) -> float:
    """Equation 4: fraction of target attributes covered by one ranked table."""
    if target.arity == 0:
        return 0.0
    covered = {match.target_attribute for match in result.matches}
    covered &= set(target.column_names)
    return len(covered) / target.arity


def target_coverage_at_k(answer, target: Table, k: int) -> float:
    """Average Equation 4 coverage over the top-k tables (Experiments 8/10)."""
    top = answer.top(k)
    if not top:
        return 0.0
    return sum(table_coverage(result, target) for result in top) / len(top)


def target_coverage_with_joins(
    answer,
    joined_tables_per_start: Mapping[str, Set[str]],
    target: Table,
    k: int,
) -> float:
    """Equation 5 averaged over the top-k: coverage of each top-k table after
    union-ing the target attributes covered by its join-path tables."""
    top = answer.top(k)
    if not top or target.arity == 0:
        return 0.0
    results_by_name = {result.table_name: result for result in answer.results}
    target_attributes = set(target.column_names)
    total = 0.0
    for result in top:
        covered = {match.target_attribute for match in result.matches}
        for joined_name in joined_tables_per_start.get(result.table_name, set()):
            joined_result = results_by_name.get(joined_name)
            if joined_result is None:
                continue
            covered.update(match.target_attribute for match in joined_result.matches)
        covered &= target_attributes
        total += len(covered) / target.arity
    return total / len(top)
