"""Tests for the unified discovery-service API (``repro.core.api``).

The protocol contract: a frozen, validated ``QueryRequest``; a
``QueryResponse`` that round-trips losslessly through JSON; a planner that
every entry point funnels through (so the deprecated shims and the session
answer identically); and a ``DiscoverySession`` whose profile cache is
invalidated on lake mutation and never changes an answer.
"""

import dataclasses
import json
import warnings

import pytest

from repro.core.api import (
    TRUNCATED_JOIN_PATH_CAP,
    DiscoverySession,
    JoinPathsBlock,
    QueryRequest,
    QueryResponse,
    execute,
    query_request_from_wire,
    query_request_to_wire,
)
from repro.core.config import D3LConfig
from repro.core.discovery import D3L
from repro.core.evidence import EvidenceType
from repro.core.persistence import PersistenceError, load_session, save_session
from repro.core.weights import EvidenceWeights
from repro.tables.table import Table


@pytest.fixture()
def mutable_engine(figure1_tables, fast_config):
    """A small engine private to the test (safe to mutate)."""
    engine = D3L(config=fast_config)
    engine.index_lake(figure1_tables["lake"])
    return engine


@pytest.fixture()
def extra_table():
    return Table.from_dict(
        "clinics_extra",
        {
            "Clinic": ["Ordsall Health", "Harpurhey Practice"],
            "City": ["Salford", "Manchester"],
            "Postcode": ["M5 3EL", "M9 4BP"],
        },
    )


class TestQueryRequestValidation:
    def test_rejects_nonpositive_k(self, figure1_tables):
        target = figure1_tables["target"]
        with pytest.raises(ValueError, match="^k must be positive$"):
            QueryRequest(target=target, k=0)
        with pytest.raises(ValueError, match="^k must be positive$"):
            QueryRequest(target=target, k=-3)

    def test_rejects_non_integer_k(self, figure1_tables):
        with pytest.raises(ValueError, match="k must be an integer"):
            QueryRequest(target=figure1_tables["target"], k=2.5)

    def test_rejects_unknown_evidence(self, figure1_tables):
        with pytest.raises(ValueError, match="unknown evidence type 'X'"):
            QueryRequest(target=figure1_tables["target"], evidence=["X"])

    def test_rejects_empty_evidence(self, figure1_tables):
        with pytest.raises(ValueError, match="evidence subset must not be empty"):
            QueryRequest(target=figure1_tables["target"], evidence=[])

    def test_accepts_codes_names_and_members(self, figure1_tables):
        request = QueryRequest(
            target=figure1_tables["target"],
            evidence=["N", "value", EvidenceType.FORMAT],
        )
        assert request.evidence == (
            EvidenceType.NAME,
            EvidenceType.VALUE,
            EvidenceType.FORMAT,
        )

    def test_rejects_nonpositive_workers(self, figure1_tables):
        with pytest.raises(ValueError, match="^workers must be positive$"):
            QueryRequest(target=figure1_tables["target"], workers=0)

    def test_rejects_unknown_engine(self, figure1_tables):
        with pytest.raises(ValueError, match="unknown engine"):
            QueryRequest(target=figure1_tables["target"], engine="quantum")

    def test_rejects_negative_weights(self, figure1_tables):
        with pytest.raises(ValueError, match="finite and non-negative"):
            QueryRequest(
                target=figure1_tables["target"], weights={EvidenceType.NAME: -1.0}
            )
        with pytest.raises(ValueError, match="finite and non-negative"):
            QueryRequest(target=figure1_tables["target"], weights={"V": float("nan")})

    def test_rejects_unknown_attribute(self, figure1_tables):
        with pytest.raises(KeyError, match="has no attribute 'NotAColumn'"):
            QueryRequest(target=figure1_tables["target"], attributes=["NotAColumn"])

    def test_rejects_attributes_on_profiles(self, figure1_engine, figure1_tables):
        profile = figure1_engine.profile_target(figure1_tables["target"])
        with pytest.raises(ValueError, match="raw Table target"):
            QueryRequest(target=profile, attributes=["City"])

    def test_rejects_evidence_with_attributes(self, figure1_tables):
        with pytest.raises(ValueError, match="not supported for attribute-level"):
            QueryRequest(
                target=figure1_tables["target"], attributes=["City"], evidence=["N"]
            )

    def test_rejects_non_table_target(self):
        with pytest.raises(TypeError, match="Table or a TableProfile"):
            QueryRequest(target="not a table")

    def test_request_is_frozen(self, figure1_tables):
        request = QueryRequest(target=figure1_tables["target"])
        with pytest.raises(dataclasses.FrozenInstanceError):
            request.k = 3

    def test_reuses_config_error_message_format(self):
        """Satellite: QueryRequest and D3LConfig share validation wording."""
        with pytest.raises(ValueError, match="^num_hashes must be positive$"):
            D3LConfig(num_hashes=-4)
        with pytest.raises(ValueError, match="^k must be positive$"):
            QueryRequest(target=Table.from_dict("t", {"a": ["x"]}), k=0)


class TestQueryResponseRoundTrip:
    @pytest.mark.parametrize("explain", [False, True])
    def test_table_mode_lossless(self, figure1_engine, figure1_tables, explain):
        session = DiscoverySession(figure1_engine)
        response = session.submit(
            QueryRequest(target=figure1_tables["target"], k=2, explain=explain)
        )
        wire = json.loads(json.dumps(response.to_dict()))
        restored = QueryResponse.from_dict(wire)
        assert restored == response
        assert restored.to_dict() == response.to_dict()

    def test_attribute_mode_lossless(self, figure1_engine, figure1_tables):
        session = DiscoverySession(figure1_engine)
        response = session.related_attributes(
            figure1_tables["target"], k=3, explain=True
        )
        wire = json.loads(json.dumps(response.to_dict()))
        assert QueryResponse.from_dict(wire) == response

    def test_rejects_foreign_format(self):
        with pytest.raises(ValueError, match="is not"):
            QueryResponse.from_dict({"format": "something/v9"})

    def test_truncated_keeps_only_top_k(self, figure1_engine, figure1_tables):
        session = DiscoverySession(figure1_engine)
        response = session.submit(
            QueryRequest(target=figure1_tables["target"], k=1, exclude_self=False)
        )
        assert len(response.results) > 1  # full candidate ranking retained
        sliced = response.truncated()
        assert len(sliced.results) == 1
        assert sliced.results == response.top(1)
        assert len(response.results) > 1  # original untouched
        wire = json.loads(json.dumps(sliced.to_dict()))
        assert QueryResponse.from_dict(wire) == sliced

    def test_explain_carries_decomposition_and_weights(
        self, figure1_engine, figure1_tables
    ):
        session = DiscoverySession(figure1_engine)
        response = session.submit(
            QueryRequest(target=figure1_tables["target"], k=2, explain=True)
        )
        top = response.top()[0]
        assert set(top.evidence_distances) == set(EvidenceType.all())
        assert top.matches, "explain responses carry attribute alignments"
        match = top.matches[0]
        assert set(match.distances) == set(EvidenceType.all())
        assert set(match.weights) == set(EvidenceType.all())
        plain = session.submit(QueryRequest(target=figure1_tables["target"], k=2))
        assert plain.top()[0].evidence_distances is None
        assert plain.top()[0].matches is None


class TestPlannerEquivalence:
    """submit() must be bit-identical to the sequential oracle."""

    EVIDENCE_SUBSETS = [
        None,
        (EvidenceType.NAME,),
        (EvidenceType.VALUE, EvidenceType.FORMAT),
        (EvidenceType.EMBEDDING,),
        EvidenceType.all(),
    ]

    @pytest.mark.parametrize("evidence", EVIDENCE_SUBSETS)
    def test_session_matches_oracle_per_evidence(
        self, indexed_d3l, small_synthetic_benchmark, evidence
    ):
        target = small_synthetic_benchmark.lake.tables[0]
        session = DiscoverySession(indexed_d3l)
        response = session.submit(QueryRequest(target=target, k=5, evidence=evidence))
        oracle = indexed_d3l._execute_query(target, k=5, evidence_types=evidence)
        assert [(r.table_name, r.distance) for r in response.results] == [
            (r.table_name, r.distance) for r in oracle.results
        ]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_session_matches_oracle_across_workers(
        self, indexed_d3l, small_synthetic_benchmark, workers
    ):
        target = small_synthetic_benchmark.lake.tables[2]
        session = DiscoverySession(indexed_d3l)
        response = session.submit(QueryRequest(target=target, k=5, workers=workers))
        oracle = indexed_d3l._execute_query(target, k=5)
        assert [(r.table_name, r.distance) for r in response.results] == [
            (r.table_name, r.distance) for r in oracle.results
        ]

    def test_sequential_engine_request(self, indexed_d3l, small_synthetic_benchmark):
        target = small_synthetic_benchmark.lake.tables[1]
        session = DiscoverySession(indexed_d3l)
        sequential = session.submit(
            QueryRequest(target=target, k=5, engine="sequential")
        )
        batched = session.submit(QueryRequest(target=target, k=5))
        assert [(r.table_name, r.distance) for r in sequential.results] == [
            (r.table_name, r.distance) for r in batched.results
        ]

    def test_attribute_mode_matches_bulk(self, indexed_d3l, small_synthetic_benchmark):
        target = small_synthetic_benchmark.lake.tables[0]
        session = DiscoverySession(indexed_d3l)
        response = session.related_attributes(target, k=4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            bulk = indexed_d3l.related_attributes_bulk(target, k=4)
        assert set(response.attribute_results) == set(bulk)
        for name, entries in bulk.items():
            assert [(entry.ref, entry.distance) for entry in entries] == [
                (entry.source, entry.distance)
                for entry in response.attribute_results[name]
            ]

    def test_cached_submit_is_identical(self, indexed_d3l, small_synthetic_benchmark):
        target = small_synthetic_benchmark.lake.tables[3]
        session = DiscoverySession(indexed_d3l)
        first = session.submit(QueryRequest(target=target, k=5, explain=True))
        second = session.submit(QueryRequest(target=target, k=5, explain=True))
        assert session.cache_info()["hits"] == 1
        assert first == second

    def test_weight_overrides_respected(self, indexed_d3l, small_synthetic_benchmark):
        target = small_synthetic_benchmark.lake.tables[0]
        session = DiscoverySession(indexed_d3l)
        weights = EvidenceWeights.single(EvidenceType.VALUE)
        response = session.submit(QueryRequest(target=target, k=5, weights=weights))
        oracle = indexed_d3l._execute_query(target, k=5, weights=weights)
        assert [(r.table_name, r.distance) for r in response.results] == [
            (r.table_name, r.distance) for r in oracle.results
        ]
        assert response.ranking_weights[EvidenceType.VALUE] == 1.0
        assert response.ranking_weights[EvidenceType.NAME] == 0.0


class TestDeprecatedShims:
    def test_query_warns_and_matches(self, figure1_engine, figure1_tables):
        target = figure1_tables["target"]
        with pytest.warns(DeprecationWarning, match="D3L.query is deprecated"):
            legacy = figure1_engine.query(target, k=2)
        oracle = figure1_engine._execute_query(target, k=2)
        assert [(r.table_name, r.distance) for r in legacy.results] == [
            (r.table_name, r.distance) for r in oracle.results
        ]

    def test_query_batch_warns(self, figure1_engine, figure1_tables):
        with pytest.warns(DeprecationWarning, match="D3L.query_batch is deprecated"):
            figure1_engine.query_batch(figure1_tables["target"], k=2)

    def test_related_attributes_warns(self, figure1_engine, figure1_tables):
        with pytest.warns(
            DeprecationWarning, match="D3L.related_attributes is deprecated"
        ):
            figure1_engine.related_attributes(figure1_tables["target"], "City", k=2)

    def test_related_attributes_bulk_warns(self, figure1_engine, figure1_tables):
        with pytest.warns(
            DeprecationWarning, match="D3L.related_attributes_bulk is deprecated"
        ):
            figure1_engine.related_attributes_bulk(figure1_tables["target"], k=2)

    def test_shim_validation_is_shared(self, figure1_engine, figure1_tables):
        """Satellite: the shims reject bad k / unknown attributes uniformly."""
        target = figure1_tables["target"]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="^k must be positive$"):
                figure1_engine.related_attributes(target, "City", k=0)
            with pytest.raises(ValueError, match="^k must be positive$"):
                figure1_engine.related_attributes_bulk(target, k=-1)
            with pytest.raises(KeyError, match="has no attribute"):
                figure1_engine.related_attributes(target, "NotAColumn", k=3)
            with pytest.raises(ValueError, match="^k must be positive$"):
                figure1_engine.query(target, k=0)


class TestSessionCacheLifecycle:
    def test_unrelated_cache_entries_survive_index_table(
        self, mutable_engine, figure1_tables, extra_table
    ):
        # Mutating one lake table evicts per table: the cached entry of an
        # unrelated target survives, yet answers still see the new table
        # (the memoized profile/signatures are functions of the target only).
        target = figure1_tables["target"]
        session = DiscoverySession(mutable_engine)
        session.submit(QueryRequest(target=target, k=2))
        session.submit(QueryRequest(target=target, k=2))
        assert session.cache_info() == {
            "hits": 1,
            "misses": 1,
            "size": 1,
            "capacity": 64,
        }
        mutable_engine.index_table(extra_table)
        response = session.submit(QueryRequest(target=target, k=5))
        assert session.cache_info()["hits"] == 2
        assert session.cache_info()["misses"] == 1
        oracle = mutable_engine._execute_query(target, k=5)
        assert [(r.table_name, r.distance) for r in response.results] == [
            (r.table_name, r.distance) for r in oracle.results
        ]
        assert "clinics_extra" in {r.table_name for r in response.results}

    def test_unrelated_cache_entries_survive_remove_table(
        self, mutable_engine, figure1_tables
    ):
        target = figure1_tables["target"]
        session = DiscoverySession(mutable_engine)
        session.submit(QueryRequest(target=target, k=2))
        assert mutable_engine.remove_table("gp_funding_s2")
        response = session.submit(QueryRequest(target=target, k=5))
        assert session.cache_info()["hits"] == 1
        assert session.cache_info()["misses"] == 1
        assert "gp_funding_s2" not in {r.table_name for r in response.results}

    def test_mutated_table_evicts_its_own_cache_entry(
        self, mutable_engine, figure1_tables
    ):
        # An entry caching a target that shares its name with the mutated
        # lake table IS evicted — its profile may describe stale content.
        source = figure1_tables["sources"][0]
        session = DiscoverySession(mutable_engine)
        session.submit(QueryRequest(target=source, k=2, exclude_self=False))
        mutable_engine.index_table(source)
        session.submit(QueryRequest(target=source, k=2, exclude_self=False))
        assert session.cache_info()["hits"] == 0
        assert session.cache_info()["misses"] == 2

    def test_cache_cleared_when_journal_window_exceeded(
        self, mutable_engine, figure1_tables, extra_table
    ):
        target = figure1_tables["target"]
        session = DiscoverySession(mutable_engine)
        session.submit(QueryRequest(target=target, k=2))
        mutable_engine.index_table(extra_table)
        # Simulate the journal having lost coverage of the gap: the session
        # must fall back to clearing everything.
        mutable_engine.indexes._mutation_log.clear()
        session.submit(QueryRequest(target=target, k=2))
        assert session.cache_info()["hits"] == 0
        assert session.cache_info()["misses"] == 2

    def test_lru_eviction(self, mutable_engine, figure1_tables):
        session = DiscoverySession(mutable_engine, profile_cache_size=1)
        first = figure1_tables["target"]
        second = figure1_tables["sources"][0]
        session.submit(QueryRequest(target=first, k=2, exclude_self=False))
        session.submit(QueryRequest(target=second, k=2, exclude_self=False))
        assert session.cache_info()["size"] == 1
        session.submit(QueryRequest(target=first, k=2, exclude_self=False))
        assert session.cache_info() == {
            "hits": 0,
            "misses": 3,
            "size": 1,
            "capacity": 1,
        }

    def test_rejects_nonpositive_capacity(self, mutable_engine):
        with pytest.raises(ValueError, match="profile_cache_size must be positive"):
            DiscoverySession(mutable_engine, profile_cache_size=0)

    def test_cache_invalidated_on_indexes_rebind(
        self, mutable_engine, figure1_tables, fast_config
    ):
        """Rebinding engine.indexes (e.g. after a restore) must drop the cache,
        even though a fresh indexes object restarts the version counter."""
        target = figure1_tables["target"]
        session = DiscoverySession(mutable_engine)
        session.submit(QueryRequest(target=target, k=2))
        replacement = D3L(config=fast_config)
        replacement.index_lake(figure1_tables["lake"])
        mutable_engine.indexes = replacement.indexes
        response = session.submit(QueryRequest(target=target, k=2))
        assert session.cache_info()["misses"] == 2
        oracle = mutable_engine._execute_query(target, k=2)
        assert [(r.table_name, r.distance) for r in response.results] == [
            (r.table_name, r.distance) for r in oracle.results
        ]

    def test_profile_targets_are_cached_by_identity(
        self, mutable_engine, figure1_tables
    ):
        profile = mutable_engine.profile_target(figure1_tables["target"])
        session = DiscoverySession(mutable_engine)
        session.submit(QueryRequest(target=profile, k=2))
        session.submit(QueryRequest(target=profile, k=2))
        assert session.cache_info()["hits"] == 1


class TestSessionPersistence:
    def test_round_trip(self, figure1_engine, figure1_tables, tmp_path):
        session = DiscoverySession(figure1_engine, profile_cache_size=7)
        target = figure1_tables["target"]
        before = session.submit(QueryRequest(target=target, k=2, explain=True))
        path = save_session(session, tmp_path / "session.pkl")
        restored = load_session(path)
        assert restored.profile_cache_size == 7
        after = restored.submit(QueryRequest(target=target, k=2, explain=True))
        assert after == before

    def test_session_save_method(self, figure1_engine, tmp_path):
        session = DiscoverySession(figure1_engine)
        path = session.save(tmp_path / "via_method.pkl")
        assert load_session(path).profile_cache_size == session.profile_cache_size

    def test_rejects_engine_payloads(self, figure1_engine, tmp_path):
        from repro.core.persistence import save_engine

        path = save_engine(figure1_engine, tmp_path / "engine.pkl")
        with pytest.raises(PersistenceError, match="d3l_session"):
            load_session(path)


class TestExecutePlanner:
    def test_returns_legacy_and_response(self, figure1_engine, figure1_tables):
        request = QueryRequest(target=figure1_tables["target"], k=2)
        execution = execute(figure1_engine, request)
        assert [(r.table_name, r.distance) for r in execution.legacy.results] == [
            (r.table_name, r.distance) for r in execution.response.results
        ]
        assert execution.response.mode == "table"
        assert execution.response.engine == "batched"

    def test_attribute_mode_legacy_shape(self, figure1_engine, figure1_tables):
        request = QueryRequest(
            target=figure1_tables["target"], k=3, attributes=("City", "Postcode")
        )
        execution = execute(figure1_engine, request)
        assert set(execution.legacy) == {"City", "Postcode"}
        assert execution.response.mode == "attributes"


class TestJoinRequests:
    """joins=True: the D3L+J answer on the wire (QueryResponse.join_paths)."""

    def test_joins_rejected_for_attribute_requests(self, figure1_tables):
        with pytest.raises(ValueError, match="join paths are not supported"):
            QueryRequest(
                target=figure1_tables["target"], k=2, attributes=("City",), joins=True
            )

    def test_response_carries_join_block(self, mutable_engine, figure1_tables):
        session = DiscoverySession(mutable_engine)
        response = session.submit(
            QueryRequest(target=figure1_tables["target"], k=2, joins=True)
        )
        block = response.join_paths
        assert block is not None
        assert isinstance(block.truncated, bool)
        assert block.joined_tables == sorted(block.joined_tables)
        for path in block.paths:
            assert len(path.edges) == len(path.tables) - 1

    def test_plain_requests_have_no_join_block(self, mutable_engine, figure1_tables):
        session = DiscoverySession(mutable_engine)
        response = session.submit(QueryRequest(target=figure1_tables["target"], k=2))
        assert response.join_paths is None

    def test_join_block_round_trips_through_json(self, mutable_engine, figure1_tables):
        session = DiscoverySession(mutable_engine)
        for explain in (False, True):
            response = session.submit(
                QueryRequest(
                    target=figure1_tables["target"], k=2, joins=True, explain=explain
                )
            )
            wire = json.loads(json.dumps(response.to_dict()))
            restored = QueryResponse.from_dict(wire)
            assert restored == response
            assert restored.to_dict() == response.to_dict()

    def test_truncated_flag_reaches_the_wire(self, figure1_tables, fast_config):
        config = dataclasses.replace(fast_config, max_join_paths=1)
        engine = D3L(config=config)
        engine.index_lake(figure1_tables["lake"])
        session = DiscoverySession(engine)
        response = session.submit(
            QueryRequest(target=figure1_tables["target"], k=2, joins=True)
        )
        block = response.join_paths
        assert len(block.paths) <= 1
        payload = json.loads(json.dumps(response.to_dict()))
        assert payload["join_paths"]["truncated"] == block.truncated

    def test_planner_matches_deprecated_shim(self, mutable_engine, figure1_tables):
        target = figure1_tables["target"]
        planned = execute(
            mutable_engine,
            QueryRequest(target=target, k=2, joins=True, engine="sequential"),
        ).legacy
        with pytest.warns(DeprecationWarning, match="query_with_joins"):
            shimmed = mutable_engine.query_with_joins(target, k=2)
        assert [path.tables for path in planned.join_paths] == [
            path.tables for path in shimmed.join_paths
        ]
        assert planned.joined_tables == shimmed.joined_tables
        assert planned.truncated == shimmed.truncated
        assert [(r.table_name, r.distance) for r in planned.base.results] == [
            (r.table_name, r.distance) for r in shimmed.base.results
        ]

    def test_join_graph_cached_across_session_requests(
        self, mutable_engine, figure1_tables
    ):
        session = DiscoverySession(mutable_engine)
        first = session.submit(
            QueryRequest(target=figure1_tables["target"], k=2, joins=True)
        )
        graph = mutable_engine.cached_join_graph
        assert graph is not None
        second = session.submit(
            QueryRequest(target=figure1_tables["target"], k=2, joins=True)
        )
        assert mutable_engine.cached_join_graph is graph
        assert second == first

    def test_lake_mutation_invalidates_cached_graph(
        self, mutable_engine, figure1_tables, extra_table
    ):
        session = DiscoverySession(mutable_engine)
        session.submit(QueryRequest(target=figure1_tables["target"], k=2, joins=True))
        graph = mutable_engine.cached_join_graph
        assert graph is not None
        mutable_engine.index_table(extra_table)
        assert mutable_engine.cached_join_graph is None
        session.submit(QueryRequest(target=figure1_tables["target"], k=2, joins=True))
        assert mutable_engine.cached_join_graph is not graph


class TestTruncatedJoinPaths:
    """``truncated()`` must bound the join-paths block, not just the rankings.

    Regression: ``repro query --json --joins`` used to emit the full
    unbounded path list while the rendered report capped at 20.
    """

    @staticmethod
    def _response_with_paths(num_paths):
        from repro.core.joins import JoinEdge, JoinPath
        from repro.lake.datalake import AttributeRef

        paths = [
            JoinPath(
                tables=["start", f"hop_{index}"],
                edges=[
                    JoinEdge(
                        left=AttributeRef("start", "key"),
                        right=AttributeRef(f"hop_{index}", "key"),
                        overlap=0.5,
                    )
                ],
            )
            for index in range(num_paths)
        ]
        return QueryResponse(
            target_name="start",
            target_arity=2,
            k=5,
            mode="table",
            engine="batched",
            explain=False,
            evidence=None,
            ranking_weights={evidence: 1.0 for evidence in EvidenceType.all()},
            results=[],
            join_paths=JoinPathsBlock(
                paths=paths,
                joined_tables=sorted({f"hop_{index}" for index in range(num_paths)}),
                truncated=False,
            ),
        )

    def test_caps_paths_and_sets_the_flag(self):
        response = self._response_with_paths(TRUNCATED_JOIN_PATH_CAP + 30)
        sliced = response.truncated()
        assert len(sliced.join_paths.paths) == TRUNCATED_JOIN_PATH_CAP
        assert sliced.join_paths.truncated is True
        assert sliced.join_paths.paths == response.join_paths.paths[:TRUNCATED_JOIN_PATH_CAP]
        # the original keeps the full enumeration and its flag
        assert len(response.join_paths.paths) == TRUNCATED_JOIN_PATH_CAP + 30
        assert response.join_paths.truncated is False
        # joined_tables still summarises the full search
        assert sliced.join_paths.joined_tables == response.join_paths.joined_tables

    def test_within_cap_is_untouched(self):
        response = self._response_with_paths(TRUNCATED_JOIN_PATH_CAP)
        sliced = response.truncated()
        assert sliced.join_paths is response.join_paths
        assert sliced.join_paths.truncated is False

    def test_none_keeps_every_path(self):
        response = self._response_with_paths(TRUNCATED_JOIN_PATH_CAP + 5)
        sliced = response.truncated(max_join_paths=None)
        assert len(sliced.join_paths.paths) == TRUNCATED_JOIN_PATH_CAP + 5
        assert sliced.join_paths.truncated is False

    def test_bounded_wire_payload_round_trips(self):
        response = self._response_with_paths(TRUNCATED_JOIN_PATH_CAP + 10)
        wire = json.loads(json.dumps(response.truncated().to_dict()))
        assert len(wire["join_paths"]["paths"]) == TRUNCATED_JOIN_PATH_CAP
        assert wire["join_paths"]["truncated"] is True
        restored = QueryResponse.from_dict(wire)
        assert restored.to_dict() == wire

    def test_search_truncation_flag_survives_the_cap(self):
        response = self._response_with_paths(3)
        response.join_paths.truncated = True  # mid-walk max_join_paths stop
        sliced = response.truncated()
        assert sliced.join_paths.truncated is True


class TestRequestWireFormat:
    """``query_request_to_wire`` / ``query_request_from_wire`` round trips."""

    def test_basic_round_trip(self, figure1_tables):
        request = QueryRequest(
            target=figure1_tables["target"],
            k=3,
            evidence=["N", "V"],
            explain=True,
            joins=True,
            workers=2,
        )
        wire = json.loads(json.dumps(query_request_to_wire(request)))
        rebuilt = query_request_from_wire(wire)
        assert rebuilt.k == 3
        assert rebuilt.evidence == request.evidence
        assert rebuilt.explain and rebuilt.joins
        assert rebuilt.workers == 2
        assert rebuilt.engine == "batched"
        assert rebuilt.target_name == request.target_name
        assert [column.name for column in rebuilt.target.columns] == [
            column.name for column in request.target.columns
        ]
        assert [list(column.values) for column in rebuilt.target.columns] == [
            list(column.values) for column in request.target.columns
        ]

    def test_weights_and_attributes_travel(self, figure1_tables):
        target = figure1_tables["target"]
        request = QueryRequest(
            target=target,
            k=2,
            weights={"N": 2.0, "V": 1.0, "F": 0.0, "E": 0.0, "D": 0.0},
        )
        wire = json.loads(json.dumps(query_request_to_wire(request)))
        rebuilt = query_request_from_wire(wire)
        assert rebuilt.weights.as_dict()[EvidenceType.NAME] == 2.0
        attr_request = QueryRequest(
            target=target, k=2, attributes=(target.columns[0].name,)
        )
        wire = json.loads(json.dumps(query_request_to_wire(attr_request)))
        rebuilt = query_request_from_wire(wire)
        assert rebuilt.attributes == attr_request.attributes

    def test_format_marker_is_optional_but_checked(self, figure1_tables):
        wire = query_request_to_wire(QueryRequest(target=figure1_tables["target"]))
        assert wire["format"] == "d3l.query_request/v1"
        del wire["format"]
        assert query_request_from_wire(wire).k == 10
        wire["format"] = "something/else"
        with pytest.raises(ValueError, match="is not"):
            query_request_from_wire(wire)

    def test_unknown_fields_are_rejected(self, figure1_tables):
        wire = query_request_to_wire(QueryRequest(target=figure1_tables["target"]))
        wire["answer_size"] = 5
        with pytest.raises(ValueError, match="answer_size"):
            query_request_from_wire(wire)

    @pytest.mark.parametrize(
        "payload",
        [
            [],
            {},
            {"target": "not a table"},
            {"target": {"name": "t"}},
            {"target": {"name": "t", "columns": [{"name": "c"}]}},
        ],
    )
    def test_malformed_payloads_are_rejected(self, payload):
        with pytest.raises((ValueError, KeyError, TypeError)):
            query_request_from_wire(payload)

    def test_validation_matches_the_constructor(self, figure1_tables):
        wire = query_request_to_wire(QueryRequest(target=figure1_tables["target"]))
        wire["evidence"] = ["bogus"]
        with pytest.raises(ValueError, match="unknown evidence type"):
            query_request_from_wire(wire)
        wire = query_request_to_wire(QueryRequest(target=figure1_tables["target"]))
        wire["k"] = -1
        with pytest.raises(ValueError, match="k"):
            query_request_from_wire(wire)

    def test_profile_targets_cannot_travel(self, figure1_engine, figure1_tables):
        profile = figure1_engine.profile_target(figure1_tables["target"])
        with pytest.raises(ValueError, match="cannot be serialised"):
            query_request_to_wire(QueryRequest(target=profile))


class TestContextManagers:
    """``with D3L(...)`` / ``with DiscoverySession(...)`` release resources."""

    def test_engine_context_manager_closes_pools(self, figure1_tables, fast_config):
        from repro.core.shared import stray_segments

        before = set(stray_segments())
        with D3L(config=fast_config) as engine:
            engine.index_lake(figure1_tables["lake"])
            engine.query_batch(figure1_tables["target"], k=2, workers=2)
            assert engine._query_executors
        assert not engine._query_executors
        assert set(stray_segments()) == before

    def test_session_context_manager_closes_engine(
        self, figure1_tables, fast_config
    ):
        engine = D3L(config=fast_config)
        engine.index_lake(figure1_tables["lake"])
        with DiscoverySession(engine) as session:
            session.submit(
                QueryRequest(target=figure1_tables["target"], k=2, workers=2)
            )
            assert engine._query_executors
        assert not engine._query_executors
        assert session.cache_info()["size"] == 0

    def test_exception_path_still_closes(self, figure1_tables, fast_config):
        engine = D3L(config=fast_config)
        engine.index_lake(figure1_tables["lake"])
        with pytest.raises(RuntimeError, match="boom"):
            with DiscoverySession(engine) as session:
                session.submit(
                    QueryRequest(target=figure1_tables["target"], k=2, workers=2)
                )
                raise RuntimeError("boom")
        assert not engine._query_executors
