"""Property-based tests for the LSH index structures."""

from hypothesis import assume, given, settings, strategies as st

from repro.lsh.lsh_forest import LSHForest
from repro.lsh.lsh_index import LSHIndex, optimal_bands
from repro.lsh.minhash import MinHashFactory
from repro.lsh.random_projection import RandomProjectionFactory

import numpy as np

_FACTORY = MinHashFactory(num_perm=64, seed=7)

token_sets = st.lists(
    st.sets(st.text(alphabet="abcdef012345", min_size=1, max_size=6), min_size=1, max_size=20),
    min_size=1,
    max_size=10,
)


class TestBandedIndexProperties:
    @given(token_sets)
    @settings(max_examples=40, deadline=None)
    def test_every_item_retrieves_itself(self, sets):
        index = LSHIndex(threshold=0.5, num_hashes=64)
        signatures = {}
        for i, tokens in enumerate(sets):
            signature = _FACTORY.from_tokens(tokens)
            signatures[i] = signature
            index.insert(i, signature.hashvalues)
        for i, signature in signatures.items():
            assert i in index.query(signature.hashvalues)

    @given(token_sets)
    @settings(max_examples=40, deadline=None)
    def test_remove_is_complete(self, sets):
        index = LSHIndex(threshold=0.5, num_hashes=64)
        for i, tokens in enumerate(sets):
            index.insert(i, _FACTORY.from_tokens(tokens).hashvalues)
        for i in range(len(sets)):
            index.remove(i)
        assert len(index) == 0
        assert index.bucket_count() == 0

    @given(st.floats(min_value=0.05, max_value=0.95), st.integers(min_value=8, max_value=256))
    @settings(max_examples=60, deadline=None)
    def test_optimal_bands_fit_signature(self, threshold, num_hashes):
        bands, rows = optimal_bands(threshold, num_hashes)
        assert bands >= 1 and rows >= 1
        assert bands * rows <= num_hashes


class TestForestProperties:
    @given(token_sets)
    @settings(max_examples=40, deadline=None)
    def test_every_item_retrieves_itself(self, sets):
        forest = LSHForest(num_hashes=64, num_trees=8)
        signatures = {}
        for i, tokens in enumerate(sets):
            signature = _FACTORY.from_tokens(tokens)
            signatures[i] = signature
            forest.insert(i, signature.hashvalues)
        for i, signature in signatures.items():
            assert i in forest.query(signature.hashvalues, k=len(sets))

    @given(token_sets, st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_query_never_exceeds_available_items(self, sets, k):
        forest = LSHForest(num_hashes=64, num_trees=8)
        for i, tokens in enumerate(sets):
            forest.insert(i, _FACTORY.from_tokens(tokens).hashvalues)
        results = forest.query(_FACTORY.from_tokens(sets[0]).hashvalues, k=k)
        assert len(results) <= len(sets)
        assert len(set(results)) == len(results)


class TestRandomProjectionProperties:
    vectors = st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=4, max_size=4
    )

    @given(vectors)
    @settings(max_examples=80, deadline=None)
    def test_scaling_invariance(self, vector):
        factory = RandomProjectionFactory(num_bits=64, seed=3)
        array = np.asarray(vector)
        # Vectors whose squared norm underflows to zero are treated as zero
        # vectors by design; scaling invariance only applies above that.
        assume(float(np.linalg.norm(array)) > 1e-6)
        original = factory.from_vector(array)
        scaled = factory.from_vector(array * 3.5)
        assert original.cosine_distance(scaled) == 0.0

    @given(vectors, vectors)
    @settings(max_examples=80, deadline=None)
    def test_distance_bounded(self, first, second):
        factory = RandomProjectionFactory(num_bits=64, seed=5)
        a = factory.from_vector(np.asarray(first))
        b = factory.from_vector(np.asarray(second))
        assert 0.0 <= a.cosine_distance(b) <= 1.0
