"""The ``repro check`` driver: walk files, run rules, report violations.

Programmatic use::

    from repro.analysis.checker import run_check
    violations = run_check(["src"])          # all rules
    violations = run_check(["src"], codes=["R2"])

CLI use (wired as the ``check`` subcommand of :mod:`repro.cli`)::

    repro check src/                  # report, exit 0
    repro check --strict src/         # report, exit 1 on any violation
    repro check --lint --strict src/  # also run the pyflakes/fallback lint
    repro check --list-rules

Every rule is scoped by module patterns (see :mod:`repro.analysis.rules`),
so pointing the checker at a whole tree only applies each contract where
it holds.  ``--strict`` is what tier-1 runs (through ``bench_smoke
--quick``): a new violation anywhere under ``src/`` turns the suite red.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
import importlib
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.registry import (
    RULES,
    ModuleUnderCheck,
    Project,
    Violation,
    applicable_rules,
)

# Register the built-in rules on import (side-effect import; importlib
# keeps both pyflakes and the fallback lint free of an unused binding).
importlib.import_module("repro.analysis.rules")


def iter_python_files(paths: Sequence[object]) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files kept, directories walked)."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    seen = set()
    unique: List[Path] = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def load_module(path: Path) -> Optional[ModuleUnderCheck]:
    """Parse one file; None when it cannot be read or parsed.

    Syntax errors are not this checker's job (the interpreter and the test
    suite surface those loudly); unparseable files are skipped.
    """
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source)
    except (OSError, SyntaxError, ValueError):
        return None
    return ModuleUnderCheck(
        path=path.resolve().as_posix(),
        display_path=os.path.relpath(path),
        source=source,
        tree=tree,
    )


def run_check(
    paths: Sequence[object], codes: Optional[Sequence[str]] = None
) -> List[Violation]:
    """All rule violations under ``paths``, sorted by (path, line, code)."""
    project = Project()
    modules: List[ModuleUnderCheck] = []
    for path in iter_python_files(paths):
        module = load_module(path)
        if module is not None:
            project.add(module)
            modules.append(module)
    violations: List[Violation] = []
    for module in modules:
        for rule in applicable_rules(module.path, codes):
            violations.extend(rule.check(module))
    return sorted(violations, key=lambda v: (v.path, v.line, v.code))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="AST-based invariant checker for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any violation is found (the tier-1 mode)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all), e.g. R1,R3",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="also run the pyflakes-or-fallback lint pass over the same paths",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def run_cli(args: argparse.Namespace) -> int:
    """Body of the ``repro check`` subcommand; returns the exit code."""
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.code}  {rule.name}")
            print(f"    {rule.description}")
            print(f"    scope: {', '.join(rule.patterns)}")
        return 0
    codes = (
        [code.strip().upper() for code in args.select.split(",") if code.strip()]
        if args.select
        else None
    )
    paths = args.paths or ["src"]
    missing = [str(p) for p in paths if not Path(p).exists()]
    if missing:
        print(f"repro check: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    violations = run_check(paths, codes)
    for violation in violations:
        print(violation.render())
    problems = len(violations)
    if args.lint:
        from repro.analysis.lint import run_lint

        lint_problems = run_lint(paths)
        for problem in lint_problems:
            print(problem)
        problems += len(lint_problems)
    if problems:
        print(f"repro check: {problems} problem(s) found", file=sys.stderr)
        return 1 if args.strict else 0
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run_cli(build_parser().parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    raise SystemExit(main())
