"""Property tests for the vectorized many-candidate KS sweep.

``ks_statistic_sorted_many`` must be *bit-identical* to a loop of
``ks_statistic_sorted`` calls — the oracle relationship the batched query
engine's Algorithm 2 pass relies on — over randomized inputs, duplicates,
constant columns, empty samples, and the block-processing path.
"""

import numpy as np
import pytest

import repro.stats.ks as ks_module
from repro.stats.ks import (
    ks_statistic,
    ks_statistic_sorted,
    ks_statistic_sorted_many,
)


def _loop_oracle(query, candidates):
    return np.array(
        [ks_statistic_sorted(query, candidate) for candidate in candidates],
        dtype=np.float64,
    )


def _random_candidates(rng, query, count):
    candidates = []
    for _ in range(count):
        size = int(rng.integers(0, 40))
        kind = int(rng.integers(0, 4))
        if kind == 0:
            values = rng.normal(0, 1, size=size)
        elif kind == 1:
            values = np.full(size, float(rng.integers(-3, 4)))  # constant column
        elif kind == 2 and query.size:
            values = rng.choice(query, size=size)  # heavy overlap and duplicates
        else:
            values = rng.integers(-5, 5, size=size).astype(np.float64)
        candidates.append(np.sort(values.astype(np.float64)))
    return candidates


class TestManyVersusLoop:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_batches_identical(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(40):
            query = np.sort(
                rng.normal(0, 1, size=int(rng.integers(0, 50))).round(2)
            )
            candidates = _random_candidates(rng, query, int(rng.integers(0, 10)))
            many = ks_statistic_sorted_many(query, candidates)
            assert many.dtype == np.float64
            assert np.array_equal(many, _loop_oracle(query, candidates))

    def test_blocked_path_identical(self, monkeypatch):
        rng = np.random.default_rng(5)
        query = np.sort(rng.normal(0, 1, size=500))
        candidates = _random_candidates(rng, query, 25)
        expected = ks_statistic_sorted_many(query, candidates)
        # Force the histogram budget low enough that candidates are swept in
        # several blocks; the values must not change.
        monkeypatch.setattr(ks_module, "_MANY_HISTOGRAM_CELL_BUDGET", 1500)
        blocked = ks_statistic_sorted_many(query, candidates)
        assert np.array_equal(blocked, expected)
        assert np.array_equal(blocked, _loop_oracle(query, candidates))

    def test_element_budget_blocks_long_candidates(self, monkeypatch):
        # A short query against long candidate extents must split on the
        # flat-element budget (the histogram budget alone would not bite)
        # without changing any value.
        rng = np.random.default_rng(6)
        query = np.sort(rng.normal(0, 1, size=20))
        candidates = [
            np.sort(rng.normal(0, 1, size=int(rng.integers(100, 400))))
            for _ in range(12)
        ] + [np.empty(0)]
        expected = _loop_oracle(query, candidates)
        monkeypatch.setattr(ks_module, "_MANY_FLAT_ELEMENT_BUDGET", 500)
        assert np.array_equal(ks_statistic_sorted_many(query, candidates), expected)
        # A single candidate larger than the whole budget still computes.
        monkeypatch.setattr(ks_module, "_MANY_FLAT_ELEMENT_BUDGET", 50)
        assert np.array_equal(ks_statistic_sorted_many(query, candidates), expected)

    def test_agrees_with_unsorted_reference(self):
        rng = np.random.default_rng(9)
        raw_query = rng.normal(0, 1, size=80)
        raw_candidates = [rng.normal(0.5, 2, size=60) for _ in range(6)]
        many = ks_statistic_sorted_many(
            np.sort(raw_query), [np.sort(candidate) for candidate in raw_candidates]
        )
        reference = np.array(
            [ks_statistic(raw_query, candidate) for candidate in raw_candidates]
        )
        assert np.array_equal(many, reference)


class TestEdgeCases:
    def test_empty_query_yields_max_distance(self):
        result = ks_statistic_sorted_many(
            np.empty(0), [np.array([1.0, 2.0]), np.empty(0)]
        )
        assert np.array_equal(result, np.ones(2))

    def test_empty_candidate_list(self):
        assert ks_statistic_sorted_many(np.array([1.0]), []).shape == (0,)

    def test_empty_candidates_yield_max_distance(self):
        query = np.array([0.0, 1.0, 2.0])
        result = ks_statistic_sorted_many(
            query, [np.empty(0), np.array([0.0, 1.0, 2.0]), np.empty(0)]
        )
        assert result[0] == 1.0 and result[2] == 1.0
        assert result[1] == ks_statistic_sorted(query, query) == 0.0

    def test_identical_samples_have_zero_distance(self):
        query = np.array([1.0, 1.0, 2.0, 5.0])
        assert ks_statistic_sorted_many(query, [query.copy()])[0] == 0.0

    def test_disjoint_supports_have_max_distance(self):
        result = ks_statistic_sorted_many(
            np.array([0.0, 1.0]), [np.array([10.0, 11.0])]
        )
        assert result[0] == 1.0

    def test_constant_columns(self):
        query = np.full(10, 3.0)
        candidates = [np.full(7, 3.0), np.full(4, 2.0), np.array([2.0, 3.0, 4.0])]
        assert np.array_equal(
            ks_statistic_sorted_many(query, candidates),
            _loop_oracle(query, candidates),
        )

    def test_nan_free_contract_matches_prefiltered_reference(self):
        # Callers feed cached sorted *finite* extents; a raw extent with NaNs
        # must first go through the ks_statistic-style finite filter, after
        # which the sweep agrees with the raw-input reference exactly.
        raw = np.array([0.5, np.nan, 1.5, np.nan, 2.5])
        finite = np.sort(raw[np.isfinite(raw)])
        candidate = np.array([0.0, 1.0, 3.0])
        assert (
            ks_statistic_sorted_many(finite, [candidate])[0]
            == ks_statistic(raw, candidate)
        )

    def test_single_element_samples(self):
        candidates = [np.array([0.5]), np.array([2.0])]
        query = np.array([1.0])
        assert np.array_equal(
            ks_statistic_sorted_many(query, candidates),
            _loop_oracle(query, candidates),
        )
