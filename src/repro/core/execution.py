"""Pluggable execution backends behind every fan-out call site.

Three parallel-execution stacks grew up side by side — the worker pools of
:mod:`repro.core.parallel`, the snapshot ship/attach/delta machinery of
:mod:`repro.core.shared`, and the serving session pool of
:mod:`repro.core.server`.  This module extracts the one abstraction they all
shared implicitly: *run a pure shard function over a list of payloads against
one logical view of the indexes*.  :class:`ExecutionBackend` is that
contract, with three implementations:

``serial``
    :class:`SerialBackend` — a list comprehension in the calling thread.
    The oracle every other backend is equivalence-tested against.

``thread``
    :class:`ThreadBackend` — a lazily created
    :class:`~concurrent.futures.ThreadPoolExecutor` over the live, shared
    indexes.  No serialization cost, but CPU-bound shard work serialises on
    the GIL.

``process``
    :class:`ProcessBackend` — worker processes attached read-only to a
    :class:`~repro.core.shared.SharedIndexSnapshot` (descriptor shipping,
    ~50 bytes per worker), refreshed after lake mutations by net deltas from
    the index journal (:func:`~repro.core.shared.build_index_delta`) riding
    on task payloads.  True parallelism; the default for fan-out.

A shard function is a module-level callable ``fn(indexes, payload)`` — pure
in both arguments.  Backends differ only in *which object* arrives as
``indexes`` (the live object, or a worker-resident attached reconstruction)
and in scheduling; since the function is pure and all merges downstream are
keyed, every backend returns the identical result list for identical
payloads.  ``tests/core/test_execution.py`` sweeps that equivalence.

Lifecycle: every backend is a context manager, ``close()`` is idempotent,
and pooled backends carry a ``weakref.finalize`` backstop so abandoning one
without closing leaks neither worker processes nor ``/dev/shm`` segments.
Process-owning backends (and the process-backend serving tier) register in a
weak set so the leak-audit helper :func:`live_worker_pids` can distinguish
owned workers from strays.
"""

from __future__ import annotations

import os
import threading
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.indexes import D3LIndexes
    from repro.core.shared import Descriptor, SharedIndexSnapshot
    from repro.lake.datalake import AttributeRef

#: The recognised backend kinds, in oracle-first order.
BACKENDS = ("serial", "thread", "process")

#: Largest mutated-table count a worker pool refreshes via a delta; beyond
#: this, tearing the pool down and re-exporting a fresh snapshot is cheaper
#: than shipping per-table profiles and signatures with every task.
_DELTA_MAX_TABLES = 32

#: Every live owner of worker *processes* in this process (pooled backends
#: and process-backend servers), for the leak-audit helpers
#: (:func:`live_worker_pids`).  Weak so dropped owners vanish from the audit
#: once their finalizer has run.  Owners expose ``worker_pids() -> Set[int]``.
_LIVE_WORKER_OWNERS: "weakref.WeakSet" = weakref.WeakSet()


def register_worker_owner(owner) -> None:
    """Track ``owner`` (weakly) as a holder of worker processes.

    ``owner`` must expose ``worker_pids() -> Set[int]``; the leak audit in
    ``tests/conftest.py`` treats those PIDs as accounted for.
    """
    _LIVE_WORKER_OWNERS.add(owner)


def live_worker_pids() -> Set[int]:
    """PIDs of worker processes owned by live pools and servers."""
    pids: Set[int] = set()
    for owner in list(_LIVE_WORKER_OWNERS):
        pids.update(owner.worker_pids())
    return pids


class IndexReadWriteLock:
    """Many concurrent readers (queries) or one exclusive writer (mutations).

    The thread-serving path answers queries off the engine's *live* indexes,
    so an ``index_table``/``remove_table`` that swaps signature matrices
    mid-query would hand a reader inconsistent array shapes.  Queries enter
    through :func:`repro.core.api.execute` on the read side; the engine's
    mutators take the write side, which waits for in-flight readers to
    drain.  Readers are never parked behind a *waiting* writer, so nested
    read acquisitions on one thread cannot deadlock; mutations are rare and
    bounded, so writer starvation is not a practical serving concern.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writing = False

    def __getstate__(self) -> dict:
        # Lock state never travels: an engine copied across a process
        # boundary (or pickled into a legacy container) starts unlocked.
        return {}

    def __setstate__(self, state: dict) -> None:
        self.__init__()

    @contextmanager
    def read(self):
        with self._condition:
            while self._writing:
                self._condition.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._readers -= 1
                if not self._readers:
                    self._condition.notify_all()

    @contextmanager
    def write(self):
        with self._condition:
            while self._writing or self._readers:
                self._condition.wait()
            self._writing = True
        try:
            yield
        finally:
            with self._condition:
                self._writing = False
                self._condition.notify_all()


def _pool_size(requested: int) -> int:
    """Worker count for a pool: the request clamped to the host CPUs.

    Only the *pool* is clamped — shard partitioning stays a pure function of
    the requested worker count, so ``workers=N`` produces identical shards
    (and therefore identical merged results) on any host size.
    """
    return max(1, min(requested, os.cpu_count() or 1))


def _snapshot_descriptor(
    indexes: "D3LIndexes",
) -> Tuple["Descriptor", Optional["SharedIndexSnapshot"]]:
    """A shared snapshot of ``indexes`` plus the descriptor workers attach.

    Falls back to the degraded ``("pickle", indexes)`` descriptor — the old
    ship-a-copy-per-worker behavior — when no shared backing can be created,
    so fan-out keeps working (at the old cost) on hosts without ``/dev/shm``
    or a writable temp directory.
    """
    from repro.core.shared import SharedIndexSnapshot, SharedSnapshotError

    try:
        snapshot = SharedIndexSnapshot.create(indexes)
    except SharedSnapshotError:
        return ("pickle", indexes), None
    return snapshot.descriptor, snapshot


# --------------------------------------------------------------------------- #
# process-worker residency
# --------------------------------------------------------------------------- #

#: The worker process's resident view of the indexes, attached once by the
#: pool initializer.  Over the shared-memory path this is a read-only
#: reconstruction whose arrays are views into the host's one segment; only
#: under the degraded ``("pickle", ...)`` descriptor is it a private copy.
_WORKER_INDEXES: Optional["D3LIndexes"] = None


def _init_process_worker(descriptor: "Descriptor") -> None:
    """Pool initializer: attach this worker process to the shipped view."""
    global _WORKER_INDEXES
    from repro.core.shared import SharedIndexSnapshot

    _WORKER_INDEXES = (
        SharedIndexSnapshot.attach(descriptor) if descriptor is not None else None
    )


def _refresh_worker_indexes(delta) -> None:
    """Bring this worker's resident index up to the host's version.

    ``delta`` is a :func:`~repro.core.shared.build_index_delta` result (or
    None when the pool's snapshot is already current).  The delta rides on
    every task payload rather than being broadcast — each worker applies it
    on its next task, and the apply is idempotent and convergent from any
    intermediate state, so no barrier across the pool is needed.
    """
    if delta is not None:
        from repro.core.shared import apply_index_delta

        apply_index_delta(_WORKER_INDEXES, delta)


def _run_process_shard(task):
    """Trampoline for pooled shards: refresh, then run the pure shard fn."""
    fn, delta, payload = task
    _refresh_worker_indexes(delta)
    return fn(_WORKER_INDEXES, payload)


def _verify_overlaps_shard(
    indexes: "D3LIndexes", pairs
) -> List[Tuple["AttributeRef", "AttributeRef", float]]:
    """Shard fn: exact value overlaps of candidate pairs over ``indexes``.

    The value samples are resolved from the indexes' profiles — over the
    process backend that is the worker-resident attached snapshot, so the
    payload is the bare pair list and no samples are shipped at all.
    """
    from repro.core.profiles import sample_overlap

    profiles = indexes.profiles
    return [
        (
            left,
            right,
            sample_overlap(
                profiles[left].value_sample, profiles[right].value_sample
            ),
        )
        for left, right in pairs
    ]


def _finalize_pool(pool, snapshot) -> None:
    """Backstop for backends dropped without ``close()``: reap pool, unlink
    segment (worker mappings stay valid through their own exit)."""
    pool.shutdown(wait=False)
    if snapshot is not None:
        snapshot.close()


# --------------------------------------------------------------------------- #
# the backends
# --------------------------------------------------------------------------- #


class ExecutionBackend:
    """One logical view of the indexes plus a way to map shards over it.

    The contract every fan-out call site programs against:

    * :meth:`map_shards` — run a pure module-level ``fn(indexes, payload)``
      over payloads, preserving payload order in the result list;
    * :meth:`verify_overlaps` — the SA-join verification kernel, sharded
      round-robin with the same single-shard short-circuit every backend
      shares (so routing never changes the answer);
    * :attr:`snapshot` — the live shared snapshot backing worker processes
      (None for in-process backends);
    * ``close()`` / context manager — release pools and snapshots
      (idempotent; the backend is reusable afterwards).
    """

    #: The registry name of this backend (overridden per subclass).
    kind = "serial"

    def __init__(self, indexes: Optional["D3LIndexes"], workers: int) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.indexes = indexes
        self.workers = workers

    # -- the protocol ---------------------------------------------------- #
    def map_shards(self, fn: Callable, payloads: Sequence) -> List:
        """Run ``fn(indexes, payload)`` for every payload, in payload order."""
        raise NotImplementedError

    def verify_overlaps(
        self, pairs: Sequence[Tuple["AttributeRef", "AttributeRef"]]
    ) -> Dict[Tuple["AttributeRef", "AttributeRef"], float]:
        """Exact value overlaps of candidate pairs over this backend's view.

        Shards the deduplicated pairs round-robin across ``workers``; each
        worker resolves value samples from its view of the indexes, so
        payloads are bare pair lists.  Single-pair (or single-worker) calls
        short-circuit in-process over the live profiles — the result is
        routing- and backend-independent either way.
        """
        from repro.core.profiles import sample_overlap

        ordered = list(dict.fromkeys(pairs))
        if not ordered:
            return {}
        shards = [
            shard
            for shard in (
                ordered[index :: self.workers] for index in range(self.workers)
            )
            if shard
        ]
        if self.workers <= 1 or len(shards) <= 1 or len(ordered) <= 1:
            profiles = self.indexes.profiles
            return {
                (left, right): sample_overlap(
                    profiles[left].value_sample, profiles[right].value_sample
                )
                for left, right in ordered
            }
        shard_results = self.map_shards(_verify_overlaps_shard, shards)
        return {
            (left, right): overlap
            for result in shard_results
            for left, right, overlap in result
        }

    @property
    def snapshot(self) -> Optional["SharedIndexSnapshot"]:
        """The live shared snapshot backing workers (None when in-process)."""
        return None

    def close(self) -> None:
        """Release pools and snapshots (idempotent; backend stays usable)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """The oracle: every shard runs inline, in the calling thread."""

    kind = "serial"

    def map_shards(self, fn: Callable, payloads: Sequence) -> List:
        return [fn(self.indexes, payload) for payload in payloads]


class ThreadBackend(ExecutionBackend):
    """Shards scheduled on a lazily created thread pool over the live indexes.

    Today's serving-tier concurrency model made explicit: no serialization,
    no snapshot, shard functions read the one live index object — and
    CPU-bound work serialises on the GIL, which is exactly the ceiling the
    process backend lifts.
    """

    kind = "thread"

    def __init__(self, indexes: Optional["D3LIndexes"], workers: int) -> None:
        super().__init__(indexes, workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._finalizer: Optional[weakref.finalize] = None

    def map_shards(self, fn: Callable, payloads: Sequence) -> List:
        payloads = list(payloads)
        if len(payloads) <= 1:
            return [fn(self.indexes, payload) for payload in payloads]
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=_pool_size(self.workers))
            self._finalizer = weakref.finalize(
                self, ThreadPoolExecutor.shutdown, self._pool, wait=False
            )
        indexes = self.indexes
        return list(self._pool.map(lambda payload: fn(indexes, payload), payloads))

    def close(self) -> None:
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class ProcessBackend(ExecutionBackend):
    """Shards on worker processes attached to a shared index snapshot.

    The worker pool is created lazily on the first multi-shard map and kept
    alive for the backend's lifetime.  Pool spin-up exports one
    :class:`~repro.core.shared.SharedIndexSnapshot` of the indexes and ships
    each worker only the segment descriptor (~50 bytes); workers attach
    read-only array views over the one host-resident segment, so N workers
    cost neither N× index memory nor per-pool pickling.  The snapshot is
    taken at pool creation; when the index version moves past it,
    :meth:`_ensure_pool` self-heals — preferably by computing a per-table
    delta (:func:`~repro.core.shared.build_index_delta`) that subsequent task
    payloads carry to the workers, falling back to recreating pool and
    snapshot when the mutation set is too large or no longer reconstructible.

    ``share_index=False`` skips the snapshot/delta machinery and ships the
    given view (a profiling clone, or None) to each worker verbatim through
    the degraded pickle descriptor — the mode index builds and transient
    sample-shipping verification use, where workers need the configuration
    but not the (possibly still empty) index contents.
    """

    kind = "process"

    def __init__(
        self,
        indexes: Optional["D3LIndexes"],
        workers: int,
        share_index: bool = True,
    ) -> None:
        super().__init__(indexes, workers)
        self._share_index = share_index and indexes is not None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._snapshot: Optional["SharedIndexSnapshot"] = None
        self._pool_version: Optional[int] = None
        # Version the current snapshot was exported at (the fixed delta base:
        # individual workers may sit at any state between it and the current
        # version, depending on which deltas they have already applied), and
        # the pending delta shipped with every pooled task payload.
        self._snapshot_version: Optional[int] = None
        self._delta = None
        self._finalizer: Optional[weakref.finalize] = None
        register_worker_owner(self)

    @property
    def snapshot(self) -> Optional["SharedIndexSnapshot"]:
        """The live shared snapshot backing the pool (None before spin-up or
        under the degraded pickle descriptor)."""
        return self._snapshot

    def worker_pids(self) -> Set[int]:
        """PIDs of this backend's live worker processes (leak audit)."""
        processes = getattr(self._pool, "_processes", None) if self._pool else None
        return set(processes.keys()) if processes else set()

    def close(self) -> None:
        """Shut the pool down and unlink its snapshot (the backend can be
        reused afterwards — the next fan-out re-creates both)."""
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._snapshot is not None:
            self._snapshot.close()
            self._snapshot = None
        self._pool_version = None
        self._snapshot_version = None
        self._delta = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if (
            self._pool is not None
            and self._share_index
            and self._pool_version != self.indexes.version
        ):
            # The indexes moved past the state the workers hold.  Prefer a
            # per-table delta refresh over tearing the pool down: the delta
            # is always computed against the fixed snapshot version, so it is
            # valid for a worker at any intermediate state.
            from repro.core.shared import build_index_delta

            delta = build_index_delta(
                self.indexes, self._snapshot_version, max_tables=_DELTA_MAX_TABLES
            )
            if delta is None:
                # Not reconstructible (journal window exceeded) or too many
                # tables mutated — re-export the current state.
                self.close()
            else:
                self._delta = delta
                self._pool_version = self.indexes.version
        if self._pool is None:
            if self._share_index:
                descriptor, self._snapshot = _snapshot_descriptor(self.indexes)
                self._pool_version = self.indexes.version
                self._snapshot_version = self.indexes.version
            else:
                descriptor = ("pickle", self.indexes)
            self._delta = None
            self._pool = ProcessPoolExecutor(
                max_workers=_pool_size(self.workers),
                initializer=_init_process_worker,
                initargs=(descriptor,),
            )
            # Reap the pool and unlink the segment when the backend is
            # dropped without an explicit close(), so abandoned engines leak
            # neither worker processes nor /dev/shm segments (and do not
            # trip the interpreter-exit wakeup of concurrent.futures on an
            # already-collected pipe).
            self._finalizer = weakref.finalize(
                self, _finalize_pool, self._pool, self._snapshot
            )
        return self._pool

    def map_shards(self, fn: Callable, payloads: Sequence) -> List:
        payloads = list(payloads)
        if len(payloads) <= 1:
            # Single-shard maps run inline against the live view — the same
            # short-circuit every call site used before the backend layer,
            # so one-shard work never pays for pool spin-up.
            return [fn(self.indexes, payload) for payload in payloads]
        pool = self._ensure_pool()
        tasks = [(fn, self._delta, payload) for payload in payloads]
        return list(pool.map(_run_process_shard, tasks))


def create_backend(
    kind: str,
    indexes: Optional["D3LIndexes"],
    workers: int,
    share_index: bool = True,
) -> ExecutionBackend:
    """The backend factory every dispatching layer funnels through.

    ``kind`` must name a member of :data:`BACKENDS`.  Ownership transfers to
    the caller — close the backend (or use it as a context manager) when the
    fan-out scope ends.
    """
    if kind not in BACKENDS:
        raise ValueError(
            f"unknown backend {kind!r}; valid backends: {', '.join(BACKENDS)}"
        )
    if kind == "serial":
        return SerialBackend(indexes, workers)
    if kind == "thread":
        return ThreadBackend(indexes, workers)
    return ProcessBackend(indexes, workers, share_index=share_index)
