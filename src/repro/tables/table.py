"""Table abstraction: a named collection of equally long columns."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.tables.column import Column


class Table:
    """A named dataset with ordered, equally long columns.

    This mirrors what the paper calls a *dataset*: a tabular file in the lake
    whose only metadata are its attribute names (and, implicitly, inferred
    domain-independent types).
    """

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not isinstance(name, str) or not name:
            raise ValueError("table name must be a non-empty string")
        columns = list(columns)
        if not columns:
            raise ValueError(f"table {name!r} must have at least one column")
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            raise ValueError(
                f"table {name!r} has columns of differing lengths: {sorted(lengths)}"
            )
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"table {name!r} has duplicate column names: {duplicates}")
        self.name = name
        self._columns: List[Column] = columns
        self._by_name: Dict[str, Column] = {column.name: column for column in columns}

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(
        cls,
        name: str,
        header: Sequence[str],
        rows: Iterable[Sequence[object]],
    ) -> "Table":
        """Build a table from a header and an iterable of rows.

        Short rows are padded with None and long rows truncated, which is the
        pragmatic behaviour needed for dirty open-data CSVs.
        """
        header = list(header)
        cells: List[List[object]] = [[] for _ in header]
        for row in rows:
            row = list(row)
            for i in range(len(header)):
                cells[i].append(row[i] if i < len(row) else None)
        columns = [Column(column_name, values) for column_name, values in zip(header, cells)]
        return cls(name, columns)

    @classmethod
    def from_dict(cls, name: str, data: Dict[str, Sequence[object]]) -> "Table":
        """Build a table from a mapping of column name to values."""
        return cls(name, [Column(key, values) for key, values in data.items()])

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def columns(self) -> List[Column]:
        """The ordered list of columns."""
        return self._columns

    @property
    def column_names(self) -> List[str]:
        """The ordered list of attribute names."""
        return [column.name for column in self._columns]

    @property
    def arity(self) -> int:
        """Number of attributes (the paper reports this in Figure 2a)."""
        return len(self._columns)

    @property
    def cardinality(self) -> int:
        """Number of rows (the paper reports this in Figure 2b)."""
        return len(self._columns[0]) if self._columns else 0

    @property
    def numeric_ratio(self) -> float:
        """Fraction of attributes inferred as numeric (Figure 2c)."""
        if not self._columns:
            return 0.0
        numeric = sum(1 for column in self._columns if column.is_numeric)
        return numeric / len(self._columns)

    def __len__(self) -> int:
        return self.cardinality

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._by_name

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Table({self.name!r}, arity={self.arity}, rows={self.cardinality})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.name == other.name and self._columns == other._columns

    def column(self, name: str) -> Column:
        """Return the column called ``name`` or raise KeyError."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        """Return True when the table has a column called ``name``."""
        return name in self._by_name

    def column_index(self, name: str) -> int:
        """Return the position of column ``name``."""
        for index, column in enumerate(self._columns):
            if column.name == name:
                return index
        raise KeyError(f"table {self.name!r} has no column {name!r}")

    # ------------------------------------------------------------------ #
    # row-wise views
    # ------------------------------------------------------------------ #
    def rows(self) -> Iterator[Tuple[object, ...]]:
        """Iterate over rows as tuples, in storage order."""
        return zip(*(column.values for column in self._columns))

    def row(self, index: int) -> Tuple[object, ...]:
        """Return the row at ``index``."""
        return tuple(column[index] for column in self._columns)

    def head(self, n: int = 5) -> List[Tuple[object, ...]]:
        """Return the first ``n`` rows (for examples and debugging)."""
        result = []
        for i, row in enumerate(self.rows()):
            if i >= n:
                break
            result.append(row)
        return result

    # ------------------------------------------------------------------ #
    # derived tables
    # ------------------------------------------------------------------ #
    def with_name(self, new_name: str) -> "Table":
        """Return the same table under a different name."""
        return Table(new_name, self._columns)

    def take_rows(self, indices: Sequence[int], name: Optional[str] = None) -> "Table":
        """Return a new table containing only the rows at ``indices``."""
        new_name = name or self.name
        return Table(new_name, [column.take(indices) for column in self._columns])

    def select_columns(self, names: Sequence[str], name: Optional[str] = None) -> "Table":
        """Return a new table with only the named columns, in the given order."""
        new_name = name or self.name
        return Table(new_name, [self.column(column_name) for column_name in names])

    def estimated_bytes(self) -> int:
        """Approximate in-memory size of the table, for Table II accounting."""
        header = sum(len(column.name) for column in self._columns)
        return header + sum(column.estimated_bytes() for column in self._columns)

    def describe(self) -> Dict[str, object]:
        """Summary statistics used by Figure 2 style reporting."""
        return {
            "name": self.name,
            "arity": self.arity,
            "cardinality": self.cardinality,
            "numeric_ratio": self.numeric_ratio,
            "columns": self.column_names,
        }
