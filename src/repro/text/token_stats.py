"""Token histograms and the informative-token selection of Algorithm 1.

For every value in an attribute extent the paper splits the value into parts
and, per part, adds to the attribute's tset the word with the *fewest*
occurrences in the extent (a TF/IDF-like notion of informativeness), and
looks up the word-embedding vector of the word with the *most* occurrences
(a frequently occurring word like ``street`` is weak evidence of value
overlap but strong evidence of the attribute's domain-specific type).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.text.tokenizer import tokenize_parts


class TokenHistogram:
    """Occurrence histogram of word tokens across an attribute extent.

    Mirrors the ``histogram`` data structure of Algorithm 1: tokens are
    inserted per value, and the histogram can report which tokens are
    frequent or infrequent relative to the extent.
    """

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self._total_values = 0

    def insert(self, tokens: Iterable[str]) -> None:
        """Record the tokens of one value."""
        self._counts.update(tokens)
        self._total_values += 1

    def count(self, token: str) -> int:
        """Number of occurrences of ``token`` across the extent."""
        return self._counts[token]

    def __len__(self) -> int:
        return len(self._counts)

    @property
    def total_values(self) -> int:
        """Number of values inserted so far."""
        return self._total_values

    def frequency_threshold(self) -> float:
        """Occurrence count above which a token is considered frequent.

        Tokens appearing more often than the mean occurrence count are
        frequent; everything else is infrequent.  With near-unique extents
        (mean ~1) every token is infrequent, which matches the intuition that
        such extents carry value-overlap signal rather than type signal.
        """
        if not self._counts:
            return 0.0
        return sum(self._counts.values()) / len(self._counts)

    def frequent(self) -> Set[str]:
        """Tokens whose occurrence count exceeds the frequency threshold."""
        threshold = self.frequency_threshold()
        return {token for token, count in self._counts.items() if count > threshold}

    def infrequent(self) -> Set[str]:
        """Tokens whose occurrence count does not exceed the threshold."""
        threshold = self.frequency_threshold()
        return {token for token, count in self._counts.items() if count <= threshold}

    def most_common(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` most frequent tokens with their counts."""
        return self._counts.most_common(n)

    def as_dict(self) -> Dict[str, int]:
        """A copy of the raw counts."""
        return dict(self._counts)


def informative_and_frequent_tokens(values: Sequence[str]) -> Tuple[Set[str], Set[str]]:
    """Compute the tset and the embedding-token set of an attribute extent.

    Implements the per-part selection of Algorithm 1:

    * the tset receives, for each part of each value, the word with the
      fewest occurrences across the extent (ties broken towards the longer,
      then lexicographically smaller word so the choice is deterministic);
    * the embedding-token set receives, for each part, the word with the most
      occurrences across the extent (same deterministic tie-breaking).

    Returns ``(tset, embedding_tokens)``.
    """
    histogram = TokenHistogram()
    per_value_parts: List[List[List[str]]] = []
    for value in values:
        parts = tokenize_parts(str(value))
        per_value_parts.append(parts)
        histogram.insert([token for part in parts for token in part])

    tset: Set[str] = set()
    embedding_tokens: Set[str] = set()
    for parts in per_value_parts:
        for part in parts:
            if not part:
                continue
            rarest = min(part, key=lambda token: (histogram.count(token), -len(token), token))
            commonest = max(part, key=lambda token: (histogram.count(token), len(token), token))
            tset.add(rarest)
            embedding_tokens.add(commonest)
    return tset, embedding_tokens


def value_token_set(values: Sequence[str]) -> Set[str]:
    """The union of all word tokens of an extent (used by the baselines).

    TUS and Aurum index full token sets rather than the informative subset;
    exposing this here lets the baselines share the tokenizer.
    """
    tokens: Set[str] = set()
    for value in values:
        for part in tokenize_parts(str(value)):
            tokens.update(part)
    return tokens
