"""Tests for cross-validation helpers."""

import numpy as np
import pytest

from repro.ml.cross_validation import cross_validate_accuracy, k_fold_indices, train_test_split
from repro.ml.logistic_regression import LogisticRegression


class TestKFold:
    def test_number_of_folds(self):
        assert len(k_fold_indices(20, 5)) == 5

    def test_every_sample_tested_exactly_once(self):
        splits = k_fold_indices(23, 4, seed=1)
        tested = np.concatenate([test for _, test in splits])
        assert sorted(tested.tolist()) == list(range(23))

    def test_train_and_test_disjoint(self):
        for train, test in k_fold_indices(15, 3):
            assert set(train.tolist()).isdisjoint(test.tolist())

    def test_rejects_too_few_folds(self):
        with pytest.raises(ValueError):
            k_fold_indices(10, 1)

    def test_rejects_more_folds_than_samples(self):
        with pytest.raises(ValueError):
            k_fold_indices(3, 5)

    def test_deterministic_given_seed(self):
        first = k_fold_indices(10, 2, seed=7)
        second = k_fold_indices(10, 2, seed=7)
        assert all(
            np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
            for a, b in zip(first, second)
        )


class TestTrainTestSplit:
    def test_sizes(self):
        train, test = train_test_split(100, test_fraction=0.25, seed=0)
        assert len(test) == 25
        assert len(train) == 75

    def test_disjoint_and_complete(self):
        train, test = train_test_split(40, test_fraction=0.2, seed=3)
        combined = sorted(np.concatenate([train, test]).tolist())
        assert combined == list(range(40))

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(10, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(10, test_fraction=1.0)


class TestCrossValidateAccuracy:
    def test_accuracy_on_learnable_problem(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((200, 2))
        y = (X[:, 0] > 0).astype(int)
        accuracies = cross_validate_accuracy(LogisticRegression, X, y, k=5)
        assert len(accuracies) == 5
        assert np.mean(accuracies) > 0.9

    def test_each_fold_accuracy_in_unit_interval(self):
        rng = np.random.default_rng(1)
        X = rng.standard_normal((60, 2))
        y = rng.integers(0, 2, 60)
        accuracies = cross_validate_accuracy(LogisticRegression, X, y, k=3)
        assert all(0.0 <= accuracy <= 1.0 for accuracy in accuracies)
