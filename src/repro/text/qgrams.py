"""Q-gram extraction for attribute-name evidence (N).

The paper uses q = 4: ``Address`` yields ``{addr, ddre, dres, ress}``.  Names
are lower-cased and stripped of non-alphanumeric characters before q-gram
extraction so that ``Practice Name`` and ``practice_name`` produce the same
q-gram set.
"""

from __future__ import annotations

import re
from typing import Set

_NON_ALNUM_RE = re.compile(r"[^a-z0-9]+")

#: The q used throughout the paper (section III-B, Example 2).
DEFAULT_Q = 4


def normalise_name(name: str) -> str:
    """Lower-case a name and collapse separators to single spaces."""
    return _NON_ALNUM_RE.sub(" ", name.lower()).strip()


def qgrams(text: str, q: int = DEFAULT_Q) -> Set[str]:
    """Return the set of q-grams of ``text``.

    Strings shorter than ``q`` contribute themselves as a single gram, so that
    short names (``GP``, ``ID``) still have a non-empty representation.
    """
    if q <= 0:
        raise ValueError("q must be positive")
    text = text.strip()
    if not text:
        return set()
    if len(text) < q:
        return {text}
    return {text[i : i + q] for i in range(len(text) - q + 1)}


def name_qgrams(name: str, q: int = DEFAULT_Q) -> Set[str]:
    """Q-gram set of an attribute name.

    Each whitespace-separated word of the normalised name contributes its own
    q-grams, as does the concatenation of all words — this keeps
    ``Practice Name`` similar to both ``Practice`` and ``PracticeName``.
    """
    normalised = normalise_name(name)
    if not normalised:
        return set()
    grams: Set[str] = set()
    words = normalised.split()
    for word in words:
        grams |= qgrams(word, q)
    if len(words) > 1:
        grams |= qgrams("".join(words), q)
    return grams
