"""Ablation — the aggregation/weighting scheme (design choice of section III-D).

The paper attributes part of D3L's advantage to (i) the Equation 2 CCDF
weighting inside Equation 1 and (ii) the learned Equation 3 evidence weights,
in contrast with the max-score aggregation used by the baselines.  This
ablation compares, on the real-style corpus:

* D3L with its trained Equation 3 weights (the full system);
* D3L with uniform evidence weights;
* single-evidence rankings (value evidence only), which approximates a
  max-signal strategy over the strongest individual evidence type.
"""

import numpy as np

from conftest import REAL_KS, NUM_TARGETS, run_once

from repro.core.evidence import EvidenceType
from repro.core.weights import EvidenceWeights
from repro.evaluation.metrics import precision_recall_at_k


def _sweep(suite, weights, evidence_types, ks, num_targets, seed):
    benchmark_corpus = suite.benchmark
    targets = benchmark_corpus.pick_targets(num_targets, seed=seed)
    max_k = max(ks)
    rows = []
    answers = {
        target.name: suite.d3l.query(
            target, k=max_k, evidence_types=evidence_types, weights=weights
        )
        for target in targets
    }
    for k in ks:
        precisions, recalls = [], []
        for target in targets:
            precision, recall = precision_recall_at_k(
                answers[target.name], benchmark_corpus.ground_truth, target.name, k
            )
            precisions.append(precision)
            recalls.append(recall)
        rows.append(
            {
                "k": k,
                "precision": float(np.mean(precisions)),
                "recall": float(np.mean(recalls)),
            }
        )
    return rows


def test_ablation_weighting_scheme(benchmark, record_rows, real_suite):
    def run_ablation():
        variants = {
            "trained_weights": (real_suite.d3l.weights, None),
            "uniform_weights": (EvidenceWeights.uniform(), None),
            "value_only": (None, [EvidenceType.VALUE]),
        }
        rows = []
        for label, (weights, evidence_types) in variants.items():
            for row in _sweep(
                real_suite, weights, evidence_types, REAL_KS, NUM_TARGETS, seed=14
            ):
                rows.append({"variant": label, **row})
        return rows

    rows = run_once(benchmark, run_ablation)
    record_rows(
        "ablation_weighting",
        rows,
        "Ablation: trained Eq.3 weights vs uniform weights vs value-only ranking",
    )

    def mean_recall(variant):
        return float(np.mean([row["recall"] for row in rows if row["variant"] == variant]))

    # Multi-evidence aggregation (trained or uniform) beats single-evidence ranking.
    assert max(mean_recall("trained_weights"), mean_recall("uniform_weights")) >= mean_recall(
        "value_only"
    ) - 0.05
