"""Scalar reference implementations of the LSH hot paths.

These mirror the seed implementation — list-of-tuples prefix trees rebuilt
with ``bisect``, one-pair-at-a-time signature distances, per-token hashing
without a cache — and serve as the correctness oracle for the vectorized
engine: equivalence tests assert that the NumPy-backed
:class:`~repro.lsh.lsh_forest.LSHForest` and the batched distance paths
return byte-identical signatures and identical ``(key, distance)`` rankings,
and ``benchmarks/bench_perf_hot_paths.py`` times the two against each other.

:meth:`ScalarLSHForest.query` follows the same candidate-collection policy
as the vectorized forest (descend prefix levels, stop as soon as ``k``
candidates are found) so the two are directly comparable; only the storage
layout and the per-call work differ.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left, bisect_right
from typing import Hashable, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.lsh.minhash import MinHash
from repro.lsh.random_projection import RandomProjection


class ScalarPrefixTree:
    """Seed layout: a sorted Python list of (key tuple, item) pairs.

    ``query_prefix`` rebuilds the key list on every call — the O(n) hot-path
    cost the vectorized tree eliminates.
    """

    def __init__(self, key_length: int) -> None:
        self.key_length = key_length
        self._entries: List[Tuple[Tuple[int, ...], Hashable]] = []
        self._sorted = True

    def insert(self, key: Tuple[int, ...], item: Hashable) -> None:
        self._entries.append((key, item))
        self._sorted = False

    def remove(self, item: Hashable) -> None:
        self._entries = [(key, entry) for key, entry in self._entries if entry != item]

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            # Sort by (key, item): ties between equal keys resolve by item,
            # the same canonical order the vectorized tree materialises, so
            # both layouts are pure functions of the entry set and stay
            # comparable across any insert/remove/re-insert history.
            self._entries.sort()
            self._sorted = True

    def query_prefix(self, key: Tuple[int, ...], prefix_length: int) -> List[Hashable]:
        """All items whose key agrees with ``key`` on the first ``prefix_length`` positions."""
        self._ensure_sorted()
        if prefix_length <= 0 or not self._entries:
            return []
        prefix = key[:prefix_length]
        low_key = prefix
        high_key = prefix + ((np.iinfo(np.int64).max,) * (self.key_length - prefix_length))
        keys = [entry[0] for entry in self._entries]
        low = bisect_left(keys, low_key)
        high = bisect_right(keys, high_key)
        return [self._entries[i][1] for i in range(low, high)]

    def __len__(self) -> int:
        return len(self._entries)


class ScalarLSHForest:
    """Seed-layout LSH Forest with the same query policy as the NumPy one."""

    def __init__(self, num_hashes: int = 256, num_trees: int = 8, seed: int = 11) -> None:
        if num_trees <= 0 or num_hashes <= 0:
            raise ValueError("num_hashes and num_trees must be positive")
        if num_hashes < num_trees:
            raise ValueError("num_hashes must be at least num_trees")
        self.num_hashes = num_hashes
        self.num_trees = num_trees
        self.key_length = num_hashes // num_trees
        self.seed = seed
        self._trees = [ScalarPrefixTree(self.key_length) for _ in range(num_trees)]
        self._signatures: dict = {}

    def __len__(self) -> int:
        return len(self._signatures)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._signatures

    def _tree_keys(self, signature: np.ndarray) -> List[Tuple[int, ...]]:
        keys = []
        for tree_index in range(self.num_trees):
            start = tree_index * self.key_length
            chunk = signature[start : start + self.key_length]
            keys.append(tuple(int(value) for value in chunk))
        return keys

    def insert(self, key: Hashable, signature: np.ndarray) -> None:
        signature = np.asarray(signature)
        if signature.shape[0] < self.num_hashes:
            raise ValueError(
                f"signature of length {signature.shape[0]} is shorter than num_hashes={self.num_hashes}"
            )
        if key in self._signatures:
            self.remove(key)
        self._signatures[key] = signature
        for tree, tree_key in zip(self._trees, self._tree_keys(signature)):
            tree.insert(tree_key, key)

    def remove(self, key: Hashable) -> None:
        if key not in self._signatures:
            return
        del self._signatures[key]
        for tree in self._trees:
            tree.remove(key)

    def signature(self, key: Hashable) -> np.ndarray:
        return self._signatures[key]

    def query(
        self,
        signature: np.ndarray,
        k: int,
        exclude: Optional[Hashable] = None,
    ) -> List[Hashable]:
        if k <= 0:
            return []
        signature = np.asarray(signature)
        tree_keys = self._tree_keys(signature)
        seen: Set[Hashable] = set()
        results: List[Hashable] = []
        for prefix_length in range(self.key_length, 0, -1):
            for tree, tree_key in zip(self._trees, tree_keys):
                for item in tree.query_prefix(tree_key, prefix_length):
                    if item == exclude or item in seen:
                        continue
                    seen.add(item)
                    results.append(item)
                if len(results) >= k:
                    return results[:k]
        return results

    def query_all(self, signature: np.ndarray, exclude: Optional[Hashable] = None) -> List[Hashable]:
        return self.query(signature, k=len(self._signatures) + 1, exclude=exclude)

    def keys(self) -> List[Hashable]:
        return list(self._signatures)


def scalar_signature_distance(first: object, second: object) -> float:
    """Seed distance path: one pair at a time, via the signature objects."""
    if isinstance(first, MinHash) and isinstance(second, MinHash):
        if first.is_empty() or second.is_empty():
            return 1.0
        return first.jaccard_distance(second)
    if isinstance(first, RandomProjection) and isinstance(second, RandomProjection):
        return first.cosine_distance(second)
    raise TypeError("cannot compare signatures of different kinds")


def scalar_hash_tokens(tokens: Iterable[str], seed: int = 0) -> np.ndarray:
    """Seed token hashing: a fresh keyed blake2b per token, no cache."""
    unique = set(tokens)
    if not unique:
        return np.empty(0, dtype=np.uint64)
    key = seed.to_bytes(8, "little", signed=False)
    return np.fromiter(
        (
            int.from_bytes(
                hashlib.blake2b(
                    token.encode("utf-8", errors="replace"), digest_size=8, key=key
                ).digest()[:4],
                "little",
            )
            # The hash set feeds a min-reduction (MinHash), so iteration
            # order cannot reach any result; sorting here would only slow
            # the oracle down.
            for token in unique  # repro-check: disable=R2
        ),
        dtype=np.uint64,
        count=len(unique),
    )


def scalar_ks_statistic(first, second) -> float:
    """Seed KS path: re-sorts both samples on every call."""
    a = np.asarray(list(first), dtype=np.float64)
    b = np.asarray(list(second), dtype=np.float64)
    a = a[np.isfinite(a)]
    b = b[np.isfinite(b)]
    if a.size == 0 or b.size == 0:
        return 1.0
    a.sort()
    b.sort()
    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / a.size
    cdf_b = np.searchsorted(b, pooled, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())
