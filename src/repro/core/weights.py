"""Evidence-type weights for Equation 3 and their training (section III-D).

The paper frames relatedness discovery as a binary classification problem:
pairs (T, S) labelled related/unrelated from a benchmark ground truth, with
the five Equation 1 distances as features.  A logistic-regression model is
fitted with coordinate descent and its coefficients become the weights of
Equation 3, the intuition being that they minimise the combined distance
between related pairs and maximise it between unrelated ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.evidence import EvidenceType
from repro.ml.logistic_regression import LogisticRegression

#: Default weights used before any training has happened.  Values reflect the
#: paper's qualitative findings (Experiment 1): value evidence is the most
#: discriminating, names/embeddings follow, format alone is weak, and numeric
#: distribution evidence contributes least.
DEFAULT_WEIGHTS: Dict[EvidenceType, float] = {
    EvidenceType.NAME: 1.0,
    EvidenceType.VALUE: 1.5,
    EvidenceType.FORMAT: 0.5,
    EvidenceType.EMBEDDING: 1.0,
    EvidenceType.DISTRIBUTION: 0.25,
}


@dataclass
class EvidenceWeights:
    """Weights of the five evidence types used by Equation 3."""

    values: Dict[EvidenceType, float] = field(default_factory=lambda: dict(DEFAULT_WEIGHTS))
    training_accuracy: Optional[float] = None

    def __getitem__(self, evidence: EvidenceType) -> float:
        return self.values[evidence]

    def get(self, evidence: EvidenceType, default: float = 0.0) -> float:
        """Weight of ``evidence`` (mapping-style access for Equation 3)."""
        return self.values.get(evidence, default)

    def as_dict(self) -> Dict[EvidenceType, float]:
        """A copy of the weight mapping."""
        return dict(self.values)

    def normalised(self) -> "EvidenceWeights":
        """The same weights scaled to sum to the number of evidence types."""
        total = sum(self.values.values())
        if total <= 0:
            return EvidenceWeights(dict(DEFAULT_WEIGHTS), self.training_accuracy)
        scale = len(self.values) / total
        return EvidenceWeights(
            {evidence: weight * scale for evidence, weight in self.values.items()},
            self.training_accuracy,
        )

    @classmethod
    def uniform(cls) -> "EvidenceWeights":
        """Equal weights for every evidence type (ablation baseline)."""
        return cls({evidence: 1.0 for evidence in EvidenceType.all()})

    @classmethod
    def single(cls, evidence: EvidenceType) -> "EvidenceWeights":
        """Weights selecting a single evidence type (Experiment 1 mode)."""
        return cls({e: (1.0 if e is evidence else 0.0) for e in EvidenceType.all()})


def train_evidence_weights(
    training_pairs: Sequence[Tuple[Mapping[EvidenceType, float], int]],
    test_pairs: Optional[Sequence[Tuple[Mapping[EvidenceType, float], int]]] = None,
    l2: float = 1e-3,
) -> EvidenceWeights:
    """Train Equation 3 weights from labelled (distance vector, label) pairs.

    ``training_pairs`` (and optionally ``test_pairs``) contain the Equation 1
    aggregated distance vector of a (target, candidate) pair together with a
    binary label: 1 when the pair is related in the ground truth, 0 otherwise.

    The logistic regression is fitted on *similarities* (1 - distance) so
    that positive coefficients mean "this evidence type, when strong,
    indicates relatedness"; coefficient magnitudes then serve as Equation 3
    weights.  Non-positive coefficients are clamped to a small floor so no
    evidence type is discarded entirely (mirroring the paper, which keeps all
    five dimensions).
    """
    if not training_pairs:
        return EvidenceWeights()
    order = list(EvidenceType.all())
    features = np.asarray(
        [
            [1.0 - float(vector.get(evidence, 1.0)) for evidence in order]
            for vector, _ in training_pairs
        ],
        dtype=np.float64,
    )
    labels = np.asarray([label for _, label in training_pairs], dtype=int)
    if len(np.unique(labels)) < 2:
        return EvidenceWeights()

    model = LogisticRegression(l2=l2)
    model.fit(features, labels)

    accuracy: Optional[float] = None
    if test_pairs:
        test_features = np.asarray(
            [
                [1.0 - float(vector.get(evidence, 1.0)) for evidence in order]
                for vector, _ in test_pairs
            ],
            dtype=np.float64,
        )
        test_labels = np.asarray([label for _, label in test_pairs], dtype=int)
        accuracy = model.score(test_features, test_labels)
    else:
        accuracy = model.score(features, labels)

    floor = 0.05
    raw = {evidence: float(coef) for evidence, coef in zip(order, model.coef_)}
    weights = {evidence: max(raw[evidence], floor) for evidence in order}
    return EvidenceWeights(weights, training_accuracy=accuracy)
