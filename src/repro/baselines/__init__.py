"""Baseline systems the paper compares against.

* :mod:`repro.baselines.tus` — Table Union Search (Nargesian et al., PVLDB
  2018): instance-value-only unionability with set, semantic
  (knowledge-base) and natural-language (embedding) evidence, max-score
  ensemble.
* :mod:`repro.baselines.aurum` — Aurum (Castro Fernandez et al., ICDE 2018):
  two-step profiling + enterprise-knowledge-graph construction, queried by
  graph traversal with certainty ranking; PK/FK candidate edges provide the
  ``Aurum+J`` variant.
* :mod:`repro.baselines.knowledge_base` — the synthetic ontology standing in
  for YAGO in the TUS baseline.

Both baselines expose the same ``index_lake`` / ``query`` surface as the D3L
engine and return :class:`~repro.baselines.base.RankedAnswer` objects that
duck-type the D3L query result, so the evaluation harness treats all three
systems uniformly.
"""

from repro.baselines.aurum import Aurum
from repro.baselines.base import Alignment, RankedAnswer, RankedTable
from repro.baselines.knowledge_base import KnowledgeBase
from repro.baselines.tus import TableUnionSearch

__all__ = [
    "Alignment",
    "Aurum",
    "KnowledgeBase",
    "RankedAnswer",
    "RankedTable",
    "TableUnionSearch",
]
