"""Column abstraction: a named attribute together with its extent."""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, List, Optional, Sequence

from repro.tables.types import ValueType, coerce_numeric, infer_type, is_missing


class Column:
    """A named attribute and its extent (the list of cell values).

    Values are stored as provided (usually strings read from CSV).  Type
    inference, the non-missing extent, and the numeric view are computed
    lazily and cached because attribute profiling (Algorithm 1 in the paper)
    touches them repeatedly.
    """

    __slots__ = ("name", "_values", "__dict__")

    def __init__(self, name: str, values: Sequence[object]) -> None:
        if not isinstance(name, str) or not name:
            raise ValueError("column name must be a non-empty string")
        self.name = name
        self._values: List[object] = list(values)

    # ------------------------------------------------------------------ #
    # basic container behaviour
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self):
        return iter(self._values)

    def __getitem__(self, index):
        return self._values[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Column({self.name!r}, n={len(self._values)}, type={self.value_type.value})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return self.name == other.name and self._values == other._values

    def __hash__(self) -> int:
        return hash((self.name, len(self._values)))

    @property
    def values(self) -> List[object]:
        """The raw extent, including missing cells, in row order."""
        return self._values

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    @cached_property
    def value_type(self) -> ValueType:
        """Inferred domain-independent type of the column."""
        return infer_type(self._values)

    @property
    def is_numeric(self) -> bool:
        """True when the column is treated as numeric by the framework."""
        return self.value_type is ValueType.NUMERIC

    @property
    def is_textual(self) -> bool:
        """True when the column is treated as textual by the framework."""
        return self.value_type is ValueType.TEXT

    @cached_property
    def non_missing(self) -> List[str]:
        """Non-missing values rendered as stripped strings, in row order."""
        result: List[str] = []
        for value in self._values:
            if is_missing(value):
                continue
            result.append(str(value).strip())
        return result

    @cached_property
    def numeric_values(self) -> List[float]:
        """The numeric interpretation of the non-missing extent."""
        result: List[float] = []
        for value in self._values:
            number = coerce_numeric(value)
            if number is not None:
                result.append(number)
        return result

    @cached_property
    def distinct_values(self) -> List[str]:
        """Distinct non-missing values (insertion ordered)."""
        seen = {}
        for value in self.non_missing:
            seen.setdefault(value, None)
        return list(seen)

    # ------------------------------------------------------------------ #
    # summary statistics used by profiling and the subject-attribute model
    # ------------------------------------------------------------------ #
    @property
    def null_ratio(self) -> float:
        """Fraction of missing cells."""
        if not self._values:
            return 1.0
        return 1.0 - len(self.non_missing) / len(self._values)

    @property
    def distinct_ratio(self) -> float:
        """Fraction of non-missing cells holding distinct values."""
        if not self.non_missing:
            return 0.0
        return len(self.distinct_values) / len(self.non_missing)

    @property
    def mean_string_length(self) -> float:
        """Average length of non-missing values rendered as strings."""
        if not self.non_missing:
            return 0.0
        return sum(len(value) for value in self.non_missing) / len(self.non_missing)

    def head(self, n: int = 5) -> List[object]:
        """First ``n`` raw values, useful for examples and debugging."""
        return self._values[:n]

    def rename(self, new_name: str) -> "Column":
        """Return a copy of this column under ``new_name``."""
        return Column(new_name, self._values)

    def take(self, indices: Iterable[int]) -> "Column":
        """Return a copy of this column restricted to ``indices`` (row order)."""
        values = self._values
        return Column(self.name, [values[i] for i in indices])

    def estimated_bytes(self) -> int:
        """Approximate in-memory size of the extent, for space accounting."""
        total = 0
        for value in self._values:
            if value is None:
                total += 1
            else:
                total += len(str(value))
        return total

    @staticmethod
    def from_numeric(name: str, values: Sequence[Optional[float]]) -> "Column":
        """Build a column from numbers, keeping None for missing entries."""
        rendered = [None if v is None else repr(float(v)) for v in values]
        return Column(name, rendered)
