"""Tests for the Synthetic corpus generator."""

import pytest

from repro.datagen.synthetic_benchmark import (
    SyntheticBenchmarkConfig,
    generate_synthetic_benchmark,
)
from repro.lake.datalake import AttributeRef


class TestConfigValidation:
    def test_rejects_zero_tables(self):
        with pytest.raises(ValueError):
            SyntheticBenchmarkConfig(num_base_tables=0)

    def test_rejects_bad_row_bounds(self):
        with pytest.raises(ValueError):
            SyntheticBenchmarkConfig(min_rows=0)
        with pytest.raises(ValueError):
            SyntheticBenchmarkConfig(min_rows=100, max_rows=50)
        with pytest.raises(ValueError):
            SyntheticBenchmarkConfig(max_rows=500, base_rows=200)

    def test_rejects_bad_retention(self):
        with pytest.raises(ValueError):
            SyntheticBenchmarkConfig(subject_retention=1.5)


class TestGeneration:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_synthetic_benchmark(
            SyntheticBenchmarkConfig(
                num_base_tables=5, tables_per_base=4, base_rows=60, min_rows=20, max_rows=50, seed=3
            )
        )

    def test_table_count(self, corpus):
        assert len(corpus.lake) == 5 * 4

    def test_row_bounds_respected(self, corpus):
        for table in corpus.lake:
            assert 20 <= table.cardinality <= 50

    def test_column_bounds_respected(self, corpus):
        for table in corpus.lake:
            assert table.arity >= 3

    def test_tables_from_same_base_are_related(self, corpus):
        names = corpus.lake.table_names
        same_base = [name for name in names if name.startswith(names[0].rsplit("_", 1)[0])]
        assert len(same_base) == 4
        for other in same_base[1:]:
            assert corpus.ground_truth.is_related(same_base[0], other)

    def test_tables_from_different_bases_are_unrelated(self, corpus):
        names = corpus.lake.table_names
        first_base = names[0].rsplit("_", 1)[0]
        other = next(name for name in names if not name.startswith(first_base))
        assert not corpus.ground_truth.is_related(names[0], other)

    def test_attribute_domains_recorded_for_every_column(self, corpus):
        for table in corpus.lake:
            for column_name in table.column_names:
                ref = AttributeRef(table.name, column_name)
                assert corpus.ground_truth.domain_of(ref) is not None

    def test_derived_values_copied_from_base(self, corpus):
        # Related tables share actual values (consistent representation).
        names = corpus.lake.table_names
        first = corpus.lake.table(names[0])
        related_name = next(iter(corpus.ground_truth.related_to(names[0])))
        related = corpus.lake.table(related_name)
        shared_columns = set(first.column_names) & set(related.column_names)
        assert shared_columns
        column = next(iter(shared_columns))
        overlap = set(first.column(column).non_missing) & set(related.column(column).non_missing)
        assert overlap

    def test_average_answer_size(self, corpus):
        assert corpus.average_answer_size() == pytest.approx(3.0)

    def test_deterministic(self):
        config = SyntheticBenchmarkConfig(
            num_base_tables=3, tables_per_base=2, base_rows=40, min_rows=10, max_rows=30, seed=9
        )
        first = generate_synthetic_benchmark(config)
        second = generate_synthetic_benchmark(config)
        assert first.lake.table_names == second.lake.table_names
        assert first.lake.tables[0] == second.lake.tables[0]

    def test_subject_attributes_recorded_when_retained(self, corpus):
        labelled = corpus.ground_truth.labelled_subject_attributes()
        assert labelled
        for table_name, subject in labelled:
            assert subject in corpus.lake.table(table_name)
