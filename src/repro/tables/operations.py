"""Relational operations over :class:`~repro.tables.table.Table`.

These are the operations the reproduction needs:

* *projection* and *selection* — used by the Synthetic benchmark generator,
  which derives lake tables from base tables exactly as the TUS benchmark
  does (random projections and selections);
* *join* — used to materialise join-path results when measuring the coverage
  contributed by D3L+J (section IV of the paper);
* *union* — used by examples that actually populate a target from the
  discovered unionable tables.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.tables.column import Column
from repro.tables.table import Table
from repro.tables.types import is_missing


def project(table: Table, column_names: Sequence[str], name: Optional[str] = None) -> Table:
    """Return the projection of ``table`` onto ``column_names``."""
    return table.select_columns(list(column_names), name=name)


def select(
    table: Table,
    predicate: Callable[[Dict[str, object]], bool],
    name: Optional[str] = None,
) -> Table:
    """Return the rows of ``table`` for which ``predicate(row_dict)`` holds.

    When no row satisfies the predicate a zero-row table with the same schema
    is returned rather than raising, because benchmark derivation applies
    arbitrary selections.
    """
    names = table.column_names
    kept: List[int] = []
    for index, row in enumerate(table.rows()):
        row_dict = dict(zip(names, row))
        if predicate(row_dict):
            kept.append(index)
    return table.take_rows(kept, name=name)


def sample_rows(table: Table, indices: Sequence[int], name: Optional[str] = None) -> Table:
    """Return the rows of ``table`` at ``indices`` (row-order preserving)."""
    return table.take_rows(list(indices), name=name)


def rename_columns(table: Table, mapping: Dict[str, str], name: Optional[str] = None) -> Table:
    """Return a copy of ``table`` with columns renamed according to ``mapping``."""
    columns = [
        column.rename(mapping.get(column.name, column.name)) for column in table.columns
    ]
    return Table(name or table.name, columns)


def concat_rows(tables: Sequence[Table], name: str) -> Table:
    """Vertically concatenate tables that share an identical schema."""
    if not tables:
        raise ValueError("concat_rows requires at least one table")
    schema = tables[0].column_names
    for table in tables[1:]:
        if table.column_names != schema:
            raise ValueError(
                f"cannot concatenate {table.name!r}: schema {table.column_names} "
                f"differs from {schema}"
            )
    data: Dict[str, List[object]] = {column_name: [] for column_name in schema}
    for table in tables:
        for column_name in schema:
            data[column_name].extend(table.column(column_name).values)
    return Table.from_dict(name, data)


def union(
    target_schema: Sequence[str],
    tables: Sequence[Table],
    alignments: Sequence[Dict[str, str]],
    name: str = "union_result",
) -> Table:
    """Union ``tables`` into a table with ``target_schema``.

    ``alignments[i]`` maps target attribute names to attribute names of
    ``tables[i]``; unaligned target attributes are filled with None.  This is
    the operation a downstream wrangling pipeline would perform with the
    datasets D3L discovers as unionable.
    """
    if len(tables) != len(alignments):
        raise ValueError("one alignment mapping is required per table")
    data: Dict[str, List[object]] = {column_name: [] for column_name in target_schema}
    for table, alignment in zip(tables, alignments):
        for target_attribute in target_schema:
            source_attribute = alignment.get(target_attribute)
            if source_attribute is not None and table.has_column(source_attribute):
                data[target_attribute].extend(table.column(source_attribute).values)
            else:
                data[target_attribute].extend([None] * table.cardinality)
    return Table.from_dict(name, data)


def _join_key(value: object) -> Optional[str]:
    if is_missing(value):
        return None
    return str(value).strip().lower()


def hash_join(
    left: Table,
    right: Table,
    left_on: str,
    right_on: str,
    name: Optional[str] = None,
) -> Table:
    """Equi-join ``left`` and ``right`` on the given columns.

    Join keys are compared case-insensitively after trimming, matching how
    value-overlap evidence treats tokens.  Columns of ``right`` that clash
    with names in ``left`` are suffixed with the right table's name.
    """
    result_name = name or f"{left.name}_join_{right.name}"
    right_index: Dict[str, List[int]] = {}
    for row_number, value in enumerate(right.column(right_on).values):
        key = _join_key(value)
        if key is None:
            continue
        right_index.setdefault(key, []).append(row_number)

    left_names = left.column_names
    right_names = []
    for column_name in right.column_names:
        if column_name in left_names:
            right_names.append(f"{column_name}_{right.name}")
        else:
            right_names.append(column_name)

    header = left_names + right_names
    rows: List[Tuple[object, ...]] = []
    right_rows = list(right.rows())
    for left_row, key_value in zip(left.rows(), left.column(left_on).values):
        key = _join_key(key_value)
        if key is None or key not in right_index:
            continue
        for right_row_number in right_index[key]:
            rows.append(tuple(left_row) + tuple(right_rows[right_row_number]))
    if not rows:
        # Preserve the joined schema even when the join result is empty.
        empty: Dict[str, List[object]] = {column_name: [] for column_name in header}
        return Table.from_dict(result_name, empty)
    return Table.from_rows(result_name, header, rows)


def natural_join(left: Table, right: Table, name: Optional[str] = None) -> Table:
    """Join ``left`` and ``right`` on their first shared column name."""
    shared = [column_name for column_name in left.column_names if right.has_column(column_name)]
    if not shared:
        raise ValueError(
            f"tables {left.name!r} and {right.name!r} share no column to join on"
        )
    return hash_join(left, right, shared[0], shared[0], name=name)


def column_overlap(left: Column, right: Column) -> float:
    """Containment-style overlap coefficient between two column extents.

    Used by tests and by the Aurum baseline's PK/FK candidate detection:
    ``|A ∩ B| / min(|A|, |B|)`` over distinct, case-folded values.
    """
    left_values = {value.lower() for value in left.distinct_values}
    right_values = {value.lower() for value in right.distinct_values}
    if not left_values or not right_values:
        return 0.0
    intersection = len(left_values & right_values)
    return intersection / min(len(left_values), len(right_values))
