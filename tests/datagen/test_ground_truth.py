"""Tests for the ground-truth structure."""

import pytest

from repro.datagen.ground_truth import GroundTruth
from repro.lake.datalake import AttributeRef


@pytest.fixture
def ground_truth():
    truth = GroundTruth()
    truth.add_table("a", {"Practice": "practice_name", "City": "city"}, subject_attribute="Practice")
    truth.add_table("b", {"GP": "practice_name", "Town": "city"}, subject_attribute="GP")
    truth.add_table("c", {"School": "school_name"}, subject_attribute="School")
    truth.mark_related("a", "b")
    return truth


class TestTableRelatedness:
    def test_symmetric(self, ground_truth):
        assert ground_truth.is_related("a", "b")
        assert ground_truth.is_related("b", "a")

    def test_unrelated(self, ground_truth):
        assert not ground_truth.is_related("a", "c")

    def test_identity_never_related(self, ground_truth):
        ground_truth.mark_related("a", "a")
        assert not ground_truth.is_related("a", "a")

    def test_related_to(self, ground_truth):
        assert ground_truth.related_to("a") == {"b"}
        assert ground_truth.related_to("c") == set()

    def test_answer_size(self, ground_truth):
        assert ground_truth.answer_size("a") == 1
        assert ground_truth.answer_size("c") == 0

    def test_average_answer_size(self, ground_truth):
        assert ground_truth.average_answer_size() == pytest.approx(2 / 3)

    def test_average_answer_size_empty(self):
        assert GroundTruth().average_answer_size() == 0.0

    def test_mark_group_related(self):
        truth = GroundTruth()
        for name in ["x", "y", "z"]:
            truth.add_table(name, {})
        truth.mark_group_related(["x", "y", "z"])
        assert truth.is_related("x", "z")
        assert truth.answer_size("y") == 2

    def test_table_names(self, ground_truth):
        assert set(ground_truth.table_names) == {"a", "b", "c"}


class TestAttributeRelatedness:
    def test_same_domain_attributes_related(self, ground_truth):
        assert ground_truth.are_attributes_related(
            AttributeRef("a", "Practice"), AttributeRef("b", "GP")
        )

    def test_different_domain_attributes_unrelated(self, ground_truth):
        assert not ground_truth.are_attributes_related(
            AttributeRef("a", "Practice"), AttributeRef("b", "Town")
        )

    def test_unknown_attribute_unrelated(self, ground_truth):
        assert not ground_truth.are_attributes_related(
            AttributeRef("a", "Practice"), AttributeRef("zz", "Whatever")
        )

    def test_domain_of(self, ground_truth):
        assert ground_truth.domain_of(AttributeRef("a", "City")) == "city"
        assert ground_truth.domain_of(AttributeRef("a", "Missing")) is None

    def test_related_target_attributes(self, ground_truth):
        related = ground_truth.related_target_attributes("a", AttributeRef("b", "Town"))
        assert related == {"City"}

    def test_table_attributes(self, ground_truth):
        refs = ground_truth.table_attributes("a")
        assert AttributeRef("a", "Practice") in refs
        assert len(refs) == 2


class TestSubjectAttributes:
    def test_subject_attribute_of(self, ground_truth):
        assert ground_truth.subject_attribute_of("a") == "Practice"
        assert ground_truth.subject_attribute_of("missing") is None

    def test_labelled_subject_attributes(self, ground_truth):
        labelled = dict(ground_truth.labelled_subject_attributes())
        assert labelled == {"a": "Practice", "b": "GP", "c": "School"}


class TestSerialisation:
    def test_dict_round_trip(self, ground_truth):
        rebuilt = GroundTruth.from_dict(ground_truth.to_dict())
        assert rebuilt.related_tables == ground_truth.related_tables
        assert rebuilt.attribute_domains == ground_truth.attribute_domains
        assert rebuilt.subject_attributes == ground_truth.subject_attributes

    def test_json_round_trip(self, ground_truth, tmp_path):
        path = ground_truth.to_json(tmp_path / "truth.json")
        assert path.exists()
        rebuilt = GroundTruth.from_json(path)
        assert rebuilt.is_related("a", "b")
        assert rebuilt.domain_of(AttributeRef("b", "Town")) == "city"
        assert rebuilt.subject_attribute_of("c") == "School"

    def test_to_dict_is_json_friendly(self, ground_truth):
        import json

        rendered = json.dumps(ground_truth.to_dict())
        assert "practice_name" in rendered

    def test_from_dict_tolerates_missing_sections(self):
        rebuilt = GroundTruth.from_dict({})
        assert rebuilt.table_names == []
        assert rebuilt.average_answer_size() == 0.0
