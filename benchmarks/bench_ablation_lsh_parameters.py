"""Ablation — LSH configuration (MinHash size and candidate pool).

The paper fixes MinHash size 256 and LSH threshold 0.7 for all systems; this
ablation quantifies what those choices buy by comparing effectiveness and
per-query time for smaller signatures and a smaller candidate pool on the
real-style corpus.
"""

import time

import numpy as np

from conftest import NUM_TARGETS, run_once

from repro.core.config import D3LConfig
from repro.core.discovery import D3L
from repro.evaluation.experiments import build_embedding_model
from repro.evaluation.metrics import precision_recall_at_k

K = 20


def _evaluate(corpus, config, seed=16):
    embedding_model = build_embedding_model(corpus, config)
    engine = D3L(config=config, embedding_model=embedding_model)
    start = time.perf_counter()
    engine.index_lake(corpus.lake)
    index_seconds = time.perf_counter() - start

    targets = corpus.pick_targets(NUM_TARGETS, seed=seed)
    precisions, recalls = [], []
    start = time.perf_counter()
    for target in targets:
        answer = engine.query(target, k=K)
        precision, recall = precision_recall_at_k(
            answer, corpus.ground_truth, target.name, K
        )
        precisions.append(precision)
        recalls.append(recall)
    query_seconds = (time.perf_counter() - start) / max(len(targets), 1)
    return {
        "num_hashes": config.num_hashes,
        "min_candidates": config.min_candidates,
        "precision": float(np.mean(precisions)),
        "recall": float(np.mean(recalls)),
        "index_seconds": index_seconds,
        "query_seconds": query_seconds,
    }


def test_ablation_lsh_parameters(benchmark, record_rows, real_corpus):
    def run_ablation():
        configurations = [
            D3LConfig(num_hashes=64, embedding_dimension=48, min_candidates=20),
            D3LConfig(num_hashes=128, embedding_dimension=48, min_candidates=50),
            D3LConfig(num_hashes=256, embedding_dimension=48, min_candidates=50),
        ]
        return [_evaluate(real_corpus, config) for config in configurations]

    rows = run_once(benchmark, run_ablation)
    record_rows(
        "ablation_lsh_parameters",
        rows,
        "Ablation: MinHash size / candidate pool vs effectiveness and time",
    )

    assert len(rows) == 3
    for row in rows:
        assert 0.0 <= row["precision"] <= 1.0
        assert row["index_seconds"] > 0
    # Larger signatures cost indexing time.
    assert rows[-1]["index_seconds"] >= rows[0]["index_seconds"] * 0.8
