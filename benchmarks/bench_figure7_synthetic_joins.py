"""Figures 7a/7b / Experiments 8-9 — impact of join paths on Synthetic.

Target coverage and attribute precision with and without augmenting the top-k
answer with SA-join-path tables, for D3L(+J), Aurum(+J) and TUS.  The shapes
to reproduce: the +J variants cover at least as much of the target as their
join-unaware counterparts, and D3L+J keeps attribute precision at or above
plain D3L.
"""

import numpy as np

from conftest import NUM_TARGETS, run_once

from repro.evaluation.experiments import experiment_join_impact

KS = [5, 10, 20, 40]


def test_figure7_synthetic_join_impact(benchmark, record_rows, synthetic_suite):
    rows = run_once(
        benchmark,
        experiment_join_impact,
        synthetic_suite,
        ks=KS,
        num_targets=NUM_TARGETS,
        seed=10,
    )
    record_rows(
        "figure7_synthetic_joins",
        rows,
        "Figure 7: target coverage (a) and attribute precision (b) on Synthetic",
    )

    def mean_metric(system, metric):
        return float(np.mean([row[metric] for row in rows if row["system"] == system]))

    assert mean_metric("d3l+j", "coverage") >= mean_metric("d3l", "coverage") - 1e-9
    assert mean_metric("aurum+j", "coverage") >= mean_metric("aurum", "coverage") - 1e-9
    # Join paths must not degrade D3L's attribute precision (paper: Fig 7b).
    assert mean_metric("d3l+j", "attribute_precision") >= mean_metric("d3l", "attribute_precision") - 0.05
    # D3L covers the target at least as well as TUS.
    assert mean_metric("d3l", "coverage") >= mean_metric("tus", "coverage") - 0.05
