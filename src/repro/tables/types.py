"""Value typing for data-lake columns.

The paper assumes at most domain-independent types (string, integer, ...) are
known for lake attributes.  In practice the corpora are CSV files, so every
cell arrives as a string and the system must *infer* whether an attribute is
numeric (section III-C of the paper treats numeric attributes specially).
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Iterable, Optional

#: Cell values considered missing when inferring types or building extents.
MISSING_TOKENS = frozenset({"", "na", "n/a", "nan", "null", "none", "-", "--"})

#: Fraction of non-missing cells that must parse as numbers for a column to be
#: treated as numeric.  Real open-data columns often contain a few stray
#: footnote markers; the paper's treatment of numeric attributes would be
#: useless if a single dirty cell flipped the type.
NUMERIC_THRESHOLD = 0.8


class ValueType(str, Enum):
    """Domain-independent attribute types distinguished by the framework."""

    TEXT = "text"
    NUMERIC = "numeric"
    EMPTY = "empty"


def is_missing(value: object) -> bool:
    """Return True when ``value`` denotes a missing cell."""
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    if isinstance(value, str):
        return value.strip().lower() in MISSING_TOKENS
    return False


def coerce_numeric(value: object) -> Optional[float]:
    """Parse ``value`` as a float, returning None when it is not numeric.

    Thousands separators and surrounding whitespace are tolerated because
    open-government CSVs frequently format counts as ``"1,202"``.
    """
    if value is None:
        return None
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        result = float(value)
        return None if math.isnan(result) else result
    if not isinstance(value, str):
        return None
    text = value.strip()
    if not text or text.lower() in MISSING_TOKENS:
        return None
    text = text.replace(",", "")
    if text.endswith("%"):
        text = text[:-1]
    try:
        return float(text)
    except ValueError:
        return None


def infer_type(values: Iterable[object]) -> ValueType:
    """Infer the :class:`ValueType` of a column extent.

    A column is numeric when at least :data:`NUMERIC_THRESHOLD` of its
    non-missing values parse as numbers; a column with no non-missing value is
    ``EMPTY``; everything else is ``TEXT``.
    """
    total = 0
    numeric = 0
    for value in values:
        if is_missing(value):
            continue
        total += 1
        if coerce_numeric(value) is not None:
            numeric += 1
    if total == 0:
        return ValueType.EMPTY
    if numeric / total >= NUMERIC_THRESHOLD:
        return ValueType.NUMERIC
    return ValueType.TEXT
