"""Tests for the one-shot evaluation runner."""

import json

import pytest

from repro.core.config import D3LConfig
from repro.evaluation.runner import SCALES, ExperimentReport, main, run_all_experiments


class TestScales:
    def test_known_scales(self):
        assert {"smoke", "small", "full"} <= set(SCALES)

    def test_scales_are_ordered_by_size(self):
        assert SCALES["smoke"].families <= SCALES["small"].families <= SCALES["full"].families

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            run_all_experiments(scale="enormous")


class TestReport:
    def test_add_and_render(self):
        report = ExperimentReport(scale="smoke")
        report.add("example", [{"a": 1, "b": 2.5}], 0.1)
        rendered = report.render()
        assert "example" in rendered
        assert "2.500" in rendered

    def test_save_writes_text_and_json(self, tmp_path):
        report = ExperimentReport(scale="smoke")
        report.add("example", [{"a": 1}], 0.2)
        written = report.save(tmp_path / "out")
        assert len(written) == 2
        data = json.loads((tmp_path / "out" / "report_smoke.json").read_text())
        assert data["scale"] == "smoke"
        assert "example" in data["sections"]


class TestSmokeRun:
    @pytest.fixture(scope="class")
    def report(self):
        config = D3LConfig(num_hashes=64, embedding_dimension=24, min_candidates=20)
        return run_all_experiments(scale="smoke", config=config, seed=1)

    def test_all_sections_present(self, report):
        expected = {
            "figure2_repository_stats",
            "table1_example_distances",
            "figure3_individual_evidence",
            "figure4_synthetic_effectiveness",
            "figure5_real_effectiveness",
            "figure6a_indexing_time",
            "figure6b_search_time_synthetic",
            "figure6c_search_time_real",
            "table2_space_overhead",
            "figure7_synthetic_joins",
            "figure8_real_joins",
            "weights_classifier",
            "subject_attribute_accuracy",
        }
        assert expected <= set(report.sections)

    def test_every_section_has_rows(self, report):
        for name, rows in report.sections.items():
            assert rows, name

    def test_wall_clock_recorded(self, report):
        assert all(seconds >= 0 for seconds in report.wall_clock_seconds.values())

    def test_cli_main_writes_report(self, tmp_path, capsys, monkeypatch):
        # Patch the scale registry so the CLI path stays fast.
        from repro.evaluation import runner as runner_module

        monkeypatch.setitem(runner_module.SCALES, "tiny", runner_module.SCALES["smoke"])
        exit_code = main(["--scale", "smoke", "--output", str(tmp_path / "results"), "--seed", "2"])
        assert exit_code == 0
        assert (tmp_path / "results" / "report_smoke.txt").exists()
        captured = capsys.readouterr().out
        assert "figure4_synthetic_effectiveness" in captured
