"""Shared fixtures: small deterministic corpora and indexed engines.

Expensive fixtures (generated corpora, indexed engines) are session-scoped so
that the many tests touching them pay the construction cost once.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.core.config import D3LConfig
from repro.core.discovery import D3L
from repro.datagen.real_benchmark import RealBenchmarkConfig, generate_real_benchmark
from repro.datagen.synthetic_benchmark import (
    SyntheticBenchmarkConfig,
    generate_synthetic_benchmark,
)
from repro.lake.datalake import DataLake
from repro.tables.table import Table


def _untracked_children() -> set:
    """PIDs of live child processes not owned by a tracked executor pool."""
    from repro.core.parallel import live_worker_pids

    tracked = live_worker_pids()
    return {
        process.pid
        for process in multiprocessing.active_children()
        if process.pid not in tracked
    }


@pytest.fixture(autouse=True)
def no_fanout_leaks():
    """Fail any test that leaks shared-memory segments or child processes.

    Suite-wide leak audit over the zero-copy fan-out machinery (grown out of
    ``tests/core`` once the CLI and the serving tier started owning the same
    resources): leaks in the snapshot or pool lifecycle fail tier-1
    immediately instead of accumulating in ``/dev/shm`` across runs.

    Both checks diff against the state before the test, so pre-existing
    debris (other processes' segments, module-scoped engines holding live
    pools — whose workers are tracked via ``live_worker_pids``) never
    produces false positives.  Child-process teardown is given a short grace
    period: garbage-collection finalizers reap pools with ``wait=False``.
    """
    from repro.core.shared import stray_segments

    segments_before = set(stray_segments())
    children_before = _untracked_children()
    yield
    leaked_segments = set(stray_segments()) - segments_before
    assert not leaked_segments, (
        f"test leaked shared-memory segments: {sorted(leaked_segments)}"
    )
    deadline = time.monotonic() + 5.0
    leaked_children = _untracked_children() - children_before
    while leaked_children and time.monotonic() < deadline:
        time.sleep(0.05)
        leaked_children = _untracked_children() - children_before
    assert not leaked_children, (
        f"test leaked child processes: {sorted(leaked_children)}"
    )


@pytest.fixture(scope="session")
def fast_config() -> D3LConfig:
    """A configuration small enough for unit tests but structurally faithful."""
    return D3LConfig(num_hashes=128, num_trees=8, min_candidates=25, embedding_dimension=32)


@pytest.fixture(scope="session")
def figure1_tables() -> dict:
    """The tables of Figure 1 in the paper (the GP-practices running example)."""
    source_1 = Table.from_dict(
        "gp_practices_s1",
        {
            "Practice Name": ["Dr E Cullen", "Blackfriars", "Radclife Care", "Bolton Medical"],
            "Address": ["51 Botanic Av", "1a Chapel St", "9 Mirabel St", "21 Rupert St"],
            "City": ["Belfast", "Salford", "Manchester", "Bolton"],
            "Postcode": ["BT7 1JL", "M3 6AF", "M3 1NN", "BL3 6PY"],
            "Patients": ["1202", "3572", "2209", "1840"],
        },
    )
    source_2 = Table.from_dict(
        "gp_funding_s2",
        {
            "Practice": ["The London Clinic", "Blackfriars", "Radclife Care", "Bolton Medical"],
            "City": ["London", "Salford", "Manchester", "Bolton"],
            "Postcode": ["W1G 6BW", "M3 6AF", "M26 2SP", "BL3 6PY"],
            "Payment": ["73648", "15530", "20981", "17764"],
        },
    )
    source_3 = Table.from_dict(
        "local_gps_s3",
        {
            "GP": ["Blackfriars", "Radclife Care", "Bolton Medical"],
            "Location": ["Salford", "-", "Bolton"],
            "Opening hours": ["08:00-18:00", "07:00-20:00", "08:00-16:00"],
        },
    )
    target = Table.from_dict(
        "gps_target",
        {
            "Practice": ["Radclife", "Bolton Medical", "Blackfriars"],
            "Street": ["69 Church St", "21 Rupert St", "1a Chapel St"],
            "City": ["Manchester", "Bolton", "Salford"],
            "Postcode": ["M26 2SP", "BL3 6PY", "M3 6AF"],
            "Hours": ["07:00-20:00", "08:00-16:00", "08:00-18:00"],
        },
    )
    return {
        "target": target,
        "sources": [source_1, source_2, source_3],
        "lake": DataLake("figure1", [source_1, source_2, source_3]),
    }


@pytest.fixture(scope="session")
def small_synthetic_benchmark():
    """A small Synthetic corpus (6 base tables x 5 derived tables)."""
    config = SyntheticBenchmarkConfig(
        num_base_tables=6,
        tables_per_base=5,
        base_rows=80,
        min_rows=20,
        max_rows=60,
        seed=7,
    )
    return generate_synthetic_benchmark(config)


@pytest.fixture(scope="session")
def small_real_benchmark():
    """A small real-world-style corpus (6 families x 5 tables)."""
    config = RealBenchmarkConfig(
        num_families=6,
        tables_per_family=5,
        min_rows=20,
        max_rows=50,
        dirtiness=0.35,
        seed=11,
    )
    return generate_real_benchmark(config)


@pytest.fixture(scope="session")
def indexed_d3l(small_synthetic_benchmark, fast_config):
    """A D3L engine indexed over the small Synthetic corpus."""
    engine = D3L(config=fast_config)
    engine.index_lake(small_synthetic_benchmark.lake)
    return engine


@pytest.fixture(scope="session")
def indexed_d3l_real(small_real_benchmark, fast_config):
    """A D3L engine indexed over the small real-world-style corpus."""
    engine = D3L(config=fast_config)
    engine.index_lake(small_real_benchmark.lake)
    return engine


@pytest.fixture(scope="session")
def figure1_engine(figure1_tables, fast_config):
    """A D3L engine indexed over the Figure 1 lake."""
    engine = D3L(config=fast_config)
    engine.index_lake(figure1_tables["lake"])
    return engine
