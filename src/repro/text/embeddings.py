"""Word-embedding model substrate (E evidence).

The paper uses fastText as its word-embedding model (WEM).  A pre-trained
fastText binary is not available offline, so this module provides two
substitutes that preserve the properties D3L depends on:

* :class:`HashingSubwordEmbedding` — a deterministic bag-of-subwords model in
  the spirit of fastText: a word's vector is the average of hashed character
  n-gram vectors, so morphologically similar words (``practice`` /
  ``practices``, ``Salford`` / ``Salford Rd``) land close together, and any
  out-of-vocabulary word still receives a vector.
* :class:`CooccurrenceEmbedding` — a corpus-trained model (positive PMI
  matrix factorised with SVD) that adds distributional semantics on top: words
  that co-occur in generated corpus sentences (``street`` / ``road`` /
  ``avenue``) become neighbours even when they share no characters.  Unknown
  words fall back to the subword model, exactly as fastText backs off to
  subword units.

Both expose ``vector(word)`` returning an L2-normalised ``p``-vector, and
:func:`aggregate_vectors` combines per-word vectors into the attribute vector
of Algorithm 1.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

import numpy as np


class WordEmbeddingModel(Protocol):
    """Protocol every word-embedding model used by the framework satisfies."""

    dimension: int

    def vector(self, word: str) -> np.ndarray:
        """Return the embedding vector of ``word`` (never raises for OOV)."""
        ...


def _normalise(vector: np.ndarray) -> np.ndarray:
    norm = float(np.linalg.norm(vector))
    if norm == 0.0:
        return vector
    return vector / norm


def aggregate_vectors(vectors: Sequence[np.ndarray], dimension: int) -> np.ndarray:
    """Combine per-word vectors into a single attribute vector.

    The paper combines the p-vectors of the selected words into one p-vector
    for the attribute; we use the mean followed by L2 normalisation, the
    standard bag-of-words aggregation.  An empty input yields the zero vector
    (treated as maximally distant by the cosine machinery).
    """
    if not vectors:
        return np.zeros(dimension, dtype=np.float64)
    stacked = np.vstack([np.asarray(v, dtype=np.float64) for v in vectors])
    return _normalise(stacked.mean(axis=0))


class HashingSubwordEmbedding:
    """Deterministic subword-hashing embedding (fastText-style bag of n-grams)."""

    def __init__(
        self,
        dimension: int = 64,
        seed: int = 17,
        ngram_range: Tuple[int, int] = (3, 5),
        cache_size: int = 50000,
    ) -> None:
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        low, high = ngram_range
        if low <= 0 or high < low:
            raise ValueError("ngram_range must be a (low, high) pair with 0 < low <= high")
        self.dimension = dimension
        self.seed = seed
        self.ngram_range = ngram_range
        self._cache: Dict[str, np.ndarray] = {}
        self._cache_size = cache_size

    def _subword_vector(self, ngram: str) -> np.ndarray:
        digest = hashlib.blake2b(
            ngram.encode("utf-8", errors="replace"),
            digest_size=8,
            key=self.seed.to_bytes(8, "little", signed=False),
        ).digest()
        generator = np.random.default_rng(int.from_bytes(digest, "little"))
        return generator.standard_normal(self.dimension)

    def _ngrams(self, word: str) -> List[str]:
        padded = f"<{word}>"
        low, high = self.ngram_range
        grams = []
        for n in range(low, high + 1):
            if len(padded) < n:
                continue
            grams.extend(padded[i : i + n] for i in range(len(padded) - n + 1))
        if not grams:
            grams = [padded]
        return grams

    def vector(self, word: str) -> np.ndarray:
        """Embedding of ``word``: the normalised mean of its subword vectors."""
        word = word.strip().lower()
        if not word:
            return np.zeros(self.dimension, dtype=np.float64)
        cached = self._cache.get(word)
        if cached is not None:
            return cached
        grams = self._ngrams(word)
        vectors = np.vstack([self._subword_vector(gram) for gram in grams])
        result = _normalise(vectors.mean(axis=0))
        if len(self._cache) < self._cache_size:
            self._cache[word] = result
        return result


class CooccurrenceEmbedding:
    """Corpus-trained embedding: positive PMI matrix factorised with SVD.

    Train with :meth:`train` on an iterable of token sequences (sentences).
    Words outside the training vocabulary fall back to a
    :class:`HashingSubwordEmbedding` so the model is total, like fastText.
    """

    def __init__(
        self,
        vectors: Dict[str, np.ndarray],
        dimension: int,
        fallback: Optional[HashingSubwordEmbedding] = None,
    ) -> None:
        self.dimension = dimension
        self._vectors = vectors
        self._fallback = fallback or HashingSubwordEmbedding(dimension=dimension)

    @property
    def vocabulary(self) -> List[str]:
        """Words with trained vectors."""
        return list(self._vectors)

    def __contains__(self, word: str) -> bool:
        return word.strip().lower() in self._vectors

    def vector(self, word: str) -> np.ndarray:
        """Trained vector when available, subword fallback otherwise."""
        key = word.strip().lower()
        trained = self._vectors.get(key)
        if trained is not None:
            return trained
        return self._fallback.vector(key)

    @classmethod
    def train(
        cls,
        sentences: Iterable[Sequence[str]],
        dimension: int = 64,
        window: int = 4,
        min_count: int = 2,
        seed: int = 23,
    ) -> "CooccurrenceEmbedding":
        """Train an embedding from co-occurrence statistics.

        Builds a symmetric word-context count matrix over a sliding window,
        converts it to positive pointwise mutual information, and factorises
        with a truncated SVD.  This is the classic count-based construction
        that approximates what skip-gram models learn.
        """
        sentences = [
            [token.strip().lower() for token in sentence if token and token.strip()]
            for sentence in sentences
        ]
        counts: Dict[str, int] = {}
        for sentence in sentences:
            for token in sentence:
                counts[token] = counts.get(token, 0) + 1
        vocabulary = sorted(word for word, count in counts.items() if count >= min_count)
        if not vocabulary:
            return cls({}, dimension, HashingSubwordEmbedding(dimension=dimension, seed=seed))
        index = {word: i for i, word in enumerate(vocabulary)}
        size = len(vocabulary)

        cooccurrence = np.zeros((size, size), dtype=np.float64)
        for sentence in sentences:
            positions = [index[token] for token in sentence if token in index]
            for center, row in enumerate(positions):
                start = max(0, center - window)
                stop = min(len(positions), center + window + 1)
                for neighbour in range(start, stop):
                    if neighbour == center:
                        continue
                    cooccurrence[row, positions[neighbour]] += 1.0

        total = cooccurrence.sum()
        if total == 0:
            return cls({}, dimension, HashingSubwordEmbedding(dimension=dimension, seed=seed))
        row_sums = cooccurrence.sum(axis=1, keepdims=True)
        col_sums = cooccurrence.sum(axis=0, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            pmi = np.log((cooccurrence * total) / (row_sums @ col_sums))
        pmi[~np.isfinite(pmi)] = 0.0
        ppmi = np.maximum(pmi, 0.0)

        rank = min(dimension, size - 1) if size > 1 else 1
        if rank < 1:
            rank = 1
        u, singular_values, _ = np.linalg.svd(ppmi, full_matrices=False)
        projected = u[:, :rank] * np.sqrt(singular_values[:rank])
        if rank < dimension:
            padding = np.zeros((size, dimension - rank))
            projected = np.hstack([projected, padding])

        vectors = {
            word: _normalise(projected[index[word]]) for word in vocabulary
        }
        return cls(vectors, dimension, HashingSubwordEmbedding(dimension=dimension, seed=seed))
