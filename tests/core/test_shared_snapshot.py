"""Lifecycle and determinism harness for the shared-memory snapshot layer.

Covers the zero-copy fan-out contract: a ``SharedIndexSnapshot`` attach must
reconstruct the index bit-identically as read-only views (no array copies),
segments must never outlive their owners (explicit close, abandoned-executor
finalization, engine/session close, version bumps), and every fanned-out
answer over the shared path — queries and join-graph verification, including
after a persistence-v3 round trip — must equal the sequential oracle.
"""

import gc
import os
import pickle
import time

import numpy as np
import pytest

from repro.core.config import D3LConfig
from repro.core.discovery import D3L
from repro.core.evidence import EvidenceType
from repro.core.joins import SAJoinGraph
from repro.core.parallel import ParallelQueryExecutor, live_worker_pids
from repro.core.persistence import load_engine, save_engine
from repro.core.profiles import sample_overlap
from repro.core.shared import (
    SharedIndexSnapshot,
    SharedSnapshotError,
    stray_segments,
)
from repro.datagen.synthetic_benchmark import (
    SyntheticBenchmarkConfig,
    generate_synthetic_benchmark,
)
from repro.tables.table import Table

from tests.core.test_batched_query import assert_identical_answers


@pytest.fixture(scope="module")
def corpus():
    return generate_synthetic_benchmark(
        SyntheticBenchmarkConfig(
            num_base_tables=3,
            tables_per_base=3,
            base_rows=40,
            min_rows=15,
            max_rows=30,
            seed=21,
        )
    )


def _build_engine(corpus):
    engine = D3L(
        config=D3LConfig(
            num_hashes=64, num_trees=8, min_candidates=15, embedding_dimension=16
        )
    )
    engine.index_lake(corpus.lake)
    return engine


@pytest.fixture(scope="module")
def engine(corpus):
    return _build_engine(corpus)


def assert_states_identical(indexes, attached):
    """Bit-exact equality of matrices, flags, refs, and forest contents."""
    for evidence in EvidenceType.indexed():
        refs, matrix, flags = indexes._matrices[evidence].export_state(copy=False)
        a_refs, a_matrix, a_flags = attached._matrices[evidence].export_state(
            copy=False
        )
        assert refs == a_refs
        assert np.array_equal(matrix, a_matrix)
        assert np.array_equal(flags, a_flags)
        forest = indexes._forests[evidence].export_state(copy=False)
        a_forest = attached._forests[evidence].export_state(copy=False)
        for tree, a_tree in zip(forest["trees"], a_forest["trees"]):
            assert np.array_equal(tree["keys"], a_tree["keys"])
            assert tree["items"] == a_tree["items"]
    assert sorted(indexes.profiles) == sorted(attached.profiles)
    assert sorted(indexes.table_profiles) == sorted(attached.table_profiles)


class TestAttach:
    def test_shm_attach_is_identical_and_zero_copy(self, engine):
        snapshot = SharedIndexSnapshot.create(engine.indexes)
        try:
            assert snapshot.descriptor[0] == "shm"
            attached = SharedIndexSnapshot.attach(snapshot.descriptor)
            assert attached.version == engine.indexes.version
            assert_states_identical(engine.indexes, attached)
            for evidence in EvidenceType.indexed():
                matrix = attached._matrices[evidence]._matrix
                # Views over the segment, not copies: no owned data, frozen.
                assert not matrix.flags.owndata
                assert not matrix.flags.writeable
        finally:
            snapshot.close()

    def test_attach_is_cached_per_process(self, engine):
        snapshot = SharedIndexSnapshot.create(engine.indexes)
        try:
            first = SharedIndexSnapshot.attach(snapshot.descriptor)
            assert SharedIndexSnapshot.attach(snapshot.descriptor) is first
        finally:
            snapshot.close()

    def test_file_backing_round_trip(self, engine):
        snapshot = SharedIndexSnapshot.create(engine.indexes, backing="file")
        try:
            kind, locator = snapshot.descriptor
            assert kind == "file"
            assert os.path.exists(locator)
            attached = SharedIndexSnapshot.attach(snapshot.descriptor)
            assert_states_identical(engine.indexes, attached)
        finally:
            snapshot.close()
        assert not os.path.exists(locator)

    def test_descriptor_ships_a_fraction_of_the_pickled_index(self, engine):
        snapshot = SharedIndexSnapshot.create(engine.indexes)
        try:
            pickled = len(pickle.dumps(engine.indexes))
            assert snapshot.shipped_bytes() * 10 <= pickled
        finally:
            snapshot.close()

    def test_pickle_descriptor_degrades_to_the_shipped_object(self, engine):
        assert (
            SharedIndexSnapshot.attach(("pickle", engine.indexes))
            is engine.indexes
        )

    def test_attached_engine_answers_like_the_source(self, corpus, engine):
        snapshot = SharedIndexSnapshot.create(engine.indexes)
        try:
            attached = SharedIndexSnapshot.attach(snapshot.descriptor)
            mirror = D3L(
                config=attached.config,
                embedding_model=attached.embedding_model,
                weights=engine.weights,
                subject_classifier=attached.subject_classifier,
            )
            mirror.indexes = attached
            for name in corpus.lake.table_names[::4]:
                target = corpus.lake.table(name)
                assert_identical_answers(
                    engine.query_batch(target, k=5),
                    mirror.query_batch(target, k=5),
                )
        finally:
            snapshot.close()


class TestLifecycle:
    def test_close_unlinks_and_is_idempotent(self, engine):
        snapshot = SharedIndexSnapshot.create(engine.indexes)
        kind, name = snapshot.descriptor
        assert os.path.exists(f"/dev/shm/{name}")
        snapshot.close()
        assert snapshot.closed
        assert not os.path.exists(f"/dev/shm/{name}")
        snapshot.close()  # second close is a no-op
        with pytest.raises(SharedSnapshotError):
            SharedIndexSnapshot.attach((kind, name))

    def test_finalize_backstop_reclaims_abandoned_snapshots(self, engine):
        snapshot = SharedIndexSnapshot.create(engine.indexes)
        _, name = snapshot.descriptor
        del snapshot
        gc.collect()
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_abandoned_executor_finalization(self, engine):
        refs = sorted(engine.indexes.profiles)[:4]
        pairs = [(refs[0], refs[1]), (refs[2], refs[3]), (refs[0], refs[2])]
        pids_before = live_worker_pids()
        executor = ParallelQueryExecutor(engine.indexes, workers=2)
        overlaps = executor.verify_overlaps(pairs)
        expected = {
            (left, right): sample_overlap(
                engine.indexes.profiles[left].value_sample,
                engine.indexes.profiles[right].value_sample,
            )
            for left, right in pairs
        }
        assert overlaps == expected
        snapshot = executor.snapshot
        assert snapshot is not None
        _, name = snapshot.descriptor
        # Only this executor's workers: other live executors (module-scoped
        # engines elsewhere in the suite) keep pools of their own.
        own_pids = live_worker_pids() - pids_before
        assert own_pids
        del executor
        gc.collect()
        assert not os.path.exists(f"/dev/shm/{name}")
        deadline = time.monotonic() + 5.0
        while live_worker_pids() & own_pids and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not (live_worker_pids() & own_pids)

    def test_version_bump_delta_refreshes_the_snapshot_pool(self, corpus):
        engine = _build_engine(corpus)
        refs = sorted(engine.indexes.profiles)[:4]
        pairs = [(refs[0], refs[1]), (refs[2], refs[3])]
        executor = ParallelQueryExecutor(engine.indexes, workers=2)
        try:
            executor.verify_overlaps(pairs)
            first = executor.snapshot
            assert first is not None
            assert first.version == engine.indexes.version
            extra = Table.from_dict(
                "version_bump_extra", {"code": ["aa", "bb", "cc", "dd"]}
            )
            engine.indexes.add_table(extra)
            executor.verify_overlaps(pairs)
            # A single-table mutation rides to the workers as a delta: the
            # snapshot (and pool) survive, and the pending delta targets the
            # current version from the snapshot's fixed base.
            assert executor.snapshot is first
            assert not first.closed
            assert executor._delta is not None
            assert executor._delta[0] == engine.indexes.version
            assert [op[:2] for op in executor._delta[1]] == [
                ("upsert", "version_bump_extra")
            ]
            assert executor._pool_version == engine.indexes.version
            assert executor._snapshot_version == first.version
        finally:
            executor.close()

    def test_engine_close_releases_segments_and_workers(self, corpus):
        engine = _build_engine(corpus)
        before = set(stray_segments())
        pids_before = live_worker_pids()
        target = corpus.lake.tables[0]
        baseline = engine.query_batch(target, k=5, workers=1)
        fanned = engine.query_batch(target, k=5, workers=2)
        assert_identical_answers(baseline, fanned)
        executor = engine._query_executors[2]
        assert executor.snapshot is not None
        own_pids = live_worker_pids() - pids_before
        assert own_pids
        engine.close()
        assert not engine._query_executors
        assert executor.snapshot is None
        assert set(stray_segments()) == before
        assert not (live_worker_pids() & own_pids)

    def test_session_close_releases_engine_pools(self, corpus):
        from repro.core.api import DiscoverySession

        engine = _build_engine(corpus)
        session = DiscoverySession(engine)
        engine.query_batch(corpus.lake.tables[0], k=5, workers=2)
        assert engine._query_executors
        session.close()
        assert not engine._query_executors


class TestSharedPathDeterminism:
    def test_workers_1_vs_4_over_the_shared_pool(self, corpus):
        engine = _build_engine(corpus)
        try:
            for name in corpus.lake.table_names[::4]:
                target = corpus.lake.table(name)
                assert_identical_answers(
                    engine.query_batch(target, k=5, workers=1),
                    engine.query_batch(target, k=5, workers=4),
                )
            assert engine._query_executors[4].snapshot is not None
        finally:
            engine.close()

    def test_persistence_round_trip_then_shared_fanout(self, corpus, engine, tmp_path):
        path = save_engine(engine, tmp_path / "engine.d3l")
        restored = load_engine(path)
        try:
            for name in corpus.lake.table_names[::4]:
                target = corpus.lake.table(name)
                assert_identical_answers(
                    engine.query_batch(target, k=5, workers=1),
                    restored.query_batch(target, k=5, workers=2),
                )
        finally:
            restored.close()

    def test_join_graph_over_the_executor_pool(self, corpus):
        engine = _build_engine(corpus)
        try:
            oracle = SAJoinGraph.build_sequential(engine.indexes, engine.config)
            shared = engine.build_join_graph(workers=2)

            def edge_map(graph):
                return {
                    tuple(sorted(pair)): (
                        graph.edge(*pair).left,
                        graph.edge(*pair).right,
                        graph.edge(*pair).overlap,
                    )
                    for pair in graph.graph.edges
                }

            assert edge_map(shared) == edge_map(oracle)
            sharded = SAJoinGraph.build(engine.indexes, engine.config, workers=2)
            assert edge_map(sharded) == edge_map(oracle)
        finally:
            engine.close()
