"""Tests for engine/index persistence (v3 multi-section format)."""

import pickle

import numpy as np
import pytest

from repro.core.discovery import D3L
from repro.core.evidence import EvidenceType
from repro.core.indexes import D3LIndexes
from repro.core.persistence import (
    FORMAT_VERSION,
    PersistenceError,
    load_engine,
    load_indexes,
    save_engine,
    save_indexes,
)


class TestEngineRoundTrip:
    def test_save_and_load_engine(self, figure1_engine, figure1_tables, tmp_path):
        path = save_engine(figure1_engine, tmp_path / "engine.pkl")
        assert path.exists()
        loaded = load_engine(path)
        assert isinstance(loaded, D3L)
        assert set(loaded.indexes.table_names) == set(figure1_engine.indexes.table_names)

    def test_loaded_engine_answers_queries_identically(
        self, figure1_engine, figure1_tables, tmp_path
    ):
        path = save_engine(figure1_engine, tmp_path / "engine.pkl")
        loaded = load_engine(path)
        target = figure1_tables["target"]
        original = figure1_engine.query(target, k=3)
        restored = loaded.query(target, k=3)
        assert original.table_names(3) == restored.table_names(3)
        assert [round(r.distance, 9) for r in original.results] == [
            round(r.distance, 9) for r in restored.results
        ]

    def test_save_creates_parent_directories(self, figure1_engine, tmp_path):
        path = save_engine(figure1_engine, tmp_path / "nested" / "deeper" / "engine.pkl")
        assert path.exists()

    def test_weights_survive_round_trip(self, figure1_engine, tmp_path):
        path = save_engine(figure1_engine, tmp_path / "engine.pkl")
        loaded = load_engine(path)
        assert loaded.weights.values == figure1_engine.weights.values


class TestIndexRoundTrip:
    def test_save_and_load_indexes(self, figure1_engine, tmp_path):
        path = save_indexes(figure1_engine.indexes, tmp_path / "indexes.pkl")
        loaded = load_indexes(path)
        assert isinstance(loaded, D3LIndexes)
        assert loaded.attribute_count == figure1_engine.indexes.attribute_count

    def test_kind_mismatch_rejected(self, figure1_engine, tmp_path):
        engine_path = save_engine(figure1_engine, tmp_path / "engine.pkl")
        with pytest.raises(PersistenceError):
            load_indexes(engine_path)
        indexes_path = save_indexes(figure1_engine.indexes, tmp_path / "indexes.pkl")
        with pytest.raises(PersistenceError):
            load_engine(indexes_path)


class TestErrorHandling:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_engine(tmp_path / "missing.pkl")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "corrupt.pkl"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(PersistenceError):
            load_engine(path)

    def test_wrong_payload_type(self, tmp_path):
        path = tmp_path / "wrong.pkl"
        with path.open("wb") as handle:
            pickle.dump(["something", "else"], handle)
        with pytest.raises(PersistenceError):
            load_engine(path)

    def test_version_mismatch(self, figure1_engine, tmp_path):
        path = tmp_path / "old.pkl"
        with path.open("wb") as handle:
            pickle.dump(
                {"kind": "d3l_engine", "version": -1, "engine": figure1_engine}, handle
            )
        with pytest.raises(PersistenceError):
            load_engine(path)

    def test_v2_payload_rejected_with_clear_message(self, figure1_engine, tmp_path):
        """v2 pickled whole engine objects; loading one must say so and how to recover."""
        path = tmp_path / "v2.pkl"
        with path.open("wb") as handle:
            pickle.dump(
                {"kind": "d3l_engine", "version": 2, "engine": figure1_engine}, handle
            )
        with pytest.raises(PersistenceError) as excinfo:
            load_engine(path)
        message = str(excinfo.value)
        assert "version 2" in message
        assert f"expected {FORMAT_VERSION}" in message
        assert "re-index" in message

    def test_v2_indexes_payload_rejected(self, figure1_engine, tmp_path):
        path = tmp_path / "v2_indexes.pkl"
        with path.open("wb") as handle:
            pickle.dump(
                {"kind": "d3l_indexes", "version": 2, "indexes": figure1_engine.indexes},
                handle,
            )
        with pytest.raises(PersistenceError, match="version 2"):
            load_indexes(path)

    def test_current_version_without_sections_rejected(self, tmp_path):
        path = tmp_path / "hollow.pkl"
        with path.open("wb") as handle:
            pickle.dump({"kind": "d3l_engine", "version": FORMAT_VERSION}, handle)
        with pytest.raises(PersistenceError, match="sections"):
            load_engine(path)


class TestRawBufferRoundTrip:
    """v3 regression: signature matrices and forest arrays survive byte for byte."""

    def test_signature_matrices_byte_equal(self, figure1_engine, tmp_path):
        path = save_engine(figure1_engine, tmp_path / "engine.pkl")
        loaded = load_engine(path)
        for evidence in EvidenceType.indexed():
            refs, matrix, flags = figure1_engine.indexes._matrices[evidence].export_state()
            loaded_refs, loaded_matrix, loaded_flags = loaded.indexes._matrices[
                evidence
            ].export_state()
            assert refs == loaded_refs
            assert matrix.dtype == loaded_matrix.dtype
            assert matrix.tobytes() == loaded_matrix.tobytes()
            assert flags.tobytes() == loaded_flags.tobytes()

    def test_forest_arrays_byte_equal(self, figure1_engine, tmp_path):
        path = save_indexes(figure1_engine.indexes, tmp_path / "indexes.pkl")
        loaded = load_indexes(path)
        for evidence in EvidenceType.indexed():
            original = figure1_engine.indexes.forest(evidence).export_state()
            restored = loaded.forest(evidence).export_state()
            assert len(original["trees"]) == len(restored["trees"])
            for tree_a, tree_b in zip(original["trees"], restored["trees"]):
                assert tree_a["keys"].tobytes() == tree_b["keys"].tobytes()
                assert tree_a["items"] == tree_b["items"]

    def test_loaded_indexes_signatures_match_matrix_rows(self, figure1_engine, tmp_path):
        path = save_indexes(figure1_engine.indexes, tmp_path / "indexes.pkl")
        loaded = load_indexes(path)
        for evidence in EvidenceType.indexed():
            refs, matrix, flags = loaded._matrices[evidence].export_state()
            for row, ref in enumerate(refs):
                signature = loaded.signature(evidence, ref)
                assert signature is not None
                raw = (
                    signature.bits
                    if evidence is EvidenceType.EMBEDDING
                    else signature.hashvalues
                )
                assert np.array_equal(raw, matrix[row])
                assert np.array_equal(loaded.forest(evidence).signature(ref), matrix[row])

    def test_round_trip_twice_is_stable(self, figure1_engine, tmp_path):
        first = load_engine(save_engine(figure1_engine, tmp_path / "first.pkl"))
        second = load_engine(save_engine(first, tmp_path / "second.pkl"))
        for evidence in EvidenceType.indexed():
            refs_a, matrix_a, flags_a = first.indexes._matrices[evidence].export_state()
            refs_b, matrix_b, flags_b = second.indexes._matrices[evidence].export_state()
            assert refs_a == refs_b
            assert matrix_a.tobytes() == matrix_b.tobytes()
            assert flags_a.tobytes() == flags_b.tobytes()

    def test_loaded_engine_supports_incremental_updates(
        self, figure1_engine, figure1_tables, tmp_path
    ):
        path = save_engine(figure1_engine, tmp_path / "engine.pkl")
        loaded = load_engine(path)
        victim = loaded.indexes.table_names[0]
        assert loaded.remove_table(victim)
        loaded.index_table(figure1_tables["target"])
        result = loaded.query(figure1_tables["target"], k=2, exclude_self=True)
        assert victim not in result.table_names(2)


class TestJoinGraphPersistence:
    """The v3 join-graph section: save -> load -> identical edges/overlaps."""

    @pytest.fixture()
    def join_engine(self, figure1_tables, fast_config):
        engine = D3L(config=fast_config)
        engine.index_lake(figure1_tables["lake"])
        return engine

    @staticmethod
    def _edge_map(graph):
        return {
            tuple(sorted(pair)): (
                graph.edge(*pair).left,
                graph.edge(*pair).right,
                graph.edge(*pair).overlap,
            )
            for pair in graph.graph.edges
        }

    def test_built_graph_round_trips(self, join_engine, tmp_path):
        from repro.core.persistence import save_engine as save

        original = join_engine.join_graph
        assert original.edge_count() >= 1
        path = save(join_engine, tmp_path / "engine.pkl")
        loaded = load_engine(path)
        restored = loaded.cached_join_graph
        assert restored is not None
        assert set(restored.table_names) == set(original.table_names)
        assert self._edge_map(restored) == self._edge_map(original)

    def test_restored_graph_is_served_without_rebuilding(
        self, join_engine, tmp_path, monkeypatch
    ):
        from repro.core import joins as joins_module

        join_engine.join_graph  # build + cache
        path = save_engine(join_engine, tmp_path / "engine.pkl")
        loaded = load_engine(path)

        def _fail(*args, **kwargs):  # pragma: no cover - the assertion is the call
            raise AssertionError("restored join graph must not be rebuilt")

        monkeypatch.setattr(joins_module.SAJoinGraph, "build", classmethod(_fail))
        assert loaded.join_graph.edge_count() == join_engine.join_graph.edge_count()

    def test_unbuilt_graph_persists_as_absent(self, join_engine, tmp_path):
        path = save_engine(join_engine, tmp_path / "engine.pkl")
        loaded = load_engine(path)
        assert loaded.cached_join_graph is None
        # And the lazy build still works on the restored engine.
        assert loaded.join_graph.edge_count() == join_engine.join_graph.edge_count()

    def test_lake_mutation_invalidates_restored_graph(
        self, join_engine, tmp_path, figure1_tables
    ):
        from repro.tables.table import Table

        join_engine.join_graph
        path = save_engine(join_engine, tmp_path / "engine.pkl")
        loaded = load_engine(path)
        assert loaded.cached_join_graph is not None
        loaded.index_table(
            Table.from_dict("new_clinics", {"Clinic": ["Ordsall Health"], "City": ["Salford"]})
        )
        assert loaded.cached_join_graph is None

    def test_session_round_trip_restores_graph(self, join_engine, tmp_path):
        from repro.core.api import DiscoverySession
        from repro.core.persistence import load_session, save_session

        session = DiscoverySession(join_engine)
        join_engine.join_graph
        path = save_session(session, tmp_path / "session.pkl")
        restored = load_session(path)
        graph = restored.engine.cached_join_graph
        assert graph is not None
        assert self._edge_map(graph) == self._edge_map(join_engine.join_graph)
