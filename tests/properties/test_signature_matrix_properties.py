"""Randomized-interleaving properties of ``SignatureMatrix``.

A hypothesis-style loop (fixed seeds, no external dependency) drives random
sequences of single inserts, batched inserts, overwrites, removals, and
compactions against a plain-dictionary model, then checks that ``row``,
``gather``, ``resolve``, and the packed-row invariants agree with the model
after every step.
"""

import random

import numpy as np
import pytest

from repro.core.indexes import SignatureMatrix
from repro.lake.datalake import AttributeRef

NUM_HASHES = 16


def _ref(index: int) -> AttributeRef:
    return AttributeRef(f"t{index % 7}", f"c{index}")


def _signature(rng: random.Random) -> np.ndarray:
    return np.array([rng.randrange(1 << 32) for _ in range(NUM_HASHES)], dtype=np.uint64)


def _check_against_model(matrix: SignatureMatrix, model: dict) -> None:
    assert len(matrix) == len(model)
    refs = matrix.refs
    assert set(refs) == set(model)
    rows = {}
    for ref, (values, degenerate) in model.items():
        row = matrix.row(ref)
        assert row is not None
        assert ref in matrix
        rows[ref] = row
        gathered_values, gathered_flags = matrix.gather(np.array([row], dtype=np.intp))
        assert np.array_equal(gathered_values[0], values)
        assert bool(gathered_flags[0]) == degenerate
    # Rows are packed: a permutation of range(len(model)).
    assert sorted(rows.values()) == list(range(len(model)))
    # refs property mirrors row order.
    for row, ref in enumerate(refs):
        assert rows[ref] == row
    # resolve() keeps positions aligned and skips unknown refs.
    probe = list(model) + [AttributeRef("ghost", "ghost")]
    positions, resolved_rows = matrix.resolve(probe)
    assert positions == list(range(len(model)))
    assert [rows[probe[p]] for p in positions] == resolved_rows


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 17])
def test_random_interleavings_round_trip(seed):
    rng = random.Random(seed)
    matrix = SignatureMatrix(NUM_HASHES, np.dtype(np.uint64))
    model = {}
    for step in range(300):
        action = rng.random()
        if action < 0.35:
            # Single insert or overwrite.
            ref = _ref(rng.randrange(40))
            values = _signature(rng)
            degenerate = rng.random() < 0.2
            matrix.add(ref, values, degenerate)
            model[ref] = (values, degenerate)
        elif action < 0.55:
            # Batched insert (may mix fresh refs, overwrites, and duplicates).
            count = rng.randrange(1, 6)
            refs = [_ref(rng.randrange(40)) for _ in range(count)]
            values = np.vstack([_signature(rng) for _ in range(count)])
            flags = np.array([rng.random() < 0.2 for _ in range(count)], dtype=bool)
            matrix.add_batch(refs, values, flags)
            for position, ref in enumerate(refs):
                model[ref] = (values[position], bool(flags[position]))
        elif action < 0.85:
            # Removal (sometimes of an absent ref — must be a no-op).
            ref = _ref(rng.randrange(50))
            matrix.discard(ref)
            model.pop(ref, None)
        else:
            matrix.compact()
        if step % 10 == 0:
            _check_against_model(matrix, model)
    _check_against_model(matrix, model)


@pytest.mark.parametrize("seed", [5, 23])
def test_export_import_round_trip_under_interleaving(seed):
    """export_state -> import_state is lossless at arbitrary interleaving points."""
    rng = random.Random(seed)
    matrix = SignatureMatrix(NUM_HASHES, np.dtype(np.uint64))
    model = {}
    for step in range(120):
        if rng.random() < 0.7:
            ref = _ref(rng.randrange(30))
            values = _signature(rng)
            matrix.add(ref, values, False)
            model[ref] = (values, False)
        else:
            ref = _ref(rng.randrange(30))
            matrix.discard(ref)
            model.pop(ref, None)
        if step % 30 == 29:
            refs, values, flags = matrix.export_state()
            clone = SignatureMatrix(NUM_HASHES, np.dtype(np.uint64))
            clone.import_state(refs, values, flags)
            _check_against_model(clone, model)
            # Byte-equal state on re-export.
            refs2, values2, flags2 = clone.export_state()
            assert refs == refs2
            assert values.tobytes() == values2.tobytes()
            assert flags.tobytes() == flags2.tobytes()


def test_import_state_rejects_inconsistent_shapes():
    matrix = SignatureMatrix(NUM_HASHES, np.dtype(np.uint64))
    with pytest.raises(ValueError):
        matrix.import_state(
            [AttributeRef("a", "b")],
            np.zeros((2, NUM_HASHES), dtype=np.uint64),
            np.zeros(2, dtype=bool),
        )


def test_compact_releases_capacity_without_changing_rows():
    rng = random.Random(99)
    matrix = SignatureMatrix(NUM_HASHES, np.dtype(np.uint64))
    model = {}
    for index in range(50):
        ref = _ref(index)
        values = _signature(rng)
        matrix.add(ref, values, False)
        model[ref] = (values, False)
    for index in range(0, 50, 2):
        matrix.discard(_ref(index))
        model.pop(_ref(index), None)
    before = {ref: matrix.row(ref) for ref in model}
    matrix.compact()
    assert matrix._matrix.shape[0] == len(model)
    assert {ref: matrix.row(ref) for ref in model} == before
    _check_against_model(matrix, model)
