"""D3L core: the paper's primary contribution.

The public surface of the core is:

* :class:`~repro.core.config.D3LConfig` — all tunable parameters with the
  paper's defaults (q = 4, MinHash size 256, LSH threshold 0.7, ...);
* :class:`~repro.core.indexes.D3LIndexes` — the four LSH indexes (name,
  value, format, embedding) plus attribute profiles (Algorithm 1);
* :class:`~repro.core.discovery.D3L` — the discovery engine: given a target
  table, return the k most related datasets (section III), optionally
  extended through join paths (section IV, ``D3L+J``);
* :class:`~repro.core.weights.EvidenceWeights` — the Equation 3 weights and
  their logistic-regression training procedure.
"""

from repro.core.aggregation import (
    aggregate_column,
    build_distance_table,
    combined_distance,
    evidence_vector,
)
from repro.core.api import (
    AttributeRanking,
    DiscoverySession,
    JoinPathsBlock,
    QueryRequest,
    QueryResponse,
    TableRanking,
)
from repro.core.config import D3LConfig
from repro.core.discovery import (
    AttributeSearchResult,
    D3L,
    JoinAugmentedResult,
    QueryResult,
    TableResult,
)
from repro.core.evidence import EvidenceType
from repro.core.indexes import D3LIndexes
from repro.core.joins import (
    JoinEdge,
    JoinPath,
    JoinPathSearch,
    SAJoinGraph,
    find_join_paths,
)
from repro.core.persistence import (
    load_engine,
    load_indexes,
    load_session,
    save_engine,
    save_indexes,
    save_session,
)
from repro.core.profiles import AttributeMatch, AttributeProfile, TableProfile
from repro.core.weights import EvidenceWeights, train_evidence_weights

__all__ = [
    "AttributeMatch",
    "AttributeProfile",
    "AttributeRanking",
    "AttributeSearchResult",
    "D3L",
    "DiscoverySession",
    "JoinAugmentedResult",
    "D3LConfig",
    "D3LIndexes",
    "EvidenceType",
    "EvidenceWeights",
    "JoinEdge",
    "JoinPath",
    "JoinPathSearch",
    "JoinPathsBlock",
    "QueryRequest",
    "QueryResponse",
    "QueryResult",
    "SAJoinGraph",
    "TableProfile",
    "TableRanking",
    "TableResult",
    "aggregate_column",
    "build_distance_table",
    "combined_distance",
    "evidence_vector",
    "find_join_paths",
    "load_engine",
    "load_indexes",
    "load_session",
    "save_engine",
    "save_indexes",
    "save_session",
    "train_evidence_weights",
]
