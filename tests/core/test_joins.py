"""Tests for SA-joinability and Algorithm 3 join-path discovery."""

import dataclasses

import numpy as np
import pytest

from repro.core.evidence import EvidenceType
from repro.core.joins import (
    JoinEdge,
    JoinPath,
    JoinPathSearch,
    SAJoinGraph,
    _subject_probes,
    estimated_overlap,
    estimated_overlaps,
    find_join_paths,
    paths_from,
    tables_reached,
)
from repro.lake.datalake import AttributeRef


def edge_map(graph: SAJoinGraph) -> dict:
    """Canonical (table pair) -> (left, right, overlap) map for comparison."""
    return {
        tuple(sorted(pair)): (
            graph.edge(*pair).left,
            graph.edge(*pair).right,
            graph.edge(*pair).overlap,
        )
        for pair in graph.graph.edges
    }


class TestEstimatedOverlap:
    def test_identical_sets(self):
        assert estimated_overlap(1.0, 10, 10) == 1.0

    def test_zero_jaccard(self):
        assert estimated_overlap(0.0, 10, 10) == 0.0

    def test_empty_set(self):
        assert estimated_overlap(0.5, 0, 10) == 0.0

    def test_containment_of_small_set_in_large(self):
        # |A|=10 fully contained in |B|=100: J = 10/100 = 0.1,
        # ov estimate = 0.1*110/(1.1*10) = 1.0.
        assert estimated_overlap(0.1, 10, 100) == pytest.approx(1.0)

    def test_clipped_to_one(self):
        assert estimated_overlap(0.9, 10, 1000) == 1.0

    def test_monotone_in_jaccard(self):
        assert estimated_overlap(0.6, 50, 60) > estimated_overlap(0.3, 50, 60)


class TestSAJoinGraph:
    def test_figure1_join_graph_connects_gp_tables(self, figure1_engine):
        graph = figure1_engine.join_graph
        assert set(graph.table_names) == {
            "gp_practices_s1",
            "gp_funding_s2",
            "local_gps_s3",
        }
        # The subject attributes (practice names) overlap heavily, so at
        # least one SA-join edge must exist.
        assert graph.edge_count() >= 1

    def test_edges_involve_subject_attributes(self, figure1_engine):
        graph = figure1_engine.join_graph
        subjects = {
            table_name: figure1_engine.indexes.subject_attribute(table_name)
            for table_name in graph.table_names
        }
        for first, second in graph.graph.edges:
            edge = graph.edge(first, second)
            assert (
                edge.left.column == subjects[edge.left.table]
                or edge.right.column == subjects[edge.right.table]
            )

    def test_neighbours_of_unknown_table(self, figure1_engine):
        assert figure1_engine.join_graph.neighbours("unknown") == []

    def test_edge_for_unconnected_pair(self, figure1_engine):
        graph = figure1_engine.join_graph
        assert graph.edge("gp_practices_s1", "no_such_table") is None

    def test_connected_component_contains_self(self, figure1_engine):
        component = figure1_engine.join_graph.connected_component("gp_practices_s1")
        assert "gp_practices_s1" in component

    def test_connected_component_of_unknown_table(self, figure1_engine):
        assert figure1_engine.join_graph.connected_component("unknown") == set()

    def test_overlaps_above_threshold(self, figure1_engine):
        graph = figure1_engine.join_graph
        threshold = figure1_engine.config.overlap_threshold
        for first, second in graph.graph.edges:
            assert graph.edge(first, second).overlap >= threshold


class TestFindJoinPaths:
    @pytest.fixture
    def toy_graph(self):
        import networkx as nx

        graph = nx.Graph()
        edges = [
            ("a", "b"),
            ("b", "c"),
            ("c", "d"),
            ("a", "e"),
        ]
        for first, second in edges:
            graph.add_edge(
                first,
                second,
                join=JoinEdge(
                    left=AttributeRef(first, "subject"),
                    right=AttributeRef(second, "subject"),
                    overlap=0.9,
                ),
            )
        return SAJoinGraph(graph)

    def test_paths_exclude_top_k_members(self, toy_graph):
        paths = find_join_paths(toy_graph, ["a", "b"], related_tables={"a", "b", "c", "d", "e"})
        reached = tables_reached(paths)
        assert "b" not in reached
        assert {"c", "d", "e"} & reached

    def test_paths_restricted_to_related_tables(self, toy_graph):
        paths = find_join_paths(toy_graph, ["a"], related_tables={"a", "b", "e"})
        reached = tables_reached(paths)
        assert "e" in reached
        assert "c" not in reached and "d" not in reached

    def test_paths_are_acyclic(self, toy_graph):
        paths = find_join_paths(toy_graph, ["a"], related_tables={"a", "b", "c", "d", "e"})
        for path in paths:
            assert len(path.tables) == len(set(path.tables))

    def test_max_length_respected(self, toy_graph):
        short = find_join_paths(
            toy_graph, ["a"], related_tables={"a", "b", "c", "d", "e"}, max_length=1
        )
        assert all(len(path) == 2 for path in short)
        longer = find_join_paths(
            toy_graph, ["a"], related_tables={"a", "b", "c", "d", "e"}, max_length=3
        )
        assert any(len(path) == 4 for path in longer)

    def test_every_path_starts_from_a_top_k_table(self, toy_graph):
        paths = find_join_paths(toy_graph, ["a", "b"], related_tables={"a", "b", "c", "d", "e"})
        assert all(path.start in {"a", "b"} for path in paths)

    def test_path_edges_match_tables(self, toy_graph):
        paths = find_join_paths(toy_graph, ["b"], related_tables={"a", "b", "c", "d"})
        for path in paths:
            assert len(path.edges) == len(path.tables) - 1

    def test_paths_from_helper(self, toy_graph):
        paths = find_join_paths(toy_graph, ["a", "b"], related_tables={"a", "b", "c", "d", "e"})
        assert all(path.start == "a" for path in paths_from(paths, "a"))

    def test_reached_property(self):
        path = JoinPath(tables=["a", "b", "c"], edges=[])
        assert path.start == "a"
        assert path.reached == ["b", "c"]
        assert len(path) == 3


class TestEnsembleJoinGraph:
    def test_ensemble_variant_finds_gp_joins(self, figure1_engine):
        from repro.core.joins import SAJoinGraph

        graph = SAJoinGraph.build_with_ensemble(
            figure1_engine.indexes, figure1_engine.config
        )
        assert set(graph.table_names) == {
            "gp_practices_s1",
            "gp_funding_s2",
            "local_gps_s3",
        }
        assert graph.edge_count() >= 1

    def test_ensemble_edges_verified_by_value_overlap(self, figure1_engine):
        from repro.core.joins import SAJoinGraph

        graph = SAJoinGraph.build_with_ensemble(
            figure1_engine.indexes, figure1_engine.config
        )
        threshold = figure1_engine.config.overlap_threshold
        for first, second in graph.graph.edges:
            assert graph.edge(first, second).overlap >= threshold


class TestQueryWithJoins:
    def test_join_augmented_result_structure(self, figure1_engine, figure1_tables):
        augmented = figure1_engine.query_with_joins(figure1_tables["target"], k=1)
        assert augmented.base.requested_k == 1
        top_table = augmented.base.table_names(1)[0]
        assert augmented.tables_for(top_table) == {
            path.tables[1] for path in augmented.join_paths if path.start == top_table
        } or augmented.tables_for(top_table) == set()

    def test_joined_tables_not_in_top_k(self, figure1_engine, figure1_tables):
        augmented = figure1_engine.query_with_joins(figure1_tables["target"], k=1)
        top = set(augmented.base.table_names(1))
        assert augmented.joined_tables.isdisjoint(top)

    def test_joined_tables_on_generated_corpus(self, indexed_d3l, small_synthetic_benchmark):
        target = small_synthetic_benchmark.pick_targets(1, seed=6)[0]
        augmented = indexed_d3l.query_with_joins(target, k=3)
        # Join paths may or may not exist, but the structure must be coherent.
        for path in augmented.join_paths:
            assert path.start in augmented.base.table_names(3)
            assert set(path.reached) <= augmented.base.candidate_tables()


class TestEstimatedOverlapsVectorized:
    def test_matches_scalar_elementwise(self):
        rng = np.random.default_rng(3)
        jaccard = rng.uniform(-0.1, 1.0, size=50)
        sizes = rng.integers(0, 200, size=50)
        vector = estimated_overlaps(jaccard, 120, sizes)
        for index in range(50):
            assert vector[index] == pytest.approx(
                estimated_overlap(float(jaccard[index]), 120, int(sizes[index]))
            )

    def test_empty_input(self):
        assert estimated_overlaps(np.empty(0), 10, np.empty(0)).shape == (0,)


class TestBatchedBuild:
    def test_batched_equals_sequential_on_figure1(self, figure1_engine):
        batched = SAJoinGraph.build(figure1_engine.indexes, figure1_engine.config)
        sequential = SAJoinGraph.build_sequential(
            figure1_engine.indexes, figure1_engine.config
        )
        assert batched.edge_count() >= 1
        assert edge_map(batched) == edge_map(sequential)

    def test_batched_equals_sequential_on_synthetic_corpus(self, indexed_d3l):
        batched = SAJoinGraph.build(indexed_d3l.indexes, indexed_d3l.config)
        sequential = SAJoinGraph.build_sequential(indexed_d3l.indexes, indexed_d3l.config)
        assert edge_map(batched) == edge_map(sequential)

    def test_sharded_verification_matches_single_process(self, indexed_d3l):
        single = SAJoinGraph.build(indexed_d3l.indexes, indexed_d3l.config, workers=1)
        sharded = SAJoinGraph.build(indexed_d3l.indexes, indexed_d3l.config, workers=2)
        assert edge_map(single) == edge_map(sharded)

    def test_probes_are_subject_attributes_in_sorted_order(self, figure1_engine):
        probes = _subject_probes(figure1_engine.indexes)
        assert [name for name, _ in probes] == sorted(name for name, _ in probes)
        for table_name, subject in probes:
            assert subject.ref.column == figure1_engine.indexes.subject_attribute(
                table_name
            )

    def test_empty_indexes_build(self, fast_config):
        from repro.core.indexes import D3LIndexes

        indexes = D3LIndexes(config=fast_config)
        graph = SAJoinGraph.build(indexes, fast_config)
        assert graph.table_names == []
        assert graph.edge_count() == 0

    def test_edges_helper_sorted(self, figure1_engine):
        edges = figure1_engine.join_graph.edges()
        assert edges == sorted(edges, key=lambda edge: (edge.left, edge.right))
        assert len(edges) == figure1_engine.join_graph.edge_count()


class TestPrefilterAdmissibility:
    """The estimated-overlap pre-filter must never drop a verified pair."""

    def test_prefilter_preserves_unfiltered_edge_set(self, indexed_d3l):
        config = dataclasses.replace(indexed_d3l.config, join_prefilter_margin=0.0)
        unfiltered = SAJoinGraph.build(indexed_d3l.indexes, config)
        filtered = SAJoinGraph.build(indexed_d3l.indexes, indexed_d3l.config)
        assert edge_map(filtered) == edge_map(unfiltered)

    def test_no_verified_pair_falls_below_prefilter_cutoff(self, indexed_d3l):
        indexes = indexed_d3l.indexes
        config = indexed_d3l.config
        cutoff = config.overlap_threshold * config.join_prefilter_margin
        checked = 0
        for table_name, subject in _subject_probes(indexes):
            candidates = indexes.lookup(
                EvidenceType.VALUE,
                subject,
                k=config.join_candidate_pool,
                exclude_table=table_name,
            )
            for ref, distance in candidates:
                other = indexes.profiles.get(ref)
                if other is None or not other.tokens:
                    continue
                if subject.value_overlap(other) >= config.overlap_threshold:
                    estimate = estimated_overlap(
                        1.0 - distance, len(subject.tokens), len(other.tokens)
                    )
                    assert estimate >= cutoff, (
                        f"pre-filter would drop verified pair "
                        f"{subject.ref} ~ {ref} (estimate {estimate:.3f})"
                    )
                    checked += 1
        assert checked > 0

    def test_zero_margin_disables_prefilter(self, fast_config):
        config = dataclasses.replace(fast_config, join_prefilter_margin=0.0)
        assert config.join_prefilter_margin == 0.0


class TestTruncatedFlag:
    @pytest.fixture
    def chain_graph(self):
        import networkx as nx

        graph = nx.Graph()
        for first, second in [("a", "b"), ("b", "c"), ("c", "d"), ("x", "y")]:
            graph.add_edge(
                first,
                second,
                join=JoinEdge(
                    left=AttributeRef(first, "subject"),
                    right=AttributeRef(second, "subject"),
                    overlap=0.8,
                ),
            )
        return SAJoinGraph(graph)

    def test_uncapped_walk_is_not_truncated(self, chain_graph):
        related = {"a", "b", "c", "d", "x", "y"}
        search = find_join_paths(chain_graph, ["a", "x"], related)
        assert isinstance(search, JoinPathSearch)
        assert not search.truncated
        assert "y" in tables_reached(search)

    def test_capped_walk_is_truncated_and_flagged(self, chain_graph):
        related = {"a", "b", "c", "d", "x", "y"}
        search = find_join_paths(chain_graph, ["a", "x"], related, max_paths=1)
        assert search.truncated
        assert len(search) == 1
        # The flag is what distinguishes this capped answer: without it the
        # silently-dropped start table "x" would be indistinguishable from
        # "x has no join paths".
        assert "y" not in tables_reached(search)

    def test_search_behaves_like_a_sequence(self, chain_graph):
        related = {"a", "b", "c", "d"}
        search = find_join_paths(chain_graph, ["a"], related)
        assert list(search) == search.paths
        assert search[0] == search.paths[0]
        assert search[:2] == search.paths[:2]
        assert len(search) == len(search.paths)

    def test_exact_cap_at_end_is_not_flagged(self, chain_graph):
        # One start table whose walk finishes exactly when the cap is hit:
        # nothing was dropped, so the enumeration is complete.
        search = find_join_paths(chain_graph, ["x"], {"x", "y"}, max_paths=5)
        assert len(search) == 1
        assert not search.truncated


class TestEnsembleEquivalence:
    def test_ensemble_matches_batched_build_on_figure1(self, figure1_engine):
        """On the seeded GP lake both blocking strategies converge to the
        same verified edges: containment and Jaccard retrieval agree when
        the subject-attribute overlaps are strong."""
        ensemble = SAJoinGraph.build_with_ensemble(
            figure1_engine.indexes, figure1_engine.config
        )
        batched = SAJoinGraph.build(figure1_engine.indexes, figure1_engine.config)
        assert batched.edge_count() >= 1
        assert edge_map(ensemble) == edge_map(batched)
