"""Tests for the Aurum baseline."""

import pytest

from repro.baselines.aurum import Aurum
from repro.core.config import D3LConfig
from repro.tables.table import Table


@pytest.fixture(scope="module")
def config():
    return D3LConfig(num_hashes=128, embedding_dimension=16, min_candidates=20)


@pytest.fixture(scope="module")
def indexed_aurum(config, figure1_tables):
    engine = Aurum(config=config)
    engine.index_lake(figure1_tables["lake"])
    return engine


class TestGraphConstruction:
    def test_graph_has_node_per_attribute(self, indexed_aurum, figure1_tables):
        expected = sum(table.arity for table in figure1_tables["sources"])
        assert indexed_aurum.graph.number_of_nodes() == expected

    def test_content_edges_connect_overlapping_columns(self, indexed_aurum):
        graph = indexed_aurum.graph
        content_edges = [
            (u, v)
            for u, v, data in graph.edges(data=True)
            if "content" in data["relations"]
        ]
        assert content_edges
        # Every content edge crosses tables.
        assert all(u.table != v.table for u, v in content_edges)

    def test_estimated_bytes_positive(self, indexed_aurum):
        assert indexed_aurum.estimated_bytes() > 0

    def test_graph_rebuild_after_new_table(self, config, figure1_tables):
        engine = Aurum(config=config)
        engine.index_lake(figure1_tables["lake"])
        edges_before = engine.graph.number_of_edges()
        engine.index_table(figure1_tables["sources"][0].with_name("copy_of_s1"))
        engine.build_graph()
        assert engine.graph.number_of_nodes() > 0
        assert engine.graph.number_of_edges() >= edges_before


class TestQuery:
    def test_rejects_non_positive_k(self, indexed_aurum, figure1_tables):
        with pytest.raises(ValueError):
            indexed_aurum.query(figure1_tables["target"], k=0)

    def test_finds_related_tables(self, indexed_aurum, figure1_tables):
        answer = indexed_aurum.query(figure1_tables["target"], k=3)
        assert "gp_funding_s2" in answer.candidate_tables()

    def test_scores_descending_and_bounded(self, indexed_aurum, figure1_tables):
        answer = indexed_aurum.query(figure1_tables["target"], k=3)
        scores = [result.score for result in answer.results]
        assert scores == sorted(scores, reverse=True)
        assert all(0.0 <= score <= 1.0 for score in scores)

    def test_certainty_ranking_uses_max_score(self, indexed_aurum, figure1_tables):
        answer = indexed_aurum.query(figure1_tables["target"], k=3)
        for result in answer.results:
            best_alignment = max(alignment.score for alignment in result.alignments)
            assert result.score == pytest.approx(best_alignment)

    def test_exclude_self(self, indexed_aurum, figure1_tables):
        source = figure1_tables["sources"][1]
        answer = indexed_aurum.query(source, k=3, exclude_self=True)
        assert source.name not in answer.candidate_tables()


class TestJoins:
    def test_joinable_tables_through_pkfk_edges(self, config):
        practices = Table.from_dict(
            "practices",
            {
                "Practice": ["Blackfriars", "Radclife Care", "Bolton Medical", "Dr E Cullen"],
                "City": ["Salford", "Manchester", "Bolton", "Belfast"],
            },
        )
        hours = Table.from_dict(
            "hours",
            {
                "GP": ["Blackfriars", "Radclife Care", "Bolton Medical", "Dr E Cullen"],
                "Opening": ["08:00", "07:00", "08:30", "09:00"],
            },
        )
        engine = Aurum(config=config)
        engine.index_table(practices)
        engine.index_table(hours)
        engine.build_graph()
        assert "hours" in engine.joinable_tables("practices")

    def test_joinable_tables_of_unknown_table(self, indexed_aurum):
        assert indexed_aurum.joinable_tables("unknown") == set()

    def test_query_with_joins_returns_disjoint_sets(self, indexed_aurum, figure1_tables):
        answer, joined = indexed_aurum.query_with_joins(figure1_tables["target"], k=1)
        top = set(answer.table_names(1))
        assert joined.isdisjoint(top)
        assert figure1_tables["target"].name not in joined
