"""Property-based tests for the table layer."""

import string

from hypothesis import given, settings, strategies as st

from repro.tables.operations import project, select
from repro.tables.table import Table
from repro.tables.types import coerce_numeric, infer_type, is_missing

column_names = st.lists(
    st.text(alphabet=string.ascii_letters, min_size=1, max_size=8),
    min_size=1,
    max_size=5,
    unique=True,
)
cell = st.one_of(
    st.none(),
    st.text(alphabet=string.ascii_letters + string.digits + " .-", max_size=12),
    st.integers(min_value=-10_000, max_value=10_000).map(str),
)


@st.composite
def tables(draw):
    names = draw(column_names)
    num_rows = draw(st.integers(min_value=0, max_value=8))
    data = {name: [draw(cell) for _ in range(num_rows)] for name in names}
    return Table.from_dict("generated", data)


class TestTableInvariants:
    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_all_columns_have_cardinality_rows(self, table):
        for column in table.columns:
            assert len(column) == table.cardinality

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_rows_round_trip(self, table):
        rows = list(table.rows())
        rebuilt = Table.from_rows("rebuilt", table.column_names, rows)
        for name in table.column_names:
            assert rebuilt.column(name).values == table.column(name).values

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_projection_preserves_cardinality(self, table):
        projected = project(table, table.column_names[:1])
        assert projected.cardinality == table.cardinality

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_select_true_keeps_everything(self, table):
        assert select(table, lambda row: True).cardinality == table.cardinality

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_select_false_keeps_nothing(self, table):
        assert select(table, lambda row: False).cardinality == 0

    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_numeric_ratio_bounded(self, table):
        assert 0.0 <= table.numeric_ratio <= 1.0


class TestTypeInvariants:
    @given(cell)
    @settings(max_examples=200, deadline=None)
    def test_missing_values_never_numeric(self, value):
        if is_missing(value):
            assert coerce_numeric(value) is None

    @given(st.lists(cell, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_infer_type_total(self, values):
        # infer_type must always return a valid enum member, never raise.
        assert infer_type(values).value in {"text", "numeric", "empty"}
