"""Tests for token histograms and informative-token selection."""

from repro.text.token_stats import (
    TokenHistogram,
    informative_and_frequent_tokens,
    value_token_set,
)


class TestTokenHistogram:
    def test_counts_accumulate(self):
        histogram = TokenHistogram()
        histogram.insert(["street", "portland"])
        histogram.insert(["street", "oxford"])
        assert histogram.count("street") == 2
        assert histogram.count("oxford") == 1
        assert histogram.count("missing") == 0

    def test_total_values(self):
        histogram = TokenHistogram()
        histogram.insert(["a"])
        histogram.insert(["b"])
        assert histogram.total_values == 2

    def test_len_counts_distinct_tokens(self):
        histogram = TokenHistogram()
        histogram.insert(["a", "b", "a"])
        assert len(histogram) == 2

    def test_frequent_and_infrequent_partition(self):
        histogram = TokenHistogram()
        for _ in range(5):
            histogram.insert(["street", f"unique{_}"])
        frequent = histogram.frequent()
        infrequent = histogram.infrequent()
        assert "street" in frequent
        assert all(token in infrequent for token in [f"unique{i}" for i in range(5)])
        assert frequent.isdisjoint(infrequent)
        assert frequent | infrequent == set(histogram.as_dict())

    def test_empty_histogram(self):
        histogram = TokenHistogram()
        assert histogram.frequent() == set()
        assert histogram.infrequent() == set()
        assert histogram.frequency_threshold() == 0.0

    def test_most_common(self):
        histogram = TokenHistogram()
        histogram.insert(["a", "a", "b"])
        assert histogram.most_common(1) == [("a", 2)]


class TestInformativeTokens:
    def test_paper_example_addresses(self):
        # The paper's Example 2: street-type words and postcode-area tokens
        # are frequent (weak value signal, strong type signal); house/street
        # identifiers are informative.
        values = [
            "18 Portland Street, M1 3BE",
            "41 Oxford Street, M13 9PL",
            "9 Mirabel Street, M3 1NN",
        ]
        tset, embedding_tokens = informative_and_frequent_tokens(values)
        assert "street" not in tset
        assert "street" in embedding_tokens
        assert {"portland", "oxford", "mirabel"} <= tset | embedding_tokens
        # The distinctive postcode units end up carrying value signal.
        assert {"3be", "9pl", "1nn"} & tset

    def test_unique_values_all_informative(self):
        values = ["alpha", "beta", "gamma"]
        tset, _ = informative_and_frequent_tokens(values)
        assert tset == {"alpha", "beta", "gamma"}

    def test_empty_extent(self):
        tset, embedding_tokens = informative_and_frequent_tokens([])
        assert tset == set()
        assert embedding_tokens == set()

    def test_deterministic(self):
        values = ["a b", "a c", "a d"]
        assert informative_and_frequent_tokens(values) == informative_and_frequent_tokens(values)

    def test_single_word_values(self):
        tset, embedding_tokens = informative_and_frequent_tokens(["Salford", "Salford", "Bolton"])
        assert "salford" in embedding_tokens
        assert "bolton" in tset


class TestValueTokenSet:
    def test_union_of_all_tokens(self):
        tokens = value_token_set(["18 Portland Street", "M1 3BE"])
        assert {"18", "portland", "street", "m1", "3be"} == tokens

    def test_empty(self):
        assert value_token_set([]) == set()

    def test_lowercased(self):
        assert value_token_set(["SALFORD"]) == {"salford"}
