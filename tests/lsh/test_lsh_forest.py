"""Tests for the LSH Forest top-k index."""

import numpy as np
import pytest

from repro.lsh.lsh_forest import LSHForest
from repro.lsh.minhash import MinHashFactory


@pytest.fixture
def factory():
    return MinHashFactory(num_perm=128, seed=7)


@pytest.fixture
def forest():
    return LSHForest(num_hashes=128, num_trees=8)


def _tokens(prefix, count):
    return {f"{prefix}{i}" for i in range(count)}


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LSHForest(num_hashes=0)
        with pytest.raises(ValueError):
            LSHForest(num_hashes=16, num_trees=0)
        with pytest.raises(ValueError):
            LSHForest(num_hashes=4, num_trees=8)

    def test_key_length(self):
        assert LSHForest(num_hashes=128, num_trees=8).key_length == 16


class TestInsertQuery:
    def test_insert_and_len(self, forest, factory):
        forest.insert("a", factory.from_tokens(_tokens("a", 10)).hashvalues)
        assert len(forest) == 1
        assert "a" in forest

    def test_short_signature_rejected(self, forest):
        with pytest.raises(ValueError):
            forest.insert("bad", np.zeros(8, dtype=np.uint64))

    def test_query_finds_identical_item(self, forest, factory):
        signature = factory.from_tokens(_tokens("x", 25))
        forest.insert("x", signature.hashvalues)
        assert forest.query(signature.hashvalues, k=5) == ["x"]

    def test_query_excludes_requested_key(self, forest, factory):
        signature = factory.from_tokens(_tokens("x", 25))
        forest.insert("x", signature.hashvalues)
        assert forest.query(signature.hashvalues, k=5, exclude="x") == []

    def test_query_zero_k_returns_nothing(self, forest, factory):
        signature = factory.from_tokens(_tokens("x", 25))
        forest.insert("x", signature.hashvalues)
        assert forest.query(signature.hashvalues, k=0) == []

    def test_similar_ranked_before_dissimilar(self, forest, factory):
        base = _tokens("tok", 60)
        forest.insert("near", factory.from_tokens(base | {"one-extra"}).hashvalues)
        forest.insert("far", factory.from_tokens(_tokens("other", 60)).hashvalues)
        results = forest.query(factory.from_tokens(base).hashvalues, k=1)
        assert results and results[0] == "near"

    def test_remove(self, forest, factory):
        signature = factory.from_tokens(_tokens("x", 25))
        forest.insert("x", signature.hashvalues)
        forest.remove("x")
        assert len(forest) == 0
        assert forest.query(signature.hashvalues, k=5) == []

    def test_remove_missing_is_noop(self, forest):
        forest.remove("missing")
        assert len(forest) == 0

    def test_reinsert_replaces(self, forest, factory):
        first = factory.from_tokens(_tokens("a", 25))
        second = factory.from_tokens(_tokens("b", 25))
        forest.insert("item", first.hashvalues)
        forest.insert("item", second.hashvalues)
        assert len(forest) == 1
        assert forest.query(second.hashvalues, k=3) == ["item"]

    def test_signature_accessor(self, forest, factory):
        signature = factory.from_tokens(_tokens("x", 25))
        forest.insert("x", signature.hashvalues)
        assert np.array_equal(forest.signature("x"), signature.hashvalues)

    def test_keys(self, forest, factory):
        forest.insert("a", factory.from_tokens(_tokens("a", 5)).hashvalues)
        forest.insert("b", factory.from_tokens(_tokens("b", 5)).hashvalues)
        assert set(forest.keys()) == {"a", "b"}


class TestTopKBehaviour:
    def test_returns_at_most_total_items(self, forest, factory):
        for i in range(5):
            forest.insert(f"item{i}", factory.from_tokens(_tokens(f"g{i}", 20)).hashvalues)
        query = factory.from_tokens(_tokens("g0", 20))
        assert len(forest.query(query.hashvalues, k=50)) <= 5

    def test_query_all_returns_related_items(self, forest, factory):
        base = _tokens("shared", 40)
        for i in range(4):
            forest.insert(
                f"item{i}",
                factory.from_tokens(base | {f"delta{i}"}).hashvalues,
            )
        results = forest.query_all(factory.from_tokens(base).hashvalues)
        assert set(results) == {f"item{i}" for i in range(4)}

    def test_estimated_bytes_grow(self, forest, factory):
        before = forest.estimated_bytes()
        forest.insert("a", factory.from_tokens(_tokens("a", 5)).hashvalues)
        assert forest.estimated_bytes() > before

    def test_recall_of_highly_similar_items(self, factory):
        forest = LSHForest(num_hashes=128, num_trees=16)
        base = _tokens("val", 100)
        forest.insert("stored", factory.from_tokens(base).hashvalues)
        # Insert distractors.
        for i in range(20):
            forest.insert(f"noise{i}", factory.from_tokens(_tokens(f"n{i}", 100)).hashvalues)
        query = factory.from_tokens(set(list(base)[:90]) | _tokens("q", 10))
        results = forest.query(query.hashvalues, k=5)
        assert "stored" in results


class TestTombstoneCompaction:
    """Edge cases of the tombstone/compaction lifecycle inside the trees.

    These are the mutation-path behaviours the incremental-lake oracle
    leans on: removals must be honoured whether the row is flushed or
    still buffered, compaction must be able to empty a tree entirely, and
    a mutated tree must compact to exactly the layout a from-scratch
    build of the surviving items produces.
    """

    def test_remove_from_pending_buffer(self, forest, factory):
        # No query between insert and remove: the row only exists in the
        # pending buffer and must be dropped from there.
        forest.insert("buffered", factory.from_tokens(_tokens("b", 10)).hashvalues)
        for tree in forest._trees:
            assert tree._pending
        forest.remove("buffered")
        assert len(forest) == 0
        assert "buffered" not in forest
        for tree in forest._trees:
            assert not tree._pending
            assert len(tree) == 0
        query = factory.from_tokens(_tokens("b", 10))
        assert forest.query(query.hashvalues, k=5) == []

    def test_remove_then_query_skips_tombstones(self, forest, factory):
        base = _tokens("shared", 30)
        for i in range(4):
            forest.insert(f"item{i}", factory.from_tokens(base | {f"d{i}"}).hashvalues)
        query = factory.from_tokens(base)
        assert set(forest.query_all(query.hashvalues)) == {f"item{i}" for i in range(4)}
        forest.remove("item2")
        # Tombstoned, not yet compacted: queries must not surface the row.
        assert any(tree._dead for tree in forest._trees)
        assert set(forest.query_all(query.hashvalues)) == {"item0", "item1", "item3"}
        assert set(forest.multi_query([query.hashvalues], k=10)[0]) == {
            "item0",
            "item1",
            "item3",
        }

    def test_compact_to_empty(self, forest, factory):
        for i in range(5):
            forest.insert(f"item{i}", factory.from_tokens(_tokens(f"t{i}", 10)).hashvalues)
        forest.query(factory.from_tokens(_tokens("t0", 10)).hashvalues, k=1)  # flush
        for i in range(5):
            forest.remove(f"item{i}")
        assert len(forest) == 0
        for tree in forest._trees:
            tree.compact()
            assert len(tree._items) == 0
            assert tree._dead == 0
            assert tree._keys.shape == (0, tree.key_length)
        assert forest.query(factory.from_tokens(_tokens("t0", 10)).hashvalues, k=5) == []

    def test_compaction_triggers_when_tombstones_dominate(self, forest, factory):
        from repro.lsh.lsh_forest import _MIN_TOMBSTONES_BEFORE_COMPACTION

        count = 2 * _MIN_TOMBSTONES_BEFORE_COMPACTION + 4
        for i in range(count):
            forest.insert(f"item{i}", factory.from_tokens(_tokens(f"t{i}", 10)).hashvalues)
        forest.query(factory.from_tokens(_tokens("t0", 10)).hashvalues, k=1)  # flush
        for i in range(_MIN_TOMBSTONES_BEFORE_COMPACTION + 3):
            forest.remove(f"item{i}")
        # More than _MIN_TOMBSTONES_BEFORE_COMPACTION dead rows and dead
        # outnumbering live: every tree must have compacted itself.
        for tree in forest._trees:
            assert tree._dead == 0
            assert len(tree._items) == count - _MIN_TOMBSTONES_BEFORE_COMPACTION - 3

    def test_mutated_forest_compacts_to_fresh_build_layout(self, factory):
        # Canonical rebuild order: after an arbitrary remove/re-add history
        # the compacted layout must be a pure function of the surviving
        # (key, item) set — bit-identical to a from-scratch build.
        mutated = LSHForest(num_hashes=128, num_trees=8)
        signatures = {
            f"item{i}": factory.from_tokens(_tokens(f"t{i % 4}", 12)).hashvalues
            for i in range(12)
        }
        for key, signature in signatures.items():
            mutated.insert(key, signature)
        mutated.query(signatures["item0"], k=1)  # flush
        for key in ("item1", "item5", "item9"):
            mutated.remove(key)
        mutated.insert("item5", signatures["item5"])  # re-add one survivor

        survivors = {k: v for k, v in signatures.items() if k not in ("item1", "item9")}
        fresh = LSHForest(num_hashes=128, num_trees=8)
        # Insert in a different order: the layout must not depend on history.
        for key in sorted(survivors, reverse=True):
            fresh.insert(key, survivors[key])

        state = mutated.export_state()
        fresh_state = fresh.export_state()
        for tree, fresh_tree in zip(state["trees"], fresh_state["trees"]):
            assert np.array_equal(tree["keys"], fresh_tree["keys"])
            assert tree["items"] == fresh_tree["items"]
