"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.datagen.ground_truth import GroundTruth
from repro.tables.csv_io import write_csv
from repro.tables.table import Table


@pytest.fixture(scope="module")
def generated_corpus_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli_corpus")
    exit_code = main(
        [
            "generate",
            "--kind",
            "real",
            "--output",
            str(directory),
            "--families",
            "4",
            "--tables-per-family",
            "3",
            "--seed",
            "3",
        ]
    )
    assert exit_code == 0
    return directory


@pytest.fixture(scope="module")
def indexed_engine_path(generated_corpus_dir, tmp_path_factory):
    engine_path = tmp_path_factory.mktemp("cli_engine") / "engine.pkl"
    exit_code = main(
        [
            "index",
            "--lake",
            str(generated_corpus_dir / "csv"),
            "--output",
            str(engine_path),
            "--num-hashes",
            "128",
            "--embedding-dimension",
            "32",
        ]
    )
    assert exit_code == 0
    return engine_path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--output", "out"])
        assert args.kind == "real"
        assert args.families == 12

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "--engine", "e.pkl", "--target", "t.csv"])
        assert args.k == 10
        assert not args.joins


class TestGenerate:
    def test_writes_csvs_and_ground_truth(self, generated_corpus_dir):
        csv_files = list((generated_corpus_dir / "csv").glob("*.csv"))
        assert len(csv_files) == 4 * 3
        truth = GroundTruth.from_json(generated_corpus_dir / "ground_truth.json")
        assert truth.table_names
        assert truth.average_answer_size() > 0

    def test_synthetic_kind(self, tmp_path, capsys):
        exit_code = main(
            [
                "generate",
                "--kind",
                "synthetic",
                "--output",
                str(tmp_path / "syn"),
                "--families",
                "3",
                "--tables-per-family",
                "2",
            ]
        )
        assert exit_code == 0
        assert len(list((tmp_path / "syn" / "csv").glob("*.csv"))) == 6


class TestStats:
    def test_stats_prints_table_counts(self, generated_corpus_dir, capsys):
        exit_code = main(["stats", "--lake", str(generated_corpus_dir / "csv")])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "tables" in captured
        assert "12" in captured

    def test_stats_on_empty_directory(self, tmp_path):
        (tmp_path / "empty").mkdir()
        assert main(["stats", "--lake", str(tmp_path / "empty")]) == 1


class TestIndexAndQuery:
    def test_index_persists_engine(self, indexed_engine_path):
        assert indexed_engine_path.exists()
        assert indexed_engine_path.stat().st_size > 0

    def test_index_on_empty_directory(self, tmp_path):
        (tmp_path / "none").mkdir()
        exit_code = main(
            ["index", "--lake", str(tmp_path / "none"), "--output", str(tmp_path / "e.pkl")]
        )
        assert exit_code == 1

    def test_query_returns_ranked_tables(
        self, indexed_engine_path, generated_corpus_dir, tmp_path, capsys
    ):
        target = Table.from_dict(
            "cli_target",
            {
                "Practice": ["Salford Medical Centre", "Bolton Surgery"],
                "City": ["Salford", "Bolton"],
                "Postcode": ["M3 6AF", "BL3 6PY"],
            },
        )
        target_path = write_csv(target, tmp_path / "cli_target.csv")
        exit_code = main(
            [
                "query",
                "--engine",
                str(indexed_engine_path),
                "--target",
                str(target_path),
                "-k",
                "3",
                "--joins",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Top-3 datasets" in captured
        assert "Join paths found" in captured


class TestQueryProtocolFlags:
    @pytest.fixture()
    def target_path(self, tmp_path):
        target = Table.from_dict(
            "cli_api_target",
            {
                "Practice": ["Salford Medical Centre", "Bolton Surgery"],
                "City": ["Salford", "Bolton"],
                "Postcode": ["M3 6AF", "BL3 6PY"],
            },
        )
        return write_csv(target, tmp_path / "cli_api_target.csv")

    def _query(self, indexed_engine_path, target_path, *extra):
        return main(
            [
                "query",
                "--engine",
                str(indexed_engine_path),
                "--target",
                str(target_path),
                "-k",
                "3",
                *extra,
            ]
        )

    def test_json_emits_query_response(
        self, indexed_engine_path, target_path, capsys
    ):
        import json as json_module

        from repro.core.api import QueryResponse

        exit_code = self._query(indexed_engine_path, target_path, "--json")
        captured = capsys.readouterr().out
        assert exit_code == 0
        payload = json_module.loads(captured)
        assert payload["format"] == "d3l.query_response/v1"
        assert payload["mode"] == "table"
        assert payload["results"]
        restored = QueryResponse.from_dict(payload)
        assert restored.to_dict() == payload

    def test_json_honours_explain(self, indexed_engine_path, target_path, capsys):
        import json as json_module

        exit_code = self._query(
            indexed_engine_path, target_path, "--json", "--explain"
        )
        payload = json_module.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["explain"] is True
        assert payload["results"][0]["evidence_distances"]

    def test_evidence_subset_accepted(
        self, indexed_engine_path, target_path, capsys
    ):
        exit_code = self._query(
            indexed_engine_path, target_path, "--evidence", "N,V"
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Top-3 datasets" in captured

    def test_unknown_evidence_rejected(
        self, indexed_engine_path, target_path, capsys
    ):
        exit_code = self._query(
            indexed_engine_path, target_path, "--evidence", "N,bogus"
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "unknown evidence type" in captured.err

    def test_explain_adds_decomposition_column(
        self, indexed_engine_path, target_path, capsys
    ):
        exit_code = self._query(indexed_engine_path, target_path, "--explain")
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "DN=" in captured or "evidence" in captured

    def test_json_with_joins_emits_join_paths(
        self, indexed_engine_path, target_path, capsys
    ):
        """Regression: --json --joins used to be a hard error; now the JSON
        payload carries the join_paths block and round-trips losslessly."""
        import json as json_module

        from repro.core.api import QueryResponse

        exit_code = self._query(
            indexed_engine_path, target_path, "--json", "--joins"
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "cannot be combined" not in captured.err
        payload = json_module.loads(captured.out)
        assert payload["format"] == "d3l.query_response/v1"
        block = payload["join_paths"]
        assert block is not None
        assert isinstance(block["paths"], list)
        assert isinstance(block["truncated"], bool)
        assert isinstance(block["joined_tables"], list)
        restored = QueryResponse.from_dict(payload)
        assert restored.to_dict() == payload

    def test_joins_text_report_from_single_query(
        self, indexed_engine_path, target_path, capsys
    ):
        exit_code = self._query(indexed_engine_path, target_path, "--joins")
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "Join paths found" in captured


class TestQueryErrorPaths:
    """Missing/corrupt inputs print one-line errors, not tracebacks."""

    def test_missing_engine_path(self, tmp_path, capsys):
        target = write_csv(
            Table.from_dict("t", {"a": ["x", "y"]}), tmp_path / "t.csv"
        )
        exit_code = main(
            ["query", "--engine", str(tmp_path / "missing.pkl"), "--target", str(target)]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "no persisted engine" in captured.err
        assert "Traceback" not in captured.err

    def test_corrupt_engine_file(self, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.pkl"
        corrupt.write_bytes(b"this is not a pickle")
        target = write_csv(
            Table.from_dict("t", {"a": ["x", "y"]}), tmp_path / "t.csv"
        )
        exit_code = main(
            ["query", "--engine", str(corrupt), "--target", str(target)]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert captured.err.strip()
        assert "Traceback" not in captured.err

    def test_missing_target_csv(self, indexed_engine_path, tmp_path, capsys):
        exit_code = main(
            [
                "query",
                "--engine",
                str(indexed_engine_path),
                "--target",
                str(tmp_path / "missing.csv"),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert captured.err.strip()
        assert "Traceback" not in captured.err

    def test_empty_target_csv(self, indexed_engine_path, tmp_path, capsys):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        exit_code = main(
            ["query", "--engine", str(indexed_engine_path), "--target", str(empty)]
        )
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "empty" in captured.err

    def test_stats_missing_lake_directory(self, tmp_path, capsys):
        exit_code = main(["stats", "--lake", str(tmp_path / "nowhere")])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert captured.err.strip()
        assert "Traceback" not in captured.err

    def test_serve_missing_engine_path(self, tmp_path, capsys):
        exit_code = main(["serve", "--engine", str(tmp_path / "missing.pkl")])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "no persisted engine" in captured.err


class TestQueryWorkers:
    def test_parallel_query_is_leak_free_and_matches_serial(
        self, indexed_engine_path, tmp_path, capsys
    ):
        """`query --workers 2` spins a shared-memory snapshot + process pool;
        the session close in the CLI (and the suite-wide autouse leak
        fixture) must leave zero segments and child processes behind."""
        import json as json_module

        target = write_csv(
            Table.from_dict(
                "cli_workers_target",
                {
                    "Practice": ["Salford Medical Centre", "Bolton Surgery"],
                    "City": ["Salford", "Bolton"],
                    "Postcode": ["M3 6AF", "BL3 6PY"],
                },
            ),
            tmp_path / "cli_workers_target.csv",
        )
        args = ["--engine", str(indexed_engine_path), "--target", str(target), "-k", "3", "--json"]
        assert main(["query", *args, "--workers", "2"]) == 0
        parallel = json_module.loads(capsys.readouterr().out)
        assert main(["query", *args]) == 0
        serial = json_module.loads(capsys.readouterr().out)
        assert parallel["results"] == serial["results"]


class TestServeCommand:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--engine", "e.pkl"])
        assert args.host == "127.0.0.1"
        assert args.port == 8080
        assert args.workers == 4

    def test_serve_rejects_nonpositive_workers(self, indexed_engine_path, capsys):
        exit_code = main(
            ["serve", "--engine", str(indexed_engine_path), "--workers", "0"]
        )
        assert exit_code == 1
        assert "positive" in capsys.readouterr().err

    def test_serve_rejects_nonpositive_cache_size(self, indexed_engine_path, capsys):
        exit_code = main(
            ["serve", "--engine", str(indexed_engine_path), "--cache-size", "-3"]
        )
        assert exit_code == 1
        assert "positive" in capsys.readouterr().err

    def test_serve_rejects_out_of_range_port(self, indexed_engine_path, capsys):
        exit_code = main(
            ["serve", "--engine", str(indexed_engine_path), "--port", "70000"]
        )
        assert exit_code == 1
        assert "--port" in capsys.readouterr().err

    def test_serve_backend_flag(self):
        args = build_parser().parse_args(["serve", "--engine", "e.pkl"])
        assert args.backend == "thread"
        args = build_parser().parse_args(
            ["serve", "--engine", "e.pkl", "--backend", "process"]
        )
        assert args.backend == "process"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--engine", "e.pkl", "--backend", "quantum"]
            )

    def test_serve_answers_query_and_shuts_down_cleanly(
        self, indexed_engine_path, tmp_path, capsys
    ):
        """The tiny-lake serving smoke: start, one query over HTTP, SIGINT,
        clean exit — leak-freedom enforced by the autouse fixture."""
        import http.client
        import json as json_module
        import os
        import signal
        import socket
        import threading
        import time

        from repro.core.api import QueryRequest, query_request_to_wire
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        target = Table.from_dict(
            "cli_serve_target",
            {
                "Practice": ["Salford Medical Centre", "Bolton Surgery"],
                "City": ["Salford", "Bolton"],
                "Postcode": ["M3 6AF", "BL3 6PY"],
            },
        )
        wire = query_request_to_wire(QueryRequest(target=target, k=3))
        outcome = {}

        def client():
            deadline = time.monotonic() + 30.0
            try:
                while time.monotonic() < deadline:
                    try:
                        connection = http.client.HTTPConnection(
                            "127.0.0.1", port, timeout=5
                        )
                        connection.request("GET", "/healthz")
                        if connection.getresponse().status == 200:
                            break
                    except OSError:
                        time.sleep(0.05)
                    finally:
                        connection.close()
                else:
                    outcome["error"] = "server never became healthy"
                    return
                connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
                try:
                    connection.request(
                        "POST",
                        "/query",
                        body=json_module.dumps(wire),
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    outcome["status"] = response.status
                    outcome["payload"] = json_module.loads(response.read())
                finally:
                    connection.close()
            finally:
                # Process-directed (not raise_signal, which would target this
                # client thread): the serve loop polls for pending handlers.
                os.kill(os.getpid(), signal.SIGINT)

        thread = threading.Thread(target=client)
        thread.start()
        exit_code = main(
            [
                "serve",
                "--engine",
                str(indexed_engine_path),
                "--port",
                str(port),
                "--workers",
                "2",
            ]
        )
        thread.join(timeout=30)
        assert not thread.is_alive()
        captured = capsys.readouterr()
        assert outcome.get("error") is None
        assert exit_code == 0
        assert "Serving" in captured.out
        assert "Shut down cleanly." in captured.out
        assert outcome["status"] == 200
        payload = outcome["payload"]
        assert payload["format"] == "d3l.query_response/v1"
        assert payload["results"]
        # oracle: the served answer equals an in-process session, bit for bit
        from repro.core.api import DiscoverySession
        from repro.core.persistence import load_engine

        with DiscoverySession(load_engine(indexed_engine_path)) as session:
            expected = session.submit(
                QueryRequest(target=target, k=3)
            ).truncated().to_dict()
        assert payload == expected
