"""Tests for plain-text result rendering."""

from repro.evaluation.reporting import format_series_table, render_rows


class TestRenderRows:
    def test_empty_rows(self):
        assert "(no rows)" in render_rows([], title="empty")

    def test_header_and_rows_present(self):
        rows = [{"system": "d3l", "precision": 0.75}, {"system": "tus", "precision": 0.5}]
        rendered = render_rows(rows, title="Comparison")
        assert "Comparison" in rendered
        assert "system" in rendered and "precision" in rendered
        assert "d3l" in rendered and "tus" in rendered
        assert "0.750" in rendered

    def test_missing_values_rendered_as_dash(self):
        rows = [{"a": 1, "b": None}]
        assert "-" in render_rows(rows)

    def test_column_alignment(self):
        rows = [{"name": "a", "value": 1}, {"name": "longer_name", "value": 2}]
        rendered = render_rows(rows)
        lines = rendered.splitlines()
        assert len({len(line) for line in lines[1:]}) <= 2


class TestFormatSeriesTable:
    def test_empty(self):
        assert "(no rows)" in format_series_table([], "system", "k", "precision")

    def test_pivot_by_group(self):
        rows = [
            {"system": "d3l", "k": 5, "precision": 0.9},
            {"system": "d3l", "k": 10, "precision": 0.8},
            {"system": "tus", "k": 5, "precision": 0.6},
            {"system": "tus", "k": 10, "precision": 0.5},
        ]
        rendered = format_series_table(rows, group_by="system", x="k", y="precision")
        assert "k=5" in rendered and "k=10" in rendered
        assert rendered.count("d3l") == 1
        assert rendered.count("tus") == 1

    def test_missing_combination_rendered_as_dash(self):
        rows = [
            {"system": "d3l", "k": 5, "precision": 0.9},
            {"system": "tus", "k": 10, "precision": 0.5},
        ]
        rendered = format_series_table(rows, group_by="system", x="k", y="precision")
        assert "-" in rendered
