"""Tests for value typing and numeric coercion."""

import math

import pytest

from repro.tables.types import ValueType, coerce_numeric, infer_type, is_missing


class TestIsMissing:
    def test_none_is_missing(self):
        assert is_missing(None)

    def test_empty_string_is_missing(self):
        assert is_missing("")

    def test_whitespace_is_missing(self):
        assert is_missing("   ")

    def test_na_tokens_are_missing(self):
        for token in ["na", "N/A", "NaN", "null", "NONE", "-", "--"]:
            assert is_missing(token), token

    def test_nan_float_is_missing(self):
        assert is_missing(float("nan"))

    def test_regular_string_is_not_missing(self):
        assert not is_missing("Manchester")

    def test_zero_is_not_missing(self):
        assert not is_missing(0)
        assert not is_missing("0")

    def test_dash_inside_value_is_not_missing(self):
        assert not is_missing("08:00-18:00")


class TestCoerceNumeric:
    def test_plain_integer(self):
        assert coerce_numeric("42") == 42.0

    def test_plain_float(self):
        assert coerce_numeric("3.14") == pytest.approx(3.14)

    def test_negative_number(self):
        assert coerce_numeric("-7.5") == pytest.approx(-7.5)

    def test_thousands_separator(self):
        assert coerce_numeric("1,202") == 1202.0

    def test_percentage_suffix(self):
        assert coerce_numeric("85%") == 85.0

    def test_surrounding_whitespace(self):
        assert coerce_numeric("  19 ") == 19.0

    def test_text_returns_none(self):
        assert coerce_numeric("Salford") is None

    def test_missing_returns_none(self):
        assert coerce_numeric("") is None
        assert coerce_numeric(None) is None
        assert coerce_numeric("n/a") is None

    def test_boolean_is_not_numeric(self):
        assert coerce_numeric(True) is None

    def test_native_numbers_pass_through(self):
        assert coerce_numeric(7) == 7.0
        assert coerce_numeric(2.5) == 2.5

    def test_nan_returns_none(self):
        assert coerce_numeric(float("nan")) is None

    def test_postcode_is_not_numeric(self):
        assert coerce_numeric("M3 6AF") is None


class TestInferType:
    def test_all_numbers_is_numeric(self):
        assert infer_type(["1", "2", "3.5"]) is ValueType.NUMERIC

    def test_all_text_is_text(self):
        assert infer_type(["Salford", "Bolton", "Bury"]) is ValueType.TEXT

    def test_mostly_numeric_with_stray_text(self):
        values = ["1", "2", "3", "4", "5", "6", "7", "8", "9", "footnote"]
        assert infer_type(values) is ValueType.NUMERIC

    def test_half_numeric_is_text(self):
        assert infer_type(["1", "2", "a", "b"]) is ValueType.TEXT

    def test_empty_extent(self):
        assert infer_type([]) is ValueType.EMPTY

    def test_all_missing_extent(self):
        assert infer_type([None, "", "n/a"]) is ValueType.EMPTY

    def test_missing_values_ignored(self):
        assert infer_type(["1", None, "2", ""]) is ValueType.NUMERIC

    def test_alphanumeric_codes_are_text(self):
        assert infer_type(["BT7 1JL", "M3 6AF", "BL3 6PY"]) is ValueType.TEXT
