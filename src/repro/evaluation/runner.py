"""One-shot evaluation runner: regenerate every experiment at a chosen scale.

The benchmark suite under ``benchmarks/`` is the canonical way to reproduce
the paper's tables and figures (it also times each experiment).  This module
provides the same sweep as a plain function/CLI so that it can be driven from
scripts or notebooks without pytest::

    python -m repro.evaluation.runner --scale small --output ./results

Three scales are provided; they only differ in corpus size, answer-size
sweeps and the number of query targets averaged per point.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.config import D3LConfig
from repro.datagen.real_benchmark import RealBenchmarkConfig, generate_real_benchmark
from repro.datagen.synthetic_benchmark import (
    SyntheticBenchmarkConfig,
    generate_synthetic_benchmark,
)
from repro.evaluation.experiments import (
    build_engine_suite,
    experiment_effectiveness,
    experiment_example_distances,
    experiment_indexing_time,
    experiment_individual_evidence,
    experiment_join_impact,
    experiment_repository_stats,
    experiment_search_time,
    experiment_session_serving,
    experiment_space_overhead,
    experiment_subject_attribute_accuracy,
    experiment_weight_training,
)
from repro.evaluation.reporting import render_rows


@dataclass
class RunnerScale:
    """Corpus and sweep sizes for one evaluation scale."""

    name: str
    base_tables: int
    tables_per_base: int
    families: int
    tables_per_family: int
    synthetic_ks: List[int]
    real_ks: List[int]
    num_targets: int
    indexing_table_counts: List[int]


SCALES: Dict[str, RunnerScale] = {
    "smoke": RunnerScale(
        name="smoke",
        base_tables=6,
        tables_per_base=4,
        families=6,
        tables_per_family=4,
        synthetic_ks=[3, 6, 10],
        real_ks=[3, 6, 10],
        num_targets=5,
        indexing_table_counts=[12, 24],
    ),
    "small": RunnerScale(
        name="small",
        base_tables=12,
        tables_per_base=6,
        families=12,
        tables_per_family=6,
        synthetic_ks=[5, 10, 20, 30],
        real_ks=[5, 10, 20, 30],
        num_targets=10,
        indexing_table_counts=[24, 48, 72],
    ),
    "full": RunnerScale(
        name="full",
        base_tables=16,
        tables_per_base=8,
        families=16,
        tables_per_family=8,
        synthetic_ks=[5, 10, 20, 40, 60, 80],
        real_ks=[5, 10, 20, 30, 40, 50],
        num_targets=12,
        indexing_table_counts=[32, 64, 96, 128],
    ),
}


@dataclass
class ExperimentReport:
    """Results of a full evaluation run, keyed by experiment identifier."""

    scale: str
    sections: Dict[str, List[Dict[str, object]]] = field(default_factory=dict)
    wall_clock_seconds: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, rows: List[Dict[str, object]], seconds: float) -> None:
        """Record one experiment's rows and wall-clock time."""
        self.sections[name] = rows
        self.wall_clock_seconds[name] = seconds

    def render(self) -> str:
        """Render every section as aligned text tables."""
        parts = [f"# Evaluation run (scale: {self.scale})"]
        for name, rows in self.sections.items():
            parts.append("")
            parts.append(render_rows(rows, title=name))
            parts.append(f"(wall clock: {self.wall_clock_seconds[name]:.1f}s)")
        return "\n".join(parts)

    def save(self, directory: Path) -> List[Path]:
        """Write the rendered report and a JSON dump under ``directory``."""
        directory.mkdir(parents=True, exist_ok=True)
        written = []
        text_path = directory / f"report_{self.scale}.txt"
        text_path.write_text(self.render() + "\n", encoding="utf-8")
        written.append(text_path)
        json_path = directory / f"report_{self.scale}.json"
        json_path.write_text(
            json.dumps(
                {"scale": self.scale, "sections": self.sections, "seconds": self.wall_clock_seconds},
                indent=2,
                default=str,
            ),
            encoding="utf-8",
        )
        written.append(json_path)
        return written


def run_all_experiments(
    scale: str = "small",
    config: Optional[D3LConfig] = None,
    seed: int = 0,
    query_workers: Optional[int] = None,
) -> ExperimentReport:
    """Run every experiment of the paper at the requested scale.

    ``query_workers > 1`` runs the batched-engine timings of the search-time
    experiments with that many worker processes fanning out each query's
    target attributes (answers are identical regardless of the setting).
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    sizes = SCALES[scale]
    config = config or D3LConfig(num_hashes=128, embedding_dimension=48)
    report = ExperimentReport(scale=scale)

    def timed(name, func, *args, **kwargs):
        start = time.perf_counter()
        rows = func(*args, **kwargs)
        report.add(name, rows if isinstance(rows, list) else [rows], time.perf_counter() - start)
        return rows

    synthetic = generate_synthetic_benchmark(
        SyntheticBenchmarkConfig(
            num_base_tables=sizes.base_tables,
            tables_per_base=sizes.tables_per_base,
            seed=seed + 1,
        )
    )
    real = generate_real_benchmark(
        RealBenchmarkConfig(
            num_families=sizes.families,
            tables_per_family=sizes.tables_per_family,
            seed=seed + 2,
        )
    )

    timed("figure2_repository_stats", experiment_repository_stats,
          {"synthetic": synthetic, "smaller_real": real})
    timed("table1_example_distances", experiment_example_distances, config)

    synthetic_suite = build_engine_suite(synthetic, config=config, seed=seed)
    real_suite = build_engine_suite(real, config=config, seed=seed)

    timed(
        "figure3_individual_evidence",
        experiment_individual_evidence,
        real_suite,
        ks=sizes.real_ks,
        num_targets=sizes.num_targets,
        seed=seed,
    )
    timed(
        "figure4_synthetic_effectiveness",
        experiment_effectiveness,
        synthetic_suite,
        ks=sizes.synthetic_ks,
        num_targets=sizes.num_targets,
        seed=seed,
    )
    timed(
        "figure5_real_effectiveness",
        experiment_effectiveness,
        real_suite,
        ks=sizes.real_ks,
        num_targets=sizes.num_targets,
        seed=seed,
    )
    timed(
        "figure6a_indexing_time",
        experiment_indexing_time,
        sizes.indexing_table_counts,
        config=config,
        seed=seed,
    )
    timed(
        "figure6b_search_time_synthetic",
        experiment_search_time,
        synthetic_suite,
        ks=sizes.synthetic_ks,
        num_targets=max(3, sizes.num_targets // 2),
        seed=seed,
        query_workers=query_workers,
    )
    timed(
        "figure6c_search_time_real",
        experiment_search_time,
        real_suite,
        ks=sizes.real_ks,
        num_targets=max(3, sizes.num_targets // 2),
        seed=seed,
        query_workers=query_workers,
    )
    timed(
        "session_serving",
        experiment_session_serving,
        real_suite,
        k=max(sizes.real_ks),
        num_targets=max(3, sizes.num_targets // 2),
        seed=seed,
    )
    timed(
        "table2_space_overhead",
        experiment_space_overhead,
        {"synthetic": synthetic_suite, "smaller_real": real_suite},
    )
    timed(
        "figure7_synthetic_joins",
        experiment_join_impact,
        synthetic_suite,
        ks=sizes.synthetic_ks[:4],
        num_targets=sizes.num_targets,
        seed=seed,
    )
    timed(
        "figure8_real_joins",
        experiment_join_impact,
        real_suite,
        ks=sizes.real_ks[:4],
        num_targets=sizes.num_targets,
        seed=seed,
    )
    timed(
        "weights_classifier",
        experiment_weight_training,
        synthetic,
        real,
        config=config,
        num_targets=sizes.num_targets,
        seed=seed,
    )
    timed(
        "subject_attribute_accuracy",
        experiment_subject_attribute_accuracy,
        real,
        folds=min(10, max(2, len(real.lake) // 4)),
        seed=seed,
    )
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: run all experiments and write the report."""
    parser = argparse.ArgumentParser(description="Run every D3L reproduction experiment")
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument("--output", default="./experiment_results")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--query-workers", type=int, default=None,
                        help="worker processes for the batched query fan-out "
                             "in the search-time experiments")
    args = parser.parse_args(argv)

    report = run_all_experiments(
        scale=args.scale, seed=args.seed, query_workers=args.query_workers
    )
    written = report.save(Path(args.output))
    print(report.render())
    print("\nWritten:")
    for path in written:
        print(f"  {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console
    raise SystemExit(main())
