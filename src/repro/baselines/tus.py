"""Table Union Search (TUS) baseline — Nargesian, Zhu, Pu, Miller, PVLDB 2018.

TUS measures attribute unionability from instance values only, with three
signals:

* *set unionability* — overlap of the raw value-token sets (MinHash / LSH);
* *semantic unionability* — overlap of the YAGO class annotations of the
  value tokens (here: the synthetic :class:`~repro.baselines.knowledge_base.
  KnowledgeBase`);
* *natural-language unionability* — cosine similarity of embedding vectors
  built from the value tokens.

Per attribute pair the ensemble takes the maximum of the three scores, and
tables are ranked by a max-score aggregation over their aligned attributes —
the behaviour the D3L paper contrasts with its weighted multi-evidence
aggregation.  Numeric attributes are ignored entirely, as the paper notes
("they are completely ignored by TUS").

The original implementation is not public; as in the paper, this is a
re-implementation from the TUS paper's description, sharing the same LSH
substrate (LSH Forest, threshold 0.7, MinHash size 256) as the D3L engine so
that efficiency comparisons reflect algorithmic differences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from repro.baselines.base import Alignment, RankedAnswer, RankedTable
from repro.baselines.knowledge_base import KnowledgeBase
from repro.core.config import D3LConfig
from repro.lake.datalake import AttributeRef, DataLake
from repro.lsh.lsh_forest import LSHForest
from repro.lsh.minhash import MinHash, MinHashFactory, exact_jaccard
from repro.lsh.random_projection import (
    RandomProjection,
    RandomProjectionFactory,
    exact_cosine_similarity,
)
from repro.tables.column import Column
from repro.tables.table import Table
from repro.text.embeddings import HashingSubwordEmbedding, WordEmbeddingModel, aggregate_vectors
from repro.text.token_stats import value_token_set


@dataclass
class _TUSAttribute:
    """Per-attribute state stored by the TUS indexer.

    The raw token and class sets (and the embedding vector) are kept so the
    unionability *measures* can be computed exactly once the LSH indexes have
    done their blocking — in TUS "the index is only a blocking mechanism"
    and the actual measures are evaluated on the data, which is where its
    query-time cost comes from.  These raw sets are re-derivable from the
    lake contents and are therefore not counted as index space in Table II.
    """

    ref: AttributeRef
    tokens: frozenset
    classes: frozenset
    embedding: np.ndarray
    set_signature: Optional[MinHash]
    semantic_signature: Optional[MinHash]
    embedding_signature: Optional[RandomProjection]

    @property
    def token_set_size(self) -> int:
        """Number of distinct value tokens."""
        return len(self.tokens)

    @property
    def class_set_size(self) -> int:
        """Number of distinct knowledge-base classes."""
        return len(self.classes)


class TableUnionSearch:
    """The TUS unionability search baseline."""

    def __init__(
        self,
        config: Optional[D3LConfig] = None,
        knowledge_base: Optional[KnowledgeBase] = None,
        embedding_model: Optional[WordEmbeddingModel] = None,
    ) -> None:
        self.config = config or D3LConfig()
        self.knowledge_base = knowledge_base or KnowledgeBase()
        self.embedding_model = embedding_model or HashingSubwordEmbedding(
            dimension=self.config.embedding_dimension, seed=self.config.seed
        )
        cfg = self.config
        self._minhash_factory = MinHashFactory(num_perm=cfg.num_hashes, seed=cfg.seed + 100)
        self._projection_factory = RandomProjectionFactory(
            num_bits=cfg.num_hashes, seed=cfg.seed + 101
        )
        self._set_forest = LSHForest(cfg.num_hashes, cfg.num_trees, seed=cfg.seed + 102)
        self._semantic_forest = LSHForest(cfg.num_hashes, cfg.num_trees, seed=cfg.seed + 103)
        self._embedding_forest = LSHForest(cfg.num_hashes, cfg.num_trees, seed=cfg.seed + 104)
        self._attributes: Dict[AttributeRef, _TUSAttribute] = {}
        self._table_names: List[str] = []

    # ------------------------------------------------------------------ #
    # indexing
    # ------------------------------------------------------------------ #
    def _profile_column(self, table_name: str, column: Column) -> Optional[_TUSAttribute]:
        """Profile one attribute; numeric attributes are not indexed."""
        if column.is_numeric:
            return None
        ref = AttributeRef(table_name, column.name)
        values = column.non_missing
        tokens = value_token_set(values)
        if not tokens:
            return None

        set_signature = self._minhash_factory.from_tokens(tokens)

        # Semantic evidence: one knowledge-base lookup per value (per token),
        # the cost the D3L paper identifies as TUS's bottleneck.
        classes = self.knowledge_base.annotate_extent(values)
        semantic_signature = (
            self._minhash_factory.from_tokens(classes) if classes else None
        )

        vectors = [self.embedding_model.vector(token) for token in sorted(tokens)]
        embedding = aggregate_vectors(vectors, self.embedding_model.dimension)
        embedding_signature = (
            self._projection_factory.from_vector(embedding) if np.any(embedding) else None
        )

        return _TUSAttribute(
            ref=ref,
            tokens=frozenset(tokens),
            classes=frozenset(classes),
            embedding=embedding,
            set_signature=set_signature,
            semantic_signature=semantic_signature,
            embedding_signature=embedding_signature,
        )

    def index_table(self, table: Table) -> None:
        """Profile and index every textual attribute of ``table``."""
        self._table_names.append(table.name)
        for column in table.columns:
            profile = self._profile_column(table.name, column)
            if profile is None:
                continue
            self._attributes[profile.ref] = profile
            if profile.set_signature is not None:
                self._set_forest.insert(profile.ref, profile.set_signature.hashvalues)
            if profile.semantic_signature is not None:
                self._semantic_forest.insert(profile.ref, profile.semantic_signature.hashvalues)
            if profile.embedding_signature is not None:
                self._embedding_forest.insert(profile.ref, profile.embedding_signature.bits)

    def index_lake(self, lake: DataLake) -> None:
        """Index every table of ``lake``."""
        for table in lake:
            self.index_table(table)

    @property
    def attribute_count(self) -> int:
        """Number of indexed attributes."""
        return len(self._attributes)

    def estimated_bytes(self) -> int:
        """Approximate footprint of the three indexes (Table II accounting)."""
        return (
            self._set_forest.estimated_bytes()
            + self._semantic_forest.estimated_bytes()
            + self._embedding_forest.estimated_bytes()
        )

    # ------------------------------------------------------------------ #
    # querying
    # ------------------------------------------------------------------ #
    def _attribute_unionability(
        self, query: _TUSAttribute, candidate: _TUSAttribute
    ) -> float:
        """Ensemble unionability of an attribute pair: max of the three measures.

        The measures are computed exactly on the stored token sets, class
        sets and embedding vectors (the LSH forests only block candidates),
        mirroring the original system's query-time behaviour and cost.
        """
        scores = [0.0]
        if query.tokens and candidate.tokens:
            scores.append(exact_jaccard(query.tokens, candidate.tokens))
        if query.classes and candidate.classes:
            scores.append(exact_jaccard(query.classes, candidate.classes))
        if np.any(query.embedding) and np.any(candidate.embedding):
            similarity = exact_cosine_similarity(query.embedding, candidate.embedding)
            scores.append(min(1.0, max(0.0, similarity)))
        return max(scores)

    def query(self, target: Table, k: int, exclude_self: bool = True) -> RankedAnswer:
        """Rank lake tables by unionability with ``target``.

        Candidate attributes are retrieved from the three LSH forests; every
        candidate pair is then scored with the full ensemble (the paper notes
        that in TUS "the index is only a blocking mechanism" with significant
        post-lookup computation).  Tables are ranked by the maximum
        unionability score over their aligned attributes.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        exclude_table = target.name if exclude_self else None
        pool = self.config.candidate_pool_size(k)

        table_scores: Dict[str, float] = {}
        table_alignments: Dict[str, Dict[str, Alignment]] = {}

        for column in target.columns:
            query_profile = self._profile_column(target.name, column)
            if query_profile is None:
                continue
            candidates: Set[AttributeRef] = set()
            if query_profile.set_signature is not None:
                candidates.update(
                    self._set_forest.query(query_profile.set_signature.hashvalues, pool)
                )
            if query_profile.semantic_signature is not None:
                candidates.update(
                    self._semantic_forest.query(
                        query_profile.semantic_signature.hashvalues, pool
                    )
                )
            if query_profile.embedding_signature is not None:
                candidates.update(
                    self._embedding_forest.query(query_profile.embedding_signature.bits, pool)
                )

            for ref in candidates:
                if exclude_table is not None and ref.table == exclude_table:
                    continue
                candidate = self._attributes.get(ref)
                if candidate is None:
                    continue
                score = self._attribute_unionability(query_profile, candidate)
                if score <= 0.0:
                    continue
                alignment = Alignment(
                    target_attribute=column.name, source=ref, score=score
                )
                alignments = table_alignments.setdefault(ref.table, {})
                existing = alignments.get(column.name)
                if existing is None or existing.score < score:
                    alignments[column.name] = alignment
                table_scores[ref.table] = max(table_scores.get(ref.table, 0.0), score)

        results = [
            RankedTable(
                table_name=table_name,
                score=score,
                alignments=list(table_alignments.get(table_name, {}).values()),
            )
            for table_name, score in table_scores.items()
        ]
        results.sort(key=lambda result: (-result.score, result.table_name))
        return RankedAnswer(target_name=target.name, requested_k=k, results=results)
