"""Property-based tests for the text feature extractors."""

from hypothesis import given, settings, strategies as st

from repro.text.qgrams import name_qgrams, qgrams
from repro.text.regex_format import format_string
from repro.text.token_stats import informative_and_frequent_tokens, value_token_set
from repro.text.tokenizer import split_parts, tokenize

printable_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=60
)
value_lists = st.lists(printable_text, min_size=0, max_size=15)


class TestTokenizerProperties:
    @given(printable_text)
    @settings(max_examples=100, deadline=None)
    def test_tokens_are_lowercase_alphanumeric(self, value):
        for token in tokenize(value):
            assert token == token.lower()
            assert token.isalnum()

    @given(printable_text)
    @settings(max_examples=100, deadline=None)
    def test_parts_cover_no_empty_strings(self, value):
        assert all(part.strip() for part in split_parts(value))

    @given(printable_text)
    @settings(max_examples=100, deadline=None)
    def test_tokenize_idempotent_on_joined_tokens(self, value):
        tokens = tokenize(value)
        assert tokenize(" ".join(tokens)) == tokens


class TestQgramProperties:
    @given(st.text(alphabet="abcdefghijklmnop", min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_qgram_count_bounded_by_length(self, text):
        grams = qgrams(text, 4)
        assert 1 <= len(grams) <= max(1, len(text))

    @given(st.text(alphabet="abcdefghijklmnop ", max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_name_qgrams_case_insensitive(self, name):
        assert name_qgrams(name) == name_qgrams(name.upper())

    @given(st.text(alphabet="abcdefghijklmnop", min_size=4, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_every_gram_is_substring(self, text):
        for gram in qgrams(text, 4):
            assert gram in text


class TestFormatProperties:
    @given(printable_text)
    @settings(max_examples=150, deadline=None)
    def test_format_string_uses_primitive_alphabet(self, value):
        rendered = format_string(value)
        assert set(rendered) <= set("CULNAP+")

    @given(printable_text)
    @settings(max_examples=150, deadline=None)
    def test_format_string_never_repeats_symbol_adjacently(self, value):
        rendered = format_string(value)
        compact = rendered.replace("+", "")
        assert all(a != b for a, b in zip(compact, compact[1:])) or len(compact) <= 1

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_lowercase_words_have_format_l(self, word):
        assert format_string(word) == "L"


class TestTokenStatsProperties:
    @given(value_lists)
    @settings(max_examples=60, deadline=None)
    def test_tset_is_subset_of_all_tokens(self, values):
        tset, embedding_tokens = informative_and_frequent_tokens(values)
        all_tokens = value_token_set(values)
        assert tset <= all_tokens
        assert embedding_tokens <= all_tokens

    @given(value_lists)
    @settings(max_examples=60, deadline=None)
    def test_non_empty_values_with_tokens_produce_tset(self, values):
        all_tokens = value_token_set(values)
        tset, _ = informative_and_frequent_tokens(values)
        assert bool(tset) == bool(all_tokens)
