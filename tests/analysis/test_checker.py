"""Driver/CLI behavior of ``repro check``: exit codes, output, wiring.

The crucial acceptance test lives here: the shipped tree is clean under
``--strict`` (exit 0), and a seeded violation in an otherwise identical
tree flips the exit code to 1 — which is exactly how tier-1 (through
``bench_smoke --quick``) turns red on a regression.
"""

import textwrap
from pathlib import Path

from repro.analysis.checker import iter_python_files, main, run_check
from repro.cli import main as cli_main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def write_tree(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


_VIOLATING = {
    "core/parallel.py": """
    def shard(tables):
        return [name for name in set(tables)]
    """
}

_CLEAN = {
    "core/parallel.py": """
    def shard(tables):
        return [name for name in sorted(set(tables))]
    """
}


class TestExitCodes:
    def test_shipped_tree_is_strict_clean(self):
        assert main(["--strict", "--lint", str(REPO_SRC)]) == 0

    def test_seeded_violation_turns_strict_red(self, tmp_path, capsys):
        root = write_tree(tmp_path, _VIOLATING)
        assert main(["--strict", str(root)]) == 1
        out = capsys.readouterr()
        assert "R2" in out.out
        assert "1 problem(s)" in out.err

    def test_violations_report_without_strict_exits_zero(self, tmp_path, capsys):
        root = write_tree(tmp_path, _VIOLATING)
        assert main([str(root)]) == 0
        assert "R2" in capsys.readouterr().out

    def test_clean_tree_exits_zero_silently(self, tmp_path, capsys):
        root = write_tree(tmp_path, _CLEAN)
        assert main(["--strict", str(root)]) == 0
        assert capsys.readouterr().out == ""

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nowhere")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_select_limits_rules(self, tmp_path):
        root = write_tree(tmp_path, _VIOLATING)
        assert main(["--strict", "--select", "R3,R4", str(root)]) == 0
        assert main(["--strict", "--select", "r2", str(root)]) == 1

    def test_list_rules_prints_the_table(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("R1", "R2", "R3", "R4", "R5"):
            assert code in out
        assert "scope:" in out


class TestCliWiring:
    def test_repro_check_subcommand(self, tmp_path, capsys):
        root = write_tree(tmp_path, _VIOLATING)
        assert cli_main(["check", "--strict", str(root)]) == 1
        assert "R2" in capsys.readouterr().out
        assert cli_main(["check", "--strict", str(write_tree(tmp_path / "ok", _CLEAN))]) == 0

    def test_repro_check_list_rules(self, capsys):
        assert cli_main(["check", "--list-rules"]) == 0
        assert "determinism" in capsys.readouterr().out


class TestFileWalking:
    def test_iter_python_files_dedups_and_sorts(self, tmp_path):
        root = write_tree(
            tmp_path,
            {"pkg/b.py": "x = 1\n", "pkg/a.py": "y = 2\n", "pkg/data.txt": "no\n"},
        )
        files = iter_python_files([root, root / "pkg" / "a.py"])
        names = [path.name for path in files]
        assert names == ["a.py", "b.py"]

    def test_unparseable_files_are_skipped(self, tmp_path):
        root = write_tree(tmp_path, _CLEAN)
        (root / "core" / "broken.py").write_text("def nope(:\n")
        assert run_check([root]) == []
