"""Section III-C — subject-attribute classifier accuracy (10-fold CV).

The paper builds a supervised subject-attribute detector in the style of
Venetis et al. and reports an average accuracy of ~89% under 10-fold
cross-validation on 350 labelled data.gov.uk tables.  This benchmark runs the
same protocol over the generated labelled corpus.
"""

from conftest import run_once

from repro.evaluation.experiments import experiment_subject_attribute_accuracy


def test_subject_attribute_cross_validation(benchmark, record_rows, real_corpus):
    result = run_once(
        benchmark,
        experiment_subject_attribute_accuracy,
        real_corpus,
        folds=10,
        seed=13,
    )
    rows = [
        {
            "labelled_tables": result["tables"],
            "folds": result["folds"],
            "mean_accuracy": result["mean_accuracy"],
        }
    ]
    record_rows(
        "subject_attribute_accuracy",
        rows,
        "Section III-C: subject-attribute classifier 10-fold CV accuracy",
    )

    assert result["tables"] >= 50
    # The paper reports ~89%; require comfortably-above-chance accuracy here.
    assert result["mean_accuracy"] >= 0.7
