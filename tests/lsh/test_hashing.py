"""Tests for the hashing primitives."""

import numpy as np
import pytest

from repro.lsh.hashing import HashFamily, MAX_HASH, hash_token, hash_tokens, stable_uint64


class TestHashToken:
    def test_deterministic(self):
        assert hash_token("salford") == hash_token("salford")

    def test_seed_changes_hash(self):
        assert hash_token("salford", seed=1) != hash_token("salford", seed=2)

    def test_different_tokens_differ(self):
        assert hash_token("salford") != hash_token("bolton")

    def test_within_32_bits(self):
        assert 0 <= hash_token("anything") <= int(MAX_HASH)

    def test_unicode_tokens_are_hashable(self):
        assert hash_token("café") != hash_token("cafe")


class TestHashTokens:
    def test_deduplicates(self):
        values = hash_tokens(["a", "a", "b"])
        assert values.shape == (2,)

    def test_empty_input(self):
        assert hash_tokens([]).shape == (0,)

    def test_order_independent_content(self):
        first = set(hash_tokens(["a", "b", "c"]).tolist())
        second = set(hash_tokens(["c", "b", "a"]).tolist())
        assert first == second


class TestHashFamily:
    def test_requires_positive_size(self):
        with pytest.raises(ValueError):
            HashFamily(0)

    def test_permute_shape(self):
        family = HashFamily(16, seed=3)
        result = family.permute(np.array([1, 2, 3], dtype=np.uint64))
        assert result.shape == (3, 16)

    def test_permute_empty(self):
        family = HashFamily(16)
        assert family.permute(np.empty(0, dtype=np.uint64)).shape == (0, 16)

    def test_minhash_values_of_empty_set_are_max(self):
        family = HashFamily(8)
        values = family.minhash_values(np.empty(0, dtype=np.uint64))
        assert np.all(values == MAX_HASH)

    def test_minhash_values_bounded(self):
        family = HashFamily(8)
        values = family.minhash_values(np.array([5, 9, 13], dtype=np.uint64))
        assert np.all(values <= MAX_HASH)

    def test_same_seed_same_family(self):
        assert HashFamily(8, seed=5) == HashFamily(8, seed=5)

    def test_different_seed_different_results(self):
        data = np.array([7, 11], dtype=np.uint64)
        first = HashFamily(8, seed=1).minhash_values(data)
        second = HashFamily(8, seed=2).minhash_values(data)
        assert not np.array_equal(first, second)

    def test_minhash_is_monotone_under_union(self):
        family = HashFamily(32, seed=9)
        small = np.array([1, 2, 3], dtype=np.uint64)
        large = np.array([1, 2, 3, 4, 5], dtype=np.uint64)
        small_values = family.minhash_values(small)
        large_values = family.minhash_values(large)
        assert np.all(large_values <= small_values)


class TestStableUint64:
    def test_deterministic(self):
        assert stable_uint64(["a", 1]) == stable_uint64(["a", 1])

    def test_sensitive_to_order(self):
        assert stable_uint64(["a", "b"]) != stable_uint64(["b", "a"])

    def test_seed_changes_value(self):
        assert stable_uint64(["a"], seed=1) != stable_uint64(["a"], seed=2)
