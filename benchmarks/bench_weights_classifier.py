"""Section III-D — the relatedness classifier behind the Equation 3 weights.

The paper trains a logistic-regression relatedness classifier on the TUS
(Synthetic) benchmark ground truth, tests it on a manually built real-world
benchmark, reports ~89% accuracy, and uses the coefficients as evidence-type
weights.  This benchmark reproduces that protocol with the generated corpora.
"""

from conftest import run_once

from repro.evaluation.experiments import experiment_weight_training


def test_weight_training_accuracy(benchmark, record_rows, synthetic_corpus, real_corpus, bench_config):
    result = run_once(
        benchmark,
        experiment_weight_training,
        synthetic_corpus,
        real_corpus,
        config=bench_config,
        num_targets=12,
        k=30,
        seed=12,
    )
    rows = [
        {
            "training_pairs": result["training_pairs"],
            "test_pairs": result["test_pairs"],
            "accuracy": result["accuracy"],
            **{f"w_{key}": value for key, value in result["weights"].items()},
        }
    ]
    record_rows(
        "weights_classifier",
        rows,
        "Section III-D: relatedness classifier accuracy and learned weights",
    )

    assert result["training_pairs"] > 100
    assert result["test_pairs"] > 50
    # The paper reports ~89%; the generated corpora should land well above chance.
    assert result["accuracy"] >= 0.7
    assert all(value > 0 for value in result["weights"].values())
