"""Subject-attribute detection (section III-C of the paper).

A *subject attribute* identifies the entities a dataset is about; non-subject
attributes describe properties of those entities.  The paper builds a
supervised classifier in the style of Venetis et al. (10-fold cross-validated
to ~89% accuracy on data.gov.uk tables) and assumes each dataset has exactly
one non-numeric subject attribute.  Intuitively the approach favours leftmost
non-numeric attributes with few nulls and many distinct values.

This module provides both the supervised classifier (trainable on the
labelled corpora produced by :mod:`repro.datagen`) and the heuristic that the
classifier's features encode, used as a fallback when no training data is
available.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.logistic_regression import LogisticRegression
from repro.tables.table import Table

#: Names of the features produced by :func:`column_feature_vector`.
FEATURE_NAMES = (
    "position",
    "is_numeric",
    "distinct_ratio",
    "null_ratio",
    "mean_length",
    "is_leftmost_textual",
)


def column_feature_vector(table: Table, column_index: int) -> List[float]:
    """Feature vector of one column, following the Venetis et al. intuition.

    Features: normalised position (leftmost = 0), numeric flag, distinct-value
    ratio, null ratio, normalised mean string length, and a flag marking the
    leftmost textual column of the table.
    """
    column = table.columns[column_index]
    arity = max(table.arity - 1, 1)
    leftmost_textual = None
    for index, candidate in enumerate(table.columns):
        if not candidate.is_numeric:
            leftmost_textual = index
            break
    return [
        column_index / arity,
        1.0 if column.is_numeric else 0.0,
        column.distinct_ratio,
        column.null_ratio,
        min(column.mean_string_length / 30.0, 1.0),
        1.0 if leftmost_textual == column_index else 0.0,
    ]


def heuristic_subject_attribute(table: Table) -> Optional[str]:
    """Heuristic subject attribute: leftmost textual column scoring highest on
    distinctness and completeness.

    Returns None when the table has no textual column (purely numeric tables
    have no subject attribute under the paper's assumption).
    """
    best_name: Optional[str] = None
    best_score = -np.inf
    for index, column in enumerate(table.columns):
        if column.is_numeric or column.value_type.value == "empty":
            continue
        position_bonus = 1.0 - index / max(table.arity, 1)
        score = 2.0 * column.distinct_ratio - column.null_ratio + position_bonus
        if score > best_score:
            best_score = score
            best_name = column.name
    return best_name


class SubjectAttributeClassifier:
    """Supervised subject-attribute detector.

    Trained on (table, subject-attribute-name) pairs; prediction scores every
    non-numeric column of a table with the learned model and returns the top
    scorer, falling back to :func:`heuristic_subject_attribute` for tables
    where the model has no usable candidate.
    """

    def __init__(self, l2: float = 1e-3, seed: int = 0) -> None:
        self._model = LogisticRegression(l2=l2)
        self._seed = seed
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has been called."""
        return self._fitted

    @staticmethod
    def build_training_set(
        labelled_tables: Sequence[Tuple[Table, str]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Turn labelled tables into per-column training rows.

        Every column of every table becomes a row; the label is 1 when the
        column is the table's annotated subject attribute.
        """
        features: List[List[float]] = []
        labels: List[int] = []
        for table, subject_name in labelled_tables:
            for index, column in enumerate(table.columns):
                features.append(column_feature_vector(table, index))
                labels.append(1 if column.name == subject_name else 0)
        return np.asarray(features, dtype=np.float64), np.asarray(labels, dtype=int)

    def fit(self, labelled_tables: Sequence[Tuple[Table, str]]) -> "SubjectAttributeClassifier":
        """Train on tables with known subject attributes."""
        features, labels = self.build_training_set(labelled_tables)
        if len(np.unique(labels)) < 2:
            raise ValueError("training data must contain both subject and non-subject columns")
        self._model.fit(features, labels)
        self._fitted = True
        return self

    def column_scores(self, table: Table) -> Dict[str, float]:
        """Model probability of being the subject attribute, per textual column."""
        if not self._fitted:
            raise RuntimeError("the classifier has not been fitted")
        scores: Dict[str, float] = {}
        for index, column in enumerate(table.columns):
            if column.is_numeric:
                continue
            probability = float(
                self._model.predict_proba([column_feature_vector(table, index)])[0]
            )
            scores[column.name] = probability
        return scores

    def identify(self, table: Table) -> Optional[str]:
        """The predicted subject attribute of ``table`` (None when undecidable)."""
        if not self._fitted:
            return heuristic_subject_attribute(table)
        scores = self.column_scores(table)
        if not scores:
            return heuristic_subject_attribute(table)
        return max(scores, key=scores.get)

    def accuracy(self, labelled_tables: Sequence[Tuple[Table, str]]) -> float:
        """Fraction of tables whose subject attribute is correctly identified."""
        if not labelled_tables:
            return 0.0
        correct = sum(
            1 for table, subject_name in labelled_tables if self.identify(table) == subject_name
        )
        return correct / len(labelled_tables)
