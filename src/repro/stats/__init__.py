"""Statistical primitives: KS statistic and empirical distributions."""

from repro.stats.distributions import EmpiricalDistribution, ccdf_weight
from repro.stats.ks import ks_distance, ks_statistic, ks_statistic_sorted

__all__ = [
    "EmpiricalDistribution",
    "ccdf_weight",
    "ks_distance",
    "ks_statistic",
    "ks_statistic_sorted",
]
