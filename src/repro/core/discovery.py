"""The D3L discovery engine: top-k related-dataset search (sections III and IV).

Querying proceeds exactly as the paper describes:

1. the target table is profiled with the same feature extraction as the lake
   (Algorithm 1), but nothing is inserted into the indexes;
2. every target attribute is looked up in each of the four LSH indexes,
   returning related lake attributes paired with estimated distances;
3. numeric target attributes additionally receive KS-based D distances for
   candidates passing the Algorithm 2 guard;
4. results are grouped by source table, each (target, source) pair is
   aggregated into a 5-dimensional distance vector (Equation 1 with the
   Equation 2 CCDF weights), and the vector is reduced to a scalar with the
   Equation 3 weighted l2-norm;
5. the k smallest distances are the answer; optionally, the answer is
   extended with tables reachable through SA-join paths (Algorithm 3).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.aggregation import combined_distance, evidence_vector
from repro.core.config import D3LConfig
from repro.core.evidence import EvidenceType
from repro.core.execution import IndexReadWriteLock
from repro.core.indexes import D3LIndexes
from repro.core.joins import JoinPath, SAJoinGraph, find_join_paths, tables_reached
from repro.core.profiles import AttributeMatch, AttributeProfile, TableProfile
from repro.core.weights import EvidenceWeights
from repro.lake.datalake import AttributeRef, DataLake
from repro.ml.subject_attribute import SubjectAttributeClassifier
from repro.stats.distributions import ccdf_weight, ccdf_weights_many
from repro.stats.ks import ks_statistic_sorted, ks_statistic_sorted_many
from repro.tables.table import Table
from repro.text.embeddings import WordEmbeddingModel

#: A query target: either a raw table (profiled on the fly) or a profile
#: prepared earlier with :meth:`D3L.profile_target` — repeated queries against
#: the same target (k sweeps, evidence ablations, sequential-vs-batched
#: comparisons) skip re-profiling this way.
QueryTarget = Union[Table, TableProfile]


def _shim_evidence(
    evidence_types: Optional[Sequence[EvidenceType]],
) -> Optional[Tuple[EvidenceType, ...]]:
    """Map a legacy ``evidence_types`` argument onto the request protocol.

    The legacy engines treated an *empty* sequence like "all five types with
    binary (uniform) ranking weights" — distinct from ``None``, which uses
    the engine's trained weights.  An explicit all-five subset reproduces
    that exactly through ``QueryRequest``, which rejects empty subsets.
    """
    if evidence_types is None:
        return None
    return tuple(evidence_types) or EvidenceType.all()


def _warn_deprecated(old: str, new: str) -> None:
    """Soft-deprecation notice for the legacy query entry points.

    The legacy methods stay behaviourally identical (they are thin shims over
    the unified planner in :mod:`repro.core.api`), so the warning is purely a
    migration signpost.
    """
    warnings.warn(
        f"{old} is deprecated; use {new} instead (see docs/api.md)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class TableResult:
    """One ranked source table with its relatedness evidence."""

    table_name: str
    distance: float
    evidence_distances: Dict[EvidenceType, float]
    matches: List[AttributeMatch]

    def covered_target_attributes(self) -> Set[str]:
        """Target attributes aligned with at least one attribute of this table."""
        return {match.target_attribute for match in self.matches}

    def aligned_sources(self) -> List[AttributeRef]:
        """Lake attributes participating in the alignment."""
        return [match.source for match in self.matches]


@dataclass
class QueryResult:
    """The full ranked answer for one target table.

    ``results`` contains every candidate table found by any index, ranked by
    ascending combined distance; ``top(k)`` slices the ranking.  Keeping the
    full ranking around is what makes coverage/precision sweeps over k cheap
    and lets the join-path machinery test the ``I*.lookup(T)`` condition.
    """

    target_name: str
    target_arity: int
    requested_k: int
    results: List[TableResult]

    def top(self, k: Optional[int] = None) -> List[TableResult]:
        """The ``k`` most related tables (default: the requested k).

        ``k = 0`` yields an empty answer and any ``k`` beyond the ranking
        yields the whole ranking; negative values are rejected rather than
        silently truncating from the tail the way a raw slice would.
        """
        k = self.requested_k if k is None else k
        if k < 0:
            raise ValueError("k must be non-negative")
        return self.results[:k]

    def table_names(self, k: Optional[int] = None) -> List[str]:
        """Names of the top-k tables."""
        return [result.table_name for result in self.top(k)]

    def candidate_tables(self) -> Set[str]:
        """Every table related to the target by at least one index."""
        return {result.table_name for result in self.results}

    def result_for(self, table_name: str) -> Optional[TableResult]:
        """The result entry of a specific table, when present."""
        for result in self.results:
            if result.table_name == table_name:
                return result
        return None


@dataclass
class AttributeSearchResult:
    """One ranked lake attribute returned by :meth:`D3L.related_attributes`."""

    ref: AttributeRef
    distances: Dict[EvidenceType, float]
    distance: float


@dataclass
class JoinAugmentedResult:
    """A query result extended with SA-join paths (``D3L+J``).

    ``truncated`` is True when the ``max_join_paths`` cap stopped Algorithm 3
    before every top-k start table was fully explored, so callers can tell a
    complete path enumeration from a capped one.
    """

    base: QueryResult
    join_paths: List[JoinPath]
    joined_tables: Set[str]
    truncated: bool = False

    def tables_for(self, start: str) -> Set[str]:
        """Tables reachable through join paths starting at ``start``."""
        reached: Set[str] = set()
        for path in self.join_paths:
            if path.start == start:
                reached.update(path.reached)
        return reached


class D3L:
    """The D3L dataset-discovery engine.

    Typical usage::

        engine = D3L()
        engine.index_lake(lake)
        result = engine.query(target_table, k=10)
        for entry in result.top():
            print(entry.table_name, entry.distance)
    """

    def __init__(
        self,
        config: Optional[D3LConfig] = None,
        embedding_model: Optional[WordEmbeddingModel] = None,
        weights: Optional[EvidenceWeights] = None,
        subject_classifier: Optional[SubjectAttributeClassifier] = None,
    ) -> None:
        self.config = config or D3LConfig()
        self.weights = weights or EvidenceWeights()
        self.indexes = D3LIndexes(
            config=self.config,
            embedding_model=embedding_model,
            subject_classifier=subject_classifier,
        )
        # Readers (query execution) vs writer (lake mutation) coordination:
        # the serving tier answers off these live indexes from many threads,
        # so mutations must wait for in-flight queries to drain.
        self.index_lock = IndexReadWriteLock()
        self._join_graph: Optional[SAJoinGraph] = None
        # Indexes version the cached join graph was built against; a stale
        # version (or a restored graph riding a persisted engine) is detected
        # against D3LIndexes.version exactly like the serving-tier caches.
        self._join_graph_version: Optional[int] = None
        # Lazily created query-fan-out executors, keyed by worker count.
        # Each keeps a live worker pool holding a snapshot of the indexes, so
        # repeated queries do not re-ship the index state; single-table
        # mutations leave the pools alive (they refresh themselves with a
        # delta on the next fanned-out request) while bulk re-indexing
        # discards them (see _invalidate_query_executors).
        self._query_executors: Dict[int, "ParallelQueryExecutor"] = {}
        # Exact value-overlap coefficients verified by previous join-graph
        # builds, keyed by (subject ref, candidate ref).  An overlap is a pure
        # function of the two tables' value samples, so entries stay valid
        # until either side mutates — incremental rebuilds after a
        # single-table mutation re-verify only the pairs touching it.
        self._join_overlap_cache: Dict[Tuple[AttributeRef, AttributeRef], float] = {}

    # ------------------------------------------------------------------ #
    # indexing
    # ------------------------------------------------------------------ #
    def index_lake(
        self,
        lake: DataLake,
        workers: Optional[int] = None,
        backend: str = "process",
    ) -> None:
        """Profile and index every table of ``lake`` (Algorithm 1).

        ``workers > 1`` shards the lake across that many workers
        (:class:`~repro.core.parallel.ParallelIndexBuilder`, dispatching
        through the named execution ``backend``); the resulting indexes are
        identical to a single-process build.
        """
        with self.index_lock.write():
            self.indexes.add_lake(lake, workers=workers, backend=backend)
            self._join_graph = None
            self._join_overlap_cache.clear()
            self._invalidate_query_executors()

    def index_table(self, table: Table) -> None:
        """Profile and (re-)index a single table, invalidating per table.

        Re-indexing an already known name replaces its previous attributes
        (the lake's documented replace semantics).  Only state derived from
        the mutated table is dropped: verified join overlaps touching it, and
        the cached join graph (rebuilt incrementally from the surviving
        overlaps on next use).  Fan-out worker pools stay alive and refresh
        themselves with a delta on the next request.
        """
        with self.index_lock.write():
            self.indexes.add_table(table)
            self._note_mutation(table.name)

    def remove_table(self, table_name: str) -> bool:
        """Remove a table from the indexes (incremental lake maintenance)."""
        with self.index_lock.write():
            removed = self.indexes.remove_table(table_name)
            if removed:
                self._note_mutation(table_name)
        return removed

    def _note_mutation(self, table_name: str) -> None:
        """Per-table invalidation after a single-table mutation.

        Evicts only the verified overlaps involving ``table_name``; worker
        pools are left running (delta refresh) and the join graph rebuilds
        lazily because its cached version no longer matches the indexes.
        """
        self._join_overlap_cache = {
            pair: overlap
            for pair, overlap in self._join_overlap_cache.items()
            if pair[0].table != table_name and pair[1].table != table_name
        }

    def _invalidate_query_executors(self) -> None:
        """Discard fan-out worker pools holding a now-stale index snapshot."""
        for executor in self._query_executors.values():
            executor.close()
        self._query_executors = {}

    def close(self) -> None:
        """Release every fan-out worker pool and shared-memory snapshot.

        The engine stays fully usable — pools and snapshots are re-created
        lazily on the next fanned-out request.  Call this (or
        :meth:`~repro.core.api.DiscoverySession.close`) when done serving so
        worker processes and ``/dev/shm`` segments are reclaimed promptly
        rather than by the garbage-collection backstop.
        """
        self._invalidate_query_executors()

    def __enter__(self) -> "D3L":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Release pools and segments on scope exit (exceptions included)."""
        self.close()

    def _fanout_executor(
        self, workers: int, backend: str = "process"
    ) -> "ParallelQueryExecutor":
        """The cached fan-out executor for ``workers``, created on demand.

        One executor (and thus one execution backend holding at most one
        worker pool over one shared index snapshot) exists per requested
        worker count — keyed by the bare count for the default ``process``
        backend and by ``(backend, workers)`` otherwise; any lake mutation
        discards the cache (see :meth:`_invalidate_query_executors`).
        """
        from repro.core.parallel import ParallelQueryExecutor

        key = workers if backend == "process" else (backend, workers)
        executor = self._query_executors.get(key)
        if executor is None or executor.indexes is not self.indexes:
            # The indexes object is only rebound on engine restore (when
            # the cache is empty), but close any displaced executor so a
            # rebind can never strand a live worker pool.
            if executor is not None:
                executor.close()
            executor = ParallelQueryExecutor(self.indexes, workers, backend=backend)
            self._query_executors[key] = executor
        return executor

    @property
    def join_graph(self) -> SAJoinGraph:
        """The SA-join graph, built lazily and cached until the lake changes.

        The cache is keyed by :attr:`~repro.core.indexes.D3LIndexes.version`,
        so graphs restored by :func:`~repro.core.persistence.load_engine` /
        ``load_session`` are served without recomputation while any lake
        mutation forces a rebuild.
        """
        return self.build_join_graph()

    def build_join_graph(
        self, workers: Optional[int] = None, backend: str = "process"
    ) -> SAJoinGraph:
        """Build (or return the cached) SA-join graph for the current lake.

        ``workers > 1`` shards the exact value-overlap verification across
        the engine's persistent fan-out executor for that worker count and
        ``backend`` (the same executor the batched query engine uses,
        created on demand); the resulting edge set is identical to a
        single-process build, so the cache keys on neither the worker count
        nor the backend.
        """
        if self._join_graph is None or self._join_graph_version != self.indexes.version:
            executor = (
                self._fanout_executor(workers, backend)
                if workers is not None and workers > 1
                else None
            )
            self._join_graph = SAJoinGraph.build(
                self.indexes,
                self.config,
                workers=workers,
                executor=executor,
                overlap_cache=self._join_overlap_cache,
                backend=backend,
            )
            self._join_graph_version = self.indexes.version
        return self._join_graph

    @property
    def cached_join_graph(self) -> Optional[SAJoinGraph]:
        """The cached SA-join graph when fresh, else None (never builds).

        Persistence uses this to decide whether an engine payload should
        carry a join-graph section.
        """
        if self._join_graph_version != self.indexes.version:
            return None
        return self._join_graph

    def restore_join_graph(self, graph: SAJoinGraph) -> None:
        """Adopt a previously persisted join graph for the current lake state."""
        self._join_graph = graph
        self._join_graph_version = self.indexes.version

    def set_weights(self, weights: EvidenceWeights) -> None:
        """Replace the Equation 3 evidence weights."""
        self.weights = weights

    # ------------------------------------------------------------------ #
    # querying
    # ------------------------------------------------------------------ #
    def profile_target(self, target: Table) -> TableProfile:
        """Profile a query target once, for reuse across many queries.

        The returned profile can be passed wherever :meth:`query`,
        :meth:`query_batch` or :meth:`query_with_joins` accept a target, so
        answer-size sweeps and sequential-vs-batched comparisons do not pay
        the Algorithm 1 feature extraction repeatedly.  Nothing is inserted
        into the indexes.
        """
        return self.indexes.profile_table(target)

    def query(
        self,
        target: QueryTarget,
        k: int,
        evidence_types: Optional[Sequence[EvidenceType]] = None,
        exclude_self: bool = True,
        weights: Optional[EvidenceWeights] = None,
    ) -> QueryResult:
        """Return the ranked answer for ``target`` (sequential engine).

        .. deprecated::
            ``D3L.query`` is a compatibility shim over the unified query
            protocol; build a :class:`~repro.core.api.QueryRequest` with
            ``engine="sequential"`` and submit it through a
            :class:`~repro.core.api.DiscoverySession` instead.  Behaviour
            (rankings, scores, tie order, error messages) is unchanged.
        """
        _warn_deprecated(
            "D3L.query", "DiscoverySession.submit(QueryRequest(engine='sequential'))"
        )
        from repro.core.api import QueryRequest, execute

        request = QueryRequest(
            target=target,
            k=k,
            evidence=_shim_evidence(evidence_types),
            weights=weights,
            exclude_self=exclude_self,
            engine="sequential",
        )
        return execute(self, request).legacy

    def _execute_query(
        self,
        target: QueryTarget,
        k: int,
        evidence_types: Optional[Sequence[EvidenceType]] = None,
        exclude_self: bool = True,
        weights: Optional[EvidenceWeights] = None,
    ) -> QueryResult:
        """The sequential per-attribute engine (the batched engine's oracle).

        ``evidence_types`` restricts both candidate generation and ranking to
        a subset of the evidence (Experiment 1 queries with a single type);
        by default all five are used.  ``exclude_self`` removes the target's
        own lake entry from the answer, which is how the evaluation queries
        targets drawn from the lake.

        Each target attribute fans out on its own and Algorithm 2 scores
        candidates pair by pair.  It is kept as the oracle for the batched
        engine, which produces the identical answer through batched sweeps.
        """
        target_profile, active_indexed, use_distribution, ranking_weights = (
            self._prepare_query(target, k, evidence_types, weights)
        )
        exclude_table = target_profile.table_name if exclude_self else None
        pool = self.config.candidate_pool_size(k)

        matches = self._collect_matches(
            target_profile, active_indexed, use_distribution, pool, exclude_table
        )
        return QueryResult(
            target_name=target_profile.table_name,
            target_arity=target_profile.arity,
            requested_k=k,
            results=self._rank_tables(matches, ranking_weights),
        )

    def query_batch(
        self,
        target: QueryTarget,
        k: int,
        evidence_types: Optional[Sequence[EvidenceType]] = None,
        exclude_self: bool = True,
        weights: Optional[EvidenceWeights] = None,
        workers: Optional[int] = None,
    ) -> QueryResult:
        """The batched query engine: :meth:`query`'s answer, computed in sweeps.

        .. deprecated::
            ``D3L.query_batch`` is a compatibility shim over the unified
            query protocol; build a :class:`~repro.core.api.QueryRequest`
            and submit it through a :class:`~repro.core.api.DiscoverySession`
            instead (the session additionally caches target profiles across
            repeated requests).  Behaviour is unchanged.
        """
        _warn_deprecated("D3L.query_batch", "DiscoverySession.submit(QueryRequest(...))")
        from repro.core.api import QueryRequest, execute

        request = QueryRequest(
            target=target,
            k=k,
            evidence=_shim_evidence(evidence_types),
            weights=weights,
            exclude_self=exclude_self,
            # The legacy engine treated any workers <= 1 (including 0) as
            # "no fan-out"; the request protocol only accepts positive counts.
            workers=workers if workers is not None and workers > 1 else 1,
        )
        return execute(self, request).legacy

    def _execute_query_batch(
        self,
        target: QueryTarget,
        k: int,
        evidence_types: Optional[Sequence[EvidenceType]] = None,
        exclude_self: bool = True,
        weights: Optional[EvidenceWeights] = None,
        workers: Optional[int] = None,
        signature_maps: Optional[Dict[str, Dict[EvidenceType, object]]] = None,
        backend: str = "process",
    ) -> QueryResult:
        """The batched counterpart of :meth:`_execute_query`, in sweeps.

        Every target attribute's forest candidates are collected in one pass,
        distance computations are grouped by evidence type into single matrix
        kernels (:meth:`~repro.core.indexes.D3LIndexes.multi_lookup` /
        ``multi_batch_attribute_distances``), the Algorithm 2 KS loop runs as
        one vectorized sweep per attribute over the candidates sharing its
        cached sorted extent, and the Equation 2 weights are assigned per
        candidate pool instead of per pair.  ``workers > 1`` additionally
        fans the target attributes out across worker processes
        (:class:`~repro.core.parallel.ParallelQueryExecutor`).

        Rankings, scores, and tie order are identical to :meth:`query` by
        construction: the same exact lookup tables score the signatures, the
        same counts feed every CDF, and the same sort keys break ties — which
        ``tests/core/test_batched_query.py`` locks down.
        """
        target_profile, active_indexed, use_distribution, ranking_weights = (
            self._prepare_query(target, k, evidence_types, weights)
        )
        exclude_table = target_profile.table_name if exclude_self else None
        pool = self.config.candidate_pool_size(k)

        matches = self._collect_matches_batched(
            target_profile,
            active_indexed,
            use_distribution,
            pool,
            exclude_table,
            workers=workers,
            signature_maps=signature_maps,
            backend=backend,
        )
        return QueryResult(
            target_name=target_profile.table_name,
            target_arity=target_profile.arity,
            requested_k=k,
            results=self._rank_tables(matches, ranking_weights),
        )

    def query_with_joins(
        self,
        target: QueryTarget,
        k: int,
        evidence_types: Optional[Sequence[EvidenceType]] = None,
        exclude_self: bool = True,
    ) -> JoinAugmentedResult:
        """D3L+J: the ranked answer extended with SA-join paths (section IV).

        .. deprecated::
            ``D3L.query_with_joins`` is a compatibility shim over the unified
            query protocol; build a :class:`~repro.core.api.QueryRequest`
            with ``joins=True`` and submit it through a
            :class:`~repro.core.api.DiscoverySession` (join paths then also
            travel on the ``QueryResponse`` wire format).  Behaviour is
            unchanged.
        """
        _warn_deprecated(
            "D3L.query_with_joins", "DiscoverySession.submit(QueryRequest(joins=True))"
        )
        from repro.core.api import QueryRequest, execute

        request = QueryRequest(
            target=target,
            k=k,
            evidence=_shim_evidence(evidence_types),
            exclude_self=exclude_self,
            engine="sequential",
            joins=True,
        )
        return execute(self, request).legacy

    def augment_with_joins(self, base: QueryResult, k: int) -> JoinAugmentedResult:
        """Extend a ranked answer with SA-join paths (Algorithm 3).

        The join-path building block underneath every ``joins=True`` request:
        walks the (cached) SA-join graph from the top-``k`` tables of
        ``base`` through the tables related to the target by at least one
        index, honouring the configured length and path-count caps.
        """
        search = find_join_paths(
            self.join_graph,
            base.table_names(k),
            related_tables=base.candidate_tables(),
            max_length=self.config.max_join_path_length,
            max_paths=self.config.max_join_paths,
        )
        return JoinAugmentedResult(
            base=base,
            join_paths=list(search.paths),
            joined_tables=tables_reached(search.paths),
            truncated=search.truncated,
        )

    def related_attributes(
        self,
        target: Table,
        attribute_name: str,
        k: int = 10,
        exclude_self: bool = True,
        weights: Optional[EvidenceWeights] = None,
    ) -> List[AttributeSearchResult]:
        """Attribute-level discovery: the lake attributes most related to one
        target attribute.

        .. deprecated::
            ``D3L.related_attributes`` is a compatibility shim; build a
            :class:`~repro.core.api.QueryRequest` with ``attributes=(name,)``
            and ``engine="sequential"`` and submit it through a
            :class:`~repro.core.api.DiscoverySession`.  Behaviour is
            unchanged.
        """
        _warn_deprecated(
            "D3L.related_attributes",
            "DiscoverySession.submit(QueryRequest(attributes=..., engine='sequential'))",
        )
        from repro.core.api import QueryRequest, execute

        request = QueryRequest(
            target=target,
            k=k,
            attributes=(attribute_name,),
            weights=weights,
            exclude_self=exclude_self,
            engine="sequential",
        )
        return execute(self, request).legacy[attribute_name]

    def _execute_related_attributes(
        self,
        target: Table,
        attribute_name: str,
        k: int = 10,
        exclude_self: bool = True,
        weights: Optional[EvidenceWeights] = None,
    ) -> List[AttributeSearchResult]:
        """The sequential single-attribute engine (the bulk path's oracle).

        This exposes the building block underneath table relatedness — useful
        when the caller wants join or union candidates for a single column
        rather than whole-table rankings.  Distances follow the same
        definitions as the table-level query; the combined score is the
        Equation 3 norm restricted to a single attribute pair.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if not target.has_column(attribute_name):
            raise KeyError(f"target {target.name!r} has no attribute {attribute_name!r}")
        ranking_weights = weights or self.weights
        exclude_table = target.name if exclude_self else None

        profile = AttributeProfile.build(
            target.name,
            target.column(attribute_name),
            self.indexes.embedding_model,
            self.config,
        )
        query_signatures = self.indexes.signatures_for(profile)
        pool = self.config.candidate_pool_size(k)

        candidates: Set[AttributeRef] = set()
        for evidence in EvidenceType.indexed():
            for ref, _ in self.indexes.lookup(
                evidence,
                profile,
                k=pool,
                exclude_table=exclude_table,
                query_signatures=query_signatures,
            ):
                candidates.add(ref)

        # One vectorized distance pass per evidence type over all candidates.
        refs = sorted(candidates)
        distance_columns = {
            evidence: self.indexes.batch_attribute_distances(
                evidence, profile, refs, query_signatures
            )
            for evidence in EvidenceType.all()
        }
        results: List[AttributeSearchResult] = []
        for position, ref in enumerate(refs):
            distances = {
                evidence: float(distance_columns[evidence][position])
                for evidence in EvidenceType.all()
            }
            results.append(
                AttributeSearchResult(
                    ref=ref,
                    distances=distances,
                    distance=combined_distance(distances, ranking_weights),
                )
            )
        results.sort(key=lambda result: (result.distance, result.ref))
        return results[:k]

    def related_attributes_bulk(
        self,
        target: Table,
        attribute_names: Optional[Sequence[str]] = None,
        k: int = 10,
        exclude_self: bool = True,
        weights: Optional[EvidenceWeights] = None,
    ) -> Dict[str, List[AttributeSearchResult]]:
        """Bulk :meth:`related_attributes`: many target attributes, one pass.

        .. deprecated::
            ``D3L.related_attributes_bulk`` is a compatibility shim; build a
            :class:`~repro.core.api.QueryRequest` with ``attributes=...`` and
            submit it through a :class:`~repro.core.api.DiscoverySession`.
            Behaviour is unchanged.
        """
        _warn_deprecated(
            "D3L.related_attributes_bulk",
            "DiscoverySession.submit(QueryRequest(attributes=...))",
        )
        # k is validated before the empty-names early return so a bad k is
        # reported even for an empty selection, as the legacy path did;
        # QueryRequest dedups the names and re-checks everything else.
        if k <= 0:
            raise ValueError("k must be positive")
        names = (
            tuple(attribute_names)
            if attribute_names is not None
            else tuple(column.name for column in target.columns)
        )
        if not names:
            return {}
        from repro.core.api import QueryRequest, execute

        request = QueryRequest(
            target=target,
            k=k,
            attributes=names,
            weights=weights,
            exclude_self=exclude_self,
        )
        return execute(self, request).legacy

    def _execute_related_attributes_bulk(
        self,
        target: Table,
        attribute_names: Optional[Sequence[str]] = None,
        k: int = 10,
        exclude_self: bool = True,
        weights: Optional[EvidenceWeights] = None,
    ) -> Dict[str, List[AttributeSearchResult]]:
        """The batched attribute-level engine: many target attributes, one pass.

        All requested attributes (default: every column of ``target``) are
        profiled and signed together, their forest candidates are collected
        through one multi-query lookup per evidence type, and the distance
        columns of the whole group — including the KS distances of every
        numeric attribute — are computed as per-evidence sweeps.  The entry
        of each attribute equals the single-attribute sequential path
        exactly (same refs, distances, scores, and tie order).
        """
        if k <= 0:
            raise ValueError("k must be positive")
        names = (
            list(dict.fromkeys(attribute_names))
            if attribute_names is not None
            else [column.name for column in target.columns]
        )
        for name in names:
            if not target.has_column(name):
                raise KeyError(f"target {target.name!r} has no attribute {name!r}")
        ranking_weights = weights or self.weights
        exclude_table = target.name if exclude_self else None
        pool = self.config.candidate_pool_size(k)

        profiles = [
            AttributeProfile.build(
                target.name,
                target.column(name),
                self.indexes.embedding_model,
                self.config,
            )
            for name in names
        ]
        signature_maps = attribute_signature_maps(
            self.indexes, target.name, list(zip(names, profiles))
        )

        candidate_sets: List[Set[AttributeRef]] = [set() for _ in names]
        for evidence in EvidenceType.indexed():
            per_query = self.indexes.multi_lookup(
                evidence,
                [signature_maps[name][evidence] for name in names],
                k=pool,
                exclude_table=exclude_table,
            )
            for candidates, pairs in zip(candidate_sets, per_query):
                candidates.update(ref for ref, _ in pairs)

        refs_per_attribute = [sorted(candidates) for candidates in candidate_sets]
        distance_columns = {
            evidence: self.indexes.multi_batch_attribute_distances(
                evidence,
                profiles,
                refs_per_attribute,
                signatures=(
                    [signature_maps[name][evidence] for name in names]
                    if evidence.is_indexed
                    else None
                ),
            )
            for evidence in EvidenceType.all()
        }

        answers: Dict[str, List[AttributeSearchResult]] = {}
        for position, name in enumerate(names):
            results: List[AttributeSearchResult] = []
            for index, ref in enumerate(refs_per_attribute[position]):
                distances = {
                    evidence: float(distance_columns[evidence][position][index])
                    for evidence in EvidenceType.all()
                }
                results.append(
                    AttributeSearchResult(
                        ref=ref,
                        distances=distances,
                        distance=combined_distance(distances, ranking_weights),
                    )
                )
            results.sort(key=lambda result: (result.distance, result.ref))
            answers[name] = results[:k]
        return answers

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _prepare_query(
        self,
        target: QueryTarget,
        k: int,
        evidence_types: Optional[Sequence[EvidenceType]],
        weights: Optional[EvidenceWeights],
    ) -> Tuple[TableProfile, List[EvidenceType], bool, EvidenceWeights]:
        """Shared query preamble: profile the target and resolve the setup."""
        if k <= 0:
            raise ValueError("k must be positive")
        active = tuple(evidence_types) if evidence_types else EvidenceType.all()
        active_indexed = [evidence for evidence in active if evidence.is_indexed]
        use_distribution = EvidenceType.DISTRIBUTION in active
        ranking_weights = weights or (
            self.weights
            if evidence_types is None
            else EvidenceWeights(
                {evidence: (1.0 if evidence in active else 0.0) for evidence in EvidenceType.all()}
            )
        )
        target_profile = (
            target
            if isinstance(target, TableProfile)
            else self.indexes.profile_table(target)
        )
        return target_profile, active_indexed, use_distribution, ranking_weights

    def _rank_tables(
        self,
        matches: Dict[str, List[AttributeMatch]],
        ranking_weights: EvidenceWeights,
    ) -> List[TableResult]:
        """Aggregate per-table matches (Eq. 1) and rank them (Eq. 3)."""
        results: List[TableResult] = []
        for table_name, table_matches in matches.items():
            vector = evidence_vector(table_matches)
            distance = combined_distance(vector, ranking_weights)
            results.append(
                TableResult(
                    table_name=table_name,
                    distance=distance,
                    evidence_distances=vector,
                    matches=table_matches,
                )
            )
        results.sort(key=lambda result: (result.distance, result.table_name))
        return results

    def _collect_matches(
        self,
        target_profile: TableProfile,
        active_indexed: Sequence[EvidenceType],
        use_distribution: bool,
        pool: int,
        exclude_table: Optional[str],
    ) -> Dict[str, List[AttributeMatch]]:
        """Per-source-table attribute matches with distances and Eq. 2 weights."""
        indexes = self.indexes

        # Tables whose attributes are retrieved by the target's subject
        # attribute through any index: the I* guard of Algorithm 2.
        subject_related_tables = self._subject_related_tables(
            target_profile, pool, exclude_table
        )

        per_table: Dict[str, Dict[str, AttributeMatch]] = {}
        for attribute_name, attribute_profile in target_profile.attributes.items():
            query_signatures = indexes.signatures_for(attribute_profile)

            lookups: Dict[EvidenceType, Dict[AttributeRef, float]] = {}
            candidate_refs: Set[AttributeRef] = set()
            for evidence in active_indexed:
                pairs = indexes.lookup(
                    evidence,
                    attribute_profile,
                    k=pool,
                    exclude_table=exclude_table,
                    query_signatures=query_signatures,
                )
                lookups[evidence] = dict(pairs)
                candidate_refs.update(lookups[evidence])

            if not candidate_refs:
                continue

            # Full distance vectors for every candidate of this attribute:
            # one vectorized matrix pass per evidence type instead of one
            # signature comparison per (candidate, evidence) pair.
            refs = sorted(candidate_refs)
            distance_columns = {
                evidence: indexes.batch_attribute_distances(
                    evidence, attribute_profile, refs, query_signatures
                )
                for evidence in EvidenceType.indexed()
            }
            distances_by_ref: Dict[AttributeRef, Dict[EvidenceType, float]] = {}
            for position, ref in enumerate(refs):
                distances: Dict[EvidenceType, float] = {
                    evidence: float(distance_columns[evidence][position])
                    for evidence in EvidenceType.indexed()
                }
                distances[EvidenceType.DISTRIBUTION] = (
                    self._distribution_distance(
                        attribute_profile,
                        ref,
                        lookups,
                        subject_related_tables,
                    )
                    if use_distribution
                    else 1.0
                )
                distances_by_ref[ref] = distances

            # Equation 2 populations: all observed distances of each type for
            # this target attribute.
            populations: Dict[EvidenceType, List[float]] = {
                evidence: [
                    distances[evidence]
                    for distances in distances_by_ref.values()
                    if distances[evidence] < 1.0
                ]
                for evidence in EvidenceType.all()
            }

            # Group candidates by source table, keeping the best alignment.
            for ref, distances in distances_by_ref.items():
                match = AttributeMatch(
                    target_attribute=attribute_name,
                    source=ref,
                    distances=distances,
                    weights={
                        evidence: ccdf_weight(distances[evidence], populations[evidence])
                        if distances[evidence] < 1.0
                        else 0.0
                        for evidence in EvidenceType.all()
                    },
                )
                table_matches = per_table.setdefault(ref.table, {})
                existing = table_matches.get(attribute_name)
                if existing is None or match.mean_distance() < existing.mean_distance():
                    table_matches[attribute_name] = match

        return {
            table_name: list(matches.values()) for table_name, matches in per_table.items()
        }

    def _collect_matches_batched(
        self,
        target_profile: TableProfile,
        active_indexed: Sequence[EvidenceType],
        use_distribution: bool,
        pool: int,
        exclude_table: Optional[str],
        workers: Optional[int] = None,
        signature_maps: Optional[Dict[str, Dict[EvidenceType, object]]] = None,
        backend: str = "process",
    ) -> Dict[str, List[AttributeMatch]]:
        """Batched counterpart of :meth:`_collect_matches`.

        Candidate collection and distance computation run as per-evidence
        sweeps over every target attribute at once
        (:func:`collect_attribute_candidate_distances`); ``workers > 1``
        shards the target attributes across worker processes with the same
        partition/merge discipline index construction uses.  The merge runs
        in the target profile's attribute order — the order the sequential
        engine iterates — so the resulting matches are identical.

        ``signature_maps`` (as produced by :func:`attribute_signature_maps`)
        lets serving tiers that memoized the target's signatures — notably
        :class:`~repro.core.api.DiscoverySession` — skip re-signing the
        target on every repeated request; signatures are deterministic, so
        the answer is unchanged.
        """
        subject_related_tables = self._subject_related_tables(
            target_profile, pool, exclude_table
        )
        entries = list(target_profile.attributes.items())
        if workers is not None and workers > 1:
            executor = self._fanout_executor(workers, backend)
            attribute_distances = executor.collect(
                target_profile.table_name,
                entries,
                active_indexed=tuple(active_indexed),
                use_distribution=use_distribution,
                pool=pool,
                exclude_table=exclude_table,
                subject_related_tables=subject_related_tables,
                signature_maps=signature_maps,
            )
        else:
            attribute_distances = collect_attribute_candidate_distances(
                self.indexes,
                target_profile.table_name,
                entries,
                active_indexed=tuple(active_indexed),
                use_distribution=use_distribution,
                pool=pool,
                exclude_table=exclude_table,
                subject_related_tables=subject_related_tables,
                signature_maps=signature_maps,
            )

        per_table: Dict[str, Dict[str, AttributeMatch]] = {}
        for attribute_name, refs, columns in attribute_distances:
            _merge_attribute_matches_batched(per_table, attribute_name, refs, columns)
        return {
            table_name: list(matches.values()) for table_name, matches in per_table.items()
        }

    def _subject_related_tables(
        self,
        target_profile: TableProfile,
        pool: int,
        exclude_table: Optional[str],
    ) -> Set[str]:
        subject = target_profile.subject_profile()
        if subject is None:
            return set()
        related: Set[str] = set()
        cutoff = self.indexes.threshold_distance()
        # The subject's signatures are the same for all four indexes; compute
        # them once instead of once per lookup.
        query_signatures = self.indexes.signatures_for(subject)
        for evidence in EvidenceType.indexed():
            for ref, _ in self.indexes.lookup(
                evidence,
                subject,
                k=pool,
                exclude_table=exclude_table,
                query_signatures=query_signatures,
                max_distance=cutoff,
            ):
                related.add(ref.table)
        return related

    def _distribution_distance(
        self,
        attribute_profile: AttributeProfile,
        ref: AttributeRef,
        lookups: Mapping[EvidenceType, Mapping[AttributeRef, float]],
        subject_related_tables: Set[str],
    ) -> float:
        """Algorithm 2, using the lookups already performed for this attribute."""
        if not attribute_profile.is_numeric:
            return 1.0
        other = self.indexes.profiles.get(ref)
        if other is None or not other.is_numeric:
            return 1.0
        cutoff = self.indexes.threshold_distance()
        guard = (
            ref.table in subject_related_tables
            or lookups.get(EvidenceType.NAME, {}).get(ref, 1.0) <= cutoff
            or lookups.get(EvidenceType.FORMAT, {}).get(ref, 1.0) <= cutoff
        )
        if not guard:
            return 1.0
        return ks_statistic_sorted(attribute_profile.numeric_sorted, other.numeric_sorted)


# --------------------------------------------------------------------------- #
# batched candidate collection (shared by query_batch and its shard workers)
# --------------------------------------------------------------------------- #


def attribute_signature_maps(
    indexes: D3LIndexes,
    table_name: str,
    entries: Sequence[Tuple[str, AttributeProfile]],
) -> Dict[str, Dict[EvidenceType, object]]:
    """Per-evidence query signatures of many target attributes, batched.

    Wraps the attributes in a synthetic :class:`TableProfile` so the
    lake-construction batching (one MinHash pass per evidence type, one
    projection pass) signs the whole group; values are bit-identical to
    per-attribute ``signatures_for``.
    """
    pseudo = TableProfile(
        table_name=table_name,
        attributes=dict(entries),
        subject_attribute=None,
        arity=len(entries),
        cardinality=0,
    )
    return indexes.batch_signatures([pseudo])[table_name]


#: One batched attribute's collected candidates: ``(attribute name, sorted
#: candidate refs, {evidence: distance column aligned with the refs})``.
AttributeCandidates = Tuple[str, List[AttributeRef], Dict[EvidenceType, np.ndarray]]


def collect_attribute_candidate_distances(
    indexes: D3LIndexes,
    table_name: str,
    entries: Sequence[Tuple[str, AttributeProfile]],
    active_indexed: Sequence[EvidenceType],
    use_distribution: bool,
    pool: int,
    exclude_table: Optional[str],
    subject_related_tables: Set[str],
    signature_maps: Optional[Dict[str, Dict[EvidenceType, object]]] = None,
) -> List[AttributeCandidates]:
    """Full candidate distance columns of many target attributes, batched.

    The batched engine's per-attribute unit of work, and the function
    :class:`~repro.core.parallel.ParallelQueryExecutor` ships to its shard
    workers: signatures are computed in one batched pass, candidates are
    retrieved with one multi-query lookup per active evidence type, the
    signature-backed distance columns come from one row-aligned kernel per
    evidence type, and Algorithm 2 runs as one KS sweep per numeric
    attribute.  Distances stay in per-evidence NumPy columns — per-candidate
    Python structures are deferred to the merge, which only materialises the
    winning alignments.  Column values are identical to what the sequential
    ``_collect_matches`` computes per attribute; attributes without
    candidates are omitted, as the sequential loop omits them.

    ``signature_maps`` may carry precomputed per-attribute query signatures
    (from :func:`attribute_signature_maps`, possibly memoized by a serving
    session); when absent they are computed here.  Signatures are a
    deterministic function of the profile and configuration, so either way
    the distances are identical.
    """
    entries = list(entries)
    if not entries:
        return []
    names = [name for name, _ in entries]
    profiles = [profile for _, profile in entries]
    if signature_maps is None:
        signature_maps = attribute_signature_maps(indexes, table_name, entries)
    cutoff = indexes.threshold_distance()

    candidate_sets: List[Set[AttributeRef]] = [set() for _ in entries]
    # The Algorithm 2 guard consults the name/format lookups of *numeric*
    # target attributes; every other (evidence, attribute) lookup only
    # contributes its candidates to the union.
    guard_lookups: List[Dict[EvidenceType, Dict[AttributeRef, float]]] = [
        {} for _ in entries
    ]
    for evidence in active_indexed:
        per_query = indexes.multi_lookup(
            evidence,
            [signature_maps[name][evidence] for name in names],
            k=pool,
            exclude_table=exclude_table,
        )
        keep_guard = use_distribution and evidence in (
            EvidenceType.NAME,
            EvidenceType.FORMAT,
        )
        for position, pairs in enumerate(per_query):
            candidate_sets[position].update(ref for ref, _ in pairs)
            if keep_guard and profiles[position].is_numeric:
                guard_lookups[position][evidence] = dict(pairs)

    refs_per_attribute = [sorted(candidates) for candidates in candidate_sets]
    distance_columns = {
        evidence: indexes.multi_batch_attribute_distances(
            evidence,
            profiles,
            refs_per_attribute,
            signatures=[signature_maps[name][evidence] for name in names],
        )
        for evidence in EvidenceType.indexed()
    }

    results: List[AttributeCandidates] = []
    for position, (name, profile) in enumerate(entries):
        refs = refs_per_attribute[position]
        if not refs:
            continue
        columns = {
            evidence: distance_columns[evidence][position]
            for evidence in EvidenceType.indexed()
        }
        columns[EvidenceType.DISTRIBUTION] = (
            _batched_distribution_distances(
                indexes,
                profile,
                refs,
                guard_lookups[position],
                subject_related_tables,
                cutoff,
            )
            if use_distribution
            else np.ones(len(refs), dtype=np.float64)
        )
        results.append((name, refs, columns))
    return results


def _batched_distribution_distances(
    indexes: D3LIndexes,
    profile: AttributeProfile,
    refs: Sequence[AttributeRef],
    lookups: Mapping[EvidenceType, Mapping[AttributeRef, float]],
    subject_related_tables: Set[str],
    cutoff: float,
) -> np.ndarray:
    """Algorithm 2 for one target attribute as a single vectorized KS sweep.

    Applies the same per-candidate guard as ``_distribution_distance`` (the
    oracle), then evaluates every surviving candidate against the target's
    cached sorted extent in one :func:`ks_statistic_sorted_many` call.
    """
    distances = np.ones(len(refs), dtype=np.float64)
    if not profile.is_numeric:
        return distances
    name_lookup = lookups.get(EvidenceType.NAME, {})
    format_lookup = lookups.get(EvidenceType.FORMAT, {})
    positions: List[int] = []
    extents: List[np.ndarray] = []
    for position, ref in enumerate(refs):
        other = indexes.profiles.get(ref)
        if other is None or not other.is_numeric:
            continue
        guard = (
            ref.table in subject_related_tables
            or name_lookup.get(ref, 1.0) <= cutoff
            or format_lookup.get(ref, 1.0) <= cutoff
        )
        if not guard:
            continue
        positions.append(position)
        extents.append(other.numeric_sorted)
    if positions:
        distances[np.asarray(positions, dtype=np.intp)] = ks_statistic_sorted_many(
            profile.numeric_sorted, extents
        )
    return distances


def _merge_attribute_matches_batched(
    per_table: Dict[str, Dict[str, AttributeMatch]],
    attribute_name: str,
    refs: Sequence[AttributeRef],
    columns: Dict[EvidenceType, np.ndarray],
) -> None:
    """Fold one attribute's candidate distance columns into the alignments.

    The batched counterpart of the merge inside ``_collect_matches``: the
    Equation 2 populations are weighted per candidate pool with one sorted
    pass per evidence type (:func:`ccdf_weights_many`, bit-identical to the
    scalar ``ccdf_weight`` loop), the best-alignment rule scans the
    candidates in the same sorted-ref order with the same strict-improvement
    tie rule, and only the winning alignment of each source table is
    materialised as an :class:`AttributeMatch` — losers never leave the
    arrays.
    """
    weight_columns: Dict[EvidenceType, np.ndarray] = {}
    means: Optional[np.ndarray] = None
    for evidence in EvidenceType.all():
        column = columns[evidence]
        observed = column < 1.0
        weights = ccdf_weights_many(column, column[observed])
        weights[~observed] = 0.0
        weight_columns[evidence] = weights
        # Accumulating in EvidenceType.all() order reproduces the float
        # addition sequence of AttributeMatch.mean_distance exactly.
        means = column.copy() if means is None else means + column
    means /= len(EvidenceType.all())

    best: Dict[str, Tuple[float, int]] = {}
    mean_list = means.tolist()
    for index, ref in enumerate(refs):
        mean = mean_list[index]
        current = best.get(ref.table)
        if current is None or mean < current[0]:
            best[ref.table] = (mean, index)

    for table, (_, index) in best.items():
        ref = refs[index]
        match = AttributeMatch(
            target_attribute=attribute_name,
            source=ref,
            distances={
                evidence: float(columns[evidence][index])
                for evidence in EvidenceType.all()
            },
            weights={
                evidence: float(weight_columns[evidence][index])
                for evidence in EvidenceType.all()
            },
        )
        per_table.setdefault(table, {})[attribute_name] = match
