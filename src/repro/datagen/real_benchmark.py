"""Real-world-style corpora: dirty tables over overlapping topic families.

The paper's Smaller Real corpus consists of ~700 UK open-government tables
whose difficulty comes from *inconsistent representation*: related attributes
use different names, different value formats, abbreviations, typos and
missing cells, so systems that expect value equality (TUS, and to a lesser
degree Aurum) miss relationships that D3L's finer-grained features catch.

This generator reproduces that regime.  Each corpus consists of topic
*families* (GP practices, school performance, business rates, ...).  Every
table of a family is generated independently from the family's semantic
domains — values are freshly sampled (so exact overlap is limited to the
finite categorical lexicons), attribute names are sampled from the domain's
alias list, and a configurable fraction of cells receives representational
perturbations from :mod:`repro.datagen.noise`.

The same generator, with larger parameters, stands in for the Larger Real
corpus used in the efficiency experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.datagen.base_tables import BaseTableSpec, default_base_specs, spread_specs_by_topic
from repro.datagen.corpus import Benchmark
from repro.datagen.ground_truth import GroundTruth
from repro.datagen.noise import dirty_value
from repro.datagen.vocab import Vocabulary, default_vocabulary
from repro.lake.datalake import DataLake
from repro.tables.table import Table


@dataclass
class RealBenchmarkConfig:
    """Parameters of the real-world-style corpus generator."""

    num_families: int = 12
    tables_per_family: int = 10
    min_columns: int = 3
    min_rows: int = 30
    max_rows: int = 120
    dirtiness: float = 0.35
    name: str = "smaller_real"
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_families <= 0 or self.tables_per_family <= 0:
            raise ValueError("family counts must be positive")
        if self.min_columns < 1:
            raise ValueError("min_columns must be at least 1")
        if not 0 < self.min_rows <= self.max_rows:
            raise ValueError("row bounds must satisfy 0 < min_rows <= max_rows")
        if not 0.0 <= self.dirtiness <= 1.0:
            raise ValueError("dirtiness must be in [0, 1]")


def _generate_family_table(
    spec: BaseTableSpec,
    family_index: int,
    table_index: int,
    vocabulary: Vocabulary,
    config: RealBenchmarkConfig,
    rng: np.random.Generator,
    entity_pool: Sequence[str],
) -> Dict[str, object]:
    """Generate one dirty table of a topic family, plus its metadata.

    ``entity_pool`` is the family's shared pool of subject entities: tables
    about the same entity type in a real lake describe overlapping entity
    populations (the same GP practices appear in the directory, the funding
    table and the inspection table), so each table samples its subject values
    from the pool and then renders them inconsistently.
    """
    domains = list(spec.domains)
    subject_domain = spec.subject_domain
    supporting = domains[1:]
    num_supporting = int(
        rng.integers(max(config.min_columns - 1, 1), len(supporting) + 1)
    )
    chosen_supporting = list(
        rng.choice(len(supporting), size=min(num_supporting, len(supporting)), replace=False)
    )
    chosen_domains = [subject_domain] + [supporting[i] for i in sorted(chosen_supporting)]

    rows = int(rng.integers(config.min_rows, config.max_rows + 1))
    table_name = f"{spec.name}_real_{family_index:02d}_{table_index:03d}"

    used_names: Dict[str, int] = {}
    data: Dict[str, List[Optional[str]]] = {}
    column_domains: Dict[str, str] = {}
    subject_column: Optional[str] = None
    for domain_name in chosen_domains:
        domain = vocabulary.domain(domain_name)
        alias = domain.aliases[int(rng.integers(0, len(domain.aliases)))]
        if alias in used_names:
            used_names[alias] += 1
            alias = f"{alias} {used_names[alias]}"
        else:
            used_names[alias] = 1
        if domain_name == subject_domain and entity_pool:
            chosen = rng.choice(len(entity_pool), size=min(rows, len(entity_pool)), replace=False)
            clean_values = [entity_pool[i] for i in chosen]
            clean_values += domain.sample(rng, rows - len(clean_values))
        else:
            clean_values = domain.sample(rng, rows)
        if domain.numeric:
            values: List[Optional[str]] = list(clean_values)
        else:
            values = [
                dirty_value(value, rng, dirtiness=config.dirtiness) for value in clean_values
            ]
        data[alias] = values
        column_domains[alias] = domain_name
        if domain_name == subject_domain:
            subject_column = alias

    return {
        "table": Table.from_dict(table_name, data),
        "column_domains": column_domains,
        "subject_column": subject_column,
    }


def generate_real_benchmark(
    config: Optional[RealBenchmarkConfig] = None,
    vocabulary: Optional[Vocabulary] = None,
    specs: Optional[Sequence[BaseTableSpec]] = None,
) -> Benchmark:
    """Generate a real-world-style corpus with its ground truth."""
    config = config or RealBenchmarkConfig()
    vocabulary = vocabulary or default_vocabulary()
    specs = list(specs) if specs is not None else default_base_specs()
    specs = spread_specs_by_topic(specs, config.num_families)

    rng = np.random.default_rng(config.seed)
    lake = DataLake(config.name)
    ground_truth = GroundTruth()

    # Tables are related when they are about the same kind of entity — the
    # judgement a human annotator makes for the paper's Smaller Real ground
    # truth.  Families whose specifications share a subject domain (GP
    # practices and GP funding, say) therefore form one relatedness group.
    # Families about the same entity type share one pool of subject entities,
    # so that (as in real open data) the same practices/schools/businesses
    # recur across the tables that describe them.
    entity_pools: Dict[str, List[str]] = {}
    pool_size = 2 * config.max_rows
    for spec in specs:
        if spec.subject_domain not in entity_pools:
            domain = vocabulary.domain(spec.subject_domain)
            seen: Set[str] = set()
            pool: List[str] = []
            # Low-cardinality domains (weekdays, service catalogues) cannot
            # yield pool_size distinct entities; stop after a bounded number
            # of attempts and use whatever distinct values exist.
            for _ in range(pool_size * 20):
                if len(pool) >= pool_size:
                    break
                value = domain.generate(rng)
                if value not in seen:
                    seen.add(value)
                    pool.append(value)
            entity_pools[spec.subject_domain] = pool

    tables_by_subject_domain: Dict[str, List[str]] = {}
    for family_index, spec in enumerate(specs):
        for table_index in range(config.tables_per_family):
            generated = _generate_family_table(
                spec,
                family_index,
                table_index,
                vocabulary,
                config,
                rng,
                entity_pool=entity_pools[spec.subject_domain],
            )
            table: Table = generated["table"]  # type: ignore[assignment]
            lake.add_table(table)
            tables_by_subject_domain.setdefault(spec.subject_domain, []).append(table.name)
            ground_truth.add_table(
                table.name,
                generated["column_domains"],  # type: ignore[arg-type]
                subject_attribute=generated["subject_column"],  # type: ignore[arg-type]
            )
    for related_group in tables_by_subject_domain.values():
        ground_truth.mark_group_related(related_group)

    return Benchmark(
        name=config.name,
        lake=lake,
        ground_truth=ground_truth,
        vocabulary=vocabulary,
    )
