"""Hash primitives shared by the LSH machinery.

Two ingredients are needed:

* a stable 64-bit hash of arbitrary tokens (``hash_token``) that does not
  depend on ``PYTHONHASHSEED`` so that signatures are reproducible across
  processes, and
* a family of universal hash functions (``HashFamily``) of the form
  ``h_i(x) = (a_i * x + b_i) mod p`` used to simulate the random permutations
  MinHash requires.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Sequence

import numpy as np

#: Mersenne prime used by the universal hash family (same as datasketch).
MERSENNE_PRIME = np.uint64((1 << 61) - 1)
#: Maximum hash value produced for tokens.
MAX_HASH = np.uint64((1 << 32) - 1)

#: Upper bound on cached token hashes per seed.  Token vocabularies repeat
#: heavily across the columns of a lake, so a shared bounded cache turns most
#: ``hash_tokens`` work into dictionary lookups.
TOKEN_HASH_CACHE_LIMIT = 1 << 20

#: Row granularity of the batched MinHash path: distinct hash values are
#: permuted in slices of this many rows, and signatures are reduced in blocks
#: of this many sets, so every transient stays a few hundred KB — small
#: enough to live in L2 cache, which is where the batched path wins over one
#: huge bandwidth-bound matrix pass.
MINHASH_BATCH_BLOCK_ROWS = 256

#: Below this many non-empty sets a batch falls back to the per-set path:
#: the dedup + sort setup of the batched kernel only pays for itself once a
#: batch spans enough columns to share vocabulary.
MINHASH_BATCH_MIN_SETS = 32

_token_hash_cache: Dict[int, Dict[str, int]] = {}


def hash_token(token: str, seed: int = 0) -> int:
    """Stable 32-bit hash of ``token``.

    Uses blake2b keyed by ``seed`` so different indexes can use independent
    token hashes while remaining deterministic across runs.
    """
    digest = hashlib.blake2b(
        token.encode("utf-8", errors="replace"),
        digest_size=8,
        key=seed.to_bytes(8, "little", signed=False),
    ).digest()
    return int.from_bytes(digest[:4], "little")


def clear_token_hash_cache() -> None:
    """Drop every cached token hash (exposed for tests and benchmarks)."""
    _token_hash_cache.clear()


def hash_tokens(tokens: Iterable[str], seed: int = 0) -> np.ndarray:
    """Vector of stable hashes for ``tokens`` (deduplicated, order-free).

    The whole token set is hashed in one pass through a tight local-binding
    loop; hits come from an LRU cache shared across columns (hits refresh
    recency via dict ordering).  Values are identical to per-token
    :func:`hash_token` calls — misses delegate to it.
    """
    unique = set(tokens)
    if not unique:
        return np.empty(0, dtype=np.uint64)
    cache = _token_hash_cache.setdefault(seed, {})
    cache_pop = cache.pop
    hasher = hash_token
    out = np.empty(len(unique), dtype=np.uint64)
    for position, token in enumerate(unique):
        hashed = cache_pop(token, None)
        if hashed is None:
            hashed = hasher(token, seed=seed)
            if len(cache) >= TOKEN_HASH_CACHE_LIMIT:
                # Evict the least recently used entry (dict order = recency).
                cache_pop(next(iter(cache)))
        cache[token] = hashed
        out[position] = hashed
    return out


class HashFamily:
    """A family of ``size`` universal hash functions over 32-bit inputs.

    All MinHash signatures that should be comparable must be generated from
    the same family (same ``size`` and ``seed``), which is how
    :class:`~repro.lsh.minhash.MinHashFactory` uses it.
    """

    def __init__(self, size: int, seed: int = 1) -> None:
        if size <= 0:
            raise ValueError("hash family size must be positive")
        self.size = size
        self.seed = seed
        generator = np.random.default_rng(seed)
        # Coefficients a must be non-zero for the family to be universal.
        self._a = generator.integers(1, int(MERSENNE_PRIME), size=size, dtype=np.uint64)
        self._b = generator.integers(0, int(MERSENNE_PRIME), size=size, dtype=np.uint64)

    def permute(self, hashed_values: np.ndarray) -> np.ndarray:
        """Apply every function in the family to each value in ``hashed_values``.

        Returns an array of shape ``(len(hashed_values), size)``.
        """
        if hashed_values.size == 0:
            return np.empty((0, self.size), dtype=np.uint64)
        values = hashed_values.astype(np.uint64).reshape(-1, 1)
        permuted = (values * self._a + self._b) % MERSENNE_PRIME
        return np.bitwise_and(permuted, MAX_HASH)

    def minhash_values(self, hashed_values: np.ndarray) -> np.ndarray:
        """Column-wise minima of :meth:`permute`, i.e. a MinHash signature."""
        if hashed_values.size == 0:
            return np.full(self.size, MAX_HASH, dtype=np.uint64)
        return self.permute(hashed_values).min(axis=0)

    def minhash_values_batch(
        self,
        hashed_value_arrays: Sequence[np.ndarray],
        block_rows: int = MINHASH_BATCH_BLOCK_ROWS,
    ) -> np.ndarray:
        """MinHash signatures of many token-hash sets in one shared pass.

        Returns an array of shape ``(len(hashed_value_arrays), size)`` whose
        row ``i`` equals ``minhash_values(hashed_value_arrays[i])`` bit for
        bit.  Three exact transformations make the batch faster than one
        :meth:`minhash_values` call per set:

        * **sharing** — the sets of one table overlap heavily (q-gram,
          token, and format vocabularies repeat across columns), so every
          *distinct* hash value is permuted exactly once; ``(a * x + b) % p``
          is by far the hot arithmetic;
        * **narrowing** — permuted values are masked to 32 bits, so the
          permutation table is stored as uint32 (half the memory traffic of
          the scalar path's uint64 intermediates) and only the final
          signature is widened back;
        * **cache blocking** — values are permuted in ``block_rows`` slices
          and signatures reduced over blocks of ``block_rows`` sets, sorted
          by descending size, sweeping one value column at a time over the
          still-active prefix (``minima[:active]``), so every transient
          stays L2-resident instead of streaming one huge matrix.

        Minimum over unsigned integers is associative and commutative and the
        32-bit narrowing is lossless, so the result is the scalar one, bit
        for bit — which ``tests/core/test_batched_indexing.py`` locks down.
        """
        count = len(hashed_value_arrays)
        signatures = np.full((count, self.size), MAX_HASH, dtype=np.uint64)
        arrays = []
        populated = []
        for index in range(count):
            values = np.asarray(hashed_value_arrays[index], dtype=np.uint64)
            if values.size:
                arrays.append(values)
                populated.append(index)
        if not arrays:
            return signatures
        if len(arrays) < MINHASH_BATCH_MIN_SETS:
            # Tiny batches (a narrow table) cannot amortise the dedup + sort
            # setup; the per-set path is faster and trivially identical.
            for index, values in zip(populated, arrays):
                signatures[index] = self.minhash_values(values)
            return signatures
        sizes = np.fromiter((array.size for array in arrays), dtype=np.intp, count=len(arrays))
        order = np.argsort(-sizes, kind="stable")
        arrays = [arrays[position] for position in order]
        positions = np.asarray(populated, dtype=np.intp)[order]
        sizes = sizes[order]
        unique, inverse = np.unique(np.concatenate(arrays), return_inverse=True)
        permuted = np.empty((unique.size, self.size), dtype=np.uint32)
        for start in range(0, unique.size, block_rows):
            stop = min(start + block_rows, unique.size)
            permuted[start:stop] = self.permute(unique[start:stop])
        starts = np.zeros(len(arrays) + 1, dtype=np.intp)
        np.cumsum(sizes, out=starts[1:])
        for low in range(0, len(arrays), block_rows):
            high = min(low + block_rows, len(arrays))
            block_sizes = sizes[low:high]
            longest = int(block_sizes[0])
            padded = np.zeros((high - low, longest), dtype=np.intp)
            padded[np.arange(longest) < block_sizes[:, None]] = inverse[
                starts[low] : starts[high]
            ]
            columns = np.ascontiguousarray(padded.T)
            minima = permuted[columns[0]].copy()
            for depth in range(1, longest):
                active = int(np.searchsorted(-block_sizes, -(depth + 1), side="right"))
                np.minimum(
                    minima[:active], permuted[columns[depth, :active]], out=minima[:active]
                )
            signatures[positions[low:high]] = minima
        return signatures

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashFamily):
            return NotImplemented
        return self.size == other.size and self.seed == other.seed

    def __hash__(self) -> int:
        return hash((self.size, self.seed))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"HashFamily(size={self.size}, seed={self.seed})"


def stable_uint64(parts: Sequence[object], seed: int = 0) -> int:
    """Stable 64-bit hash of a tuple of parts (used for bucket keys)."""
    joined = "".join(str(part) for part in parts)
    digest = hashlib.blake2b(
        joined.encode("utf-8", errors="replace"),
        digest_size=8,
        key=seed.to_bytes(8, "little", signed=False),
    ).digest()
    return int.from_bytes(digest, "little")
