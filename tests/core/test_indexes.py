"""Tests for the four D3L LSH indexes (Algorithm 1 construction)."""

import pytest

from repro.core.config import D3LConfig
from repro.core.evidence import EvidenceType
from repro.core.indexes import D3LIndexes
from repro.lake.datalake import AttributeRef, DataLake
from repro.tables.table import Table


@pytest.fixture(scope="module")
def config():
    return D3LConfig(num_hashes=128, embedding_dimension=16, min_candidates=20)


@pytest.fixture(scope="module")
def indexed(config, figure1_tables):
    indexes = D3LIndexes(config=config)
    indexes.add_lake(figure1_tables["lake"])
    return indexes


class TestConstruction:
    def test_all_attributes_profiled(self, indexed, figure1_tables):
        expected = sum(table.arity for table in figure1_tables["sources"])
        assert indexed.attribute_count == expected

    def test_table_names(self, indexed):
        assert set(indexed.table_names) == {"gp_practices_s1", "gp_funding_s2", "local_gps_s3"}

    def test_textual_attribute_indexed_everywhere(self, indexed):
        ref = AttributeRef("gp_funding_s2", "City")
        for evidence in EvidenceType.indexed():
            assert indexed.signature(evidence, ref) is not None

    def test_numeric_attribute_not_in_value_or_embedding_index(self, indexed):
        ref = AttributeRef("gp_practices_s1", "Patients")
        assert indexed.signature(EvidenceType.VALUE, ref) is None
        assert indexed.signature(EvidenceType.EMBEDDING, ref) is None

    def test_numeric_attribute_in_name_and_format_index(self, indexed):
        ref = AttributeRef("gp_practices_s1", "Patients")
        assert indexed.signature(EvidenceType.NAME, ref) is not None
        assert indexed.signature(EvidenceType.FORMAT, ref) is not None

    def test_subject_attributes_identified(self, indexed):
        assert indexed.subject_attribute("gp_practices_s1") == "Practice Name"
        assert indexed.subject_attribute("local_gps_s3") == "GP"
        assert indexed.subject_attribute("unknown") is None

    def test_forest_sizes_match_inserted_signatures(self, indexed):
        for evidence in EvidenceType.indexed():
            forest = indexed.forest(evidence)
            signatures = sum(
                1
                for ref in indexed.profiles
                if indexed.signature(evidence, ref) is not None
            )
            assert len(forest) == signatures


class TestLookup:
    def test_lookup_finds_same_named_attribute(self, indexed, figure1_tables):
        target_profile = indexed.profile_table(figure1_tables["target"])
        city = target_profile.profile("City")
        results = indexed.lookup(EvidenceType.NAME, city, k=10)
        assert AttributeRef("gp_funding_s2", "City") in [ref for ref, _ in results]

    def test_lookup_distances_sorted_and_bounded(self, indexed, figure1_tables):
        target_profile = indexed.profile_table(figure1_tables["target"])
        city = target_profile.profile("City")
        results = indexed.lookup(EvidenceType.VALUE, city, k=10)
        distances = [distance for _, distance in results]
        assert distances == sorted(distances)
        assert all(0.0 <= distance <= 1.0 for distance in distances)

    def test_lookup_respects_k(self, indexed, figure1_tables):
        target_profile = indexed.profile_table(figure1_tables["target"])
        city = target_profile.profile("City")
        assert len(indexed.lookup(EvidenceType.NAME, city, k=1)) <= 1

    def test_lookup_excludes_table(self, indexed, figure1_tables):
        source = figure1_tables["sources"][1]
        profile = indexed.profile_table(source).profile("City")
        results = indexed.lookup(
            EvidenceType.NAME, profile, k=10, exclude_table=source.name
        )
        assert all(ref.table != source.name for ref, _ in results)

    def test_lookup_on_distribution_evidence_rejected(self, indexed, figure1_tables):
        target_profile = indexed.profile_table(figure1_tables["target"])
        with pytest.raises(ValueError):
            indexed.lookup(EvidenceType.DISTRIBUTION, target_profile.profile("City"), k=5)

    def test_lookup_with_empty_evidence_returns_nothing(self, indexed, config):
        table = Table.from_dict("numbers_only", {"Count": ["1", "2", "3"]})
        profile = indexed.profile_table(table).profile("Count")
        assert indexed.lookup(EvidenceType.VALUE, profile, k=5) == []


class TestAttributeDistance:
    def test_identical_attributes_have_zero_name_distance(self, indexed, figure1_tables):
        source = figure1_tables["sources"][1]
        profile = indexed.profile_table(source).profile("Postcode")
        distance = indexed.attribute_distance(
            EvidenceType.NAME, profile, AttributeRef("gp_funding_s2", "Postcode")
        )
        assert distance == 0.0

    def test_distance_for_unindexed_evidence_is_one(self, indexed, figure1_tables):
        target_profile = indexed.profile_table(figure1_tables["target"])
        hours = target_profile.profile("Hours")
        distance = indexed.attribute_distance(
            EvidenceType.VALUE, hours, AttributeRef("gp_practices_s1", "Patients")
        )
        assert distance == 1.0

    def test_distribution_distance_between_numeric_attributes(self, indexed, figure1_tables):
        profile = indexed.profile_table(figure1_tables["sources"][0]).profile("Patients")
        distance = indexed.attribute_distance(
            EvidenceType.DISTRIBUTION, profile, AttributeRef("gp_funding_s2", "Payment")
        )
        assert 0.0 <= distance <= 1.0

    def test_distribution_distance_with_text_is_one(self, indexed, figure1_tables):
        profile = indexed.profile_table(figure1_tables["target"]).profile("City")
        distance = indexed.attribute_distance(
            EvidenceType.DISTRIBUTION, profile, AttributeRef("gp_funding_s2", "City")
        )
        assert distance == 1.0

    def test_distance_bounded(self, indexed, figure1_tables):
        target_profile = indexed.profile_table(figure1_tables["target"])
        for attribute in target_profile.attributes.values():
            for ref in indexed.profiles:
                for evidence in EvidenceType.all():
                    distance = indexed.attribute_distance(evidence, attribute, ref)
                    assert 0.0 <= distance <= 1.0


class TestSpaceAccounting:
    def test_index_bytes_per_index(self, indexed):
        sizes = indexed.index_bytes()
        assert set(sizes) == {"IN", "IV", "IF", "IE", "profiles"}
        assert all(size >= 0 for size in sizes.values())

    def test_total_bytes(self, indexed):
        assert indexed.estimated_bytes() == sum(indexed.index_bytes().values())
        assert indexed.estimated_bytes() > 0
