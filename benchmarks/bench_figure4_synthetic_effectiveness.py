"""Figure 4 / Experiment 2 — precision and recall on the Synthetic corpus.

Compares D3L, TUS and Aurum as the answer size grows.  The paper's shape:
all systems do comparatively well on this clean, consistently represented
corpus, with D3L ahead on both precision and recall for most of the k range.
"""

import numpy as np

from conftest import SYNTHETIC_KS, NUM_TARGETS, run_once

from repro.evaluation.experiments import experiment_effectiveness


def test_figure4_synthetic_effectiveness(benchmark, record_rows, synthetic_suite):
    rows = run_once(
        benchmark,
        experiment_effectiveness,
        synthetic_suite,
        ks=SYNTHETIC_KS,
        num_targets=NUM_TARGETS,
        seed=4,
    )
    record_rows(
        "figure4_synthetic_effectiveness",
        rows,
        "Figure 4: precision/recall on Synthetic (D3L vs TUS vs Aurum)",
    )

    def mean_metric(system, metric):
        return float(np.mean([row[metric] for row in rows if row["system"] == system]))

    # Headline shape: D3L is at least as effective as both baselines.
    assert mean_metric("d3l", "recall") >= mean_metric("tus", "recall") - 0.05
    assert mean_metric("d3l", "precision") >= mean_metric("aurum", "precision") - 0.05
    # Recall grows with k for every system.
    for system in ("d3l", "tus", "aurum"):
        series = sorted(
            ((row["k"], row["recall"]) for row in rows if row["system"] == system)
        )
        assert series[-1][1] >= series[0][1]
