"""Experiment runners: one per table/figure of the paper's evaluation.

Every runner returns plain data (lists of dictionaries) so that the
``benchmarks/`` scripts can both print the series the paper reports and
assert on their shape.  All runners average over a configurable number of
randomly selected targets, mirroring the paper's protocol of averaging over
100 random targets per repository.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.baselines.aurum import Aurum
from repro.baselines.knowledge_base import KnowledgeBase
from repro.baselines.tus import TableUnionSearch
from repro.core.config import D3LConfig
from repro.core.discovery import D3L
from repro.core.evidence import EvidenceType
from repro.core.weights import EvidenceWeights, train_evidence_weights
from repro.datagen.corpus import Benchmark, build_embedding_corpus, build_knowledge_base
from repro.datagen.synthetic_benchmark import SyntheticBenchmarkConfig, generate_synthetic_benchmark
from repro.evaluation.coverage import target_coverage_at_k, target_coverage_with_joins
from repro.evaluation.metrics import (
    attribute_precision_at_k,
    attribute_precision_with_joins,
    precision_recall_at_k,
)
from repro.lake.datalake import DataLake
from repro.ml.cross_validation import k_fold_indices
from repro.ml.subject_attribute import SubjectAttributeClassifier
from repro.tables.table import Table
from repro.text.embeddings import CooccurrenceEmbedding, WordEmbeddingModel


# --------------------------------------------------------------------------- #
# engine construction
# --------------------------------------------------------------------------- #


@dataclass
class EngineSuite:
    """The three systems indexed over the same benchmark corpus."""

    benchmark: Benchmark
    config: D3LConfig
    d3l: D3L
    tus: Optional[TableUnionSearch] = None
    aurum: Optional[Aurum] = None
    embedding_model: Optional[WordEmbeddingModel] = None
    knowledge_base: Optional[KnowledgeBase] = None

    def systems(self) -> Dict[str, object]:
        """Mapping of system name to engine, for iteration in experiments."""
        result: Dict[str, object] = {"d3l": self.d3l}
        if self.tus is not None:
            result["tus"] = self.tus
        if self.aurum is not None:
            result["aurum"] = self.aurum
        return result


def build_embedding_model(benchmark: Benchmark, config: D3LConfig) -> WordEmbeddingModel:
    """Train the corpus-aware embedding model used in place of fastText."""
    sentences = build_embedding_corpus(benchmark.vocabulary, seed=config.seed)
    return CooccurrenceEmbedding.train(
        sentences, dimension=config.embedding_dimension, seed=config.seed
    )


def build_subject_classifier(
    benchmark: Benchmark, seed: int = 0
) -> Optional[SubjectAttributeClassifier]:
    """Train the subject-attribute classifier on the benchmark's labels."""
    labelled = benchmark.labelled_subject_tables()
    if len(labelled) < 10:
        return None
    classifier = SubjectAttributeClassifier(seed=seed)
    try:
        classifier.fit(labelled)
    except ValueError:
        return None
    return classifier


def train_d3l_weights(
    engine: D3L,
    benchmark: Benchmark,
    num_targets: int = 15,
    k: int = 30,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> EvidenceWeights:
    """Train the Equation 3 weights from the benchmark ground truth.

    For a sample of targets the engine is queried with its current weights;
    every candidate's Equation 1 distance vector becomes a training example
    labelled with the ground-truth relatedness of the (target, candidate)
    pair — the construction the paper describes in section III-D.
    """
    targets = benchmark.pick_targets(num_targets, seed=seed)
    pairs: List[Tuple[Dict[EvidenceType, float], int]] = []
    for target in targets:
        answer = engine._execute_query(target, k=k)
        for result in answer.results:
            label = 1 if benchmark.ground_truth.is_related(target.name, result.table_name) else 0
            pairs.append((result.evidence_distances, label))
    if not pairs:
        return engine.weights
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(len(pairs))
    cut = max(1, int(round(len(pairs) * test_fraction)))
    test_pairs = [pairs[i] for i in permutation[:cut]]
    train_pairs = [pairs[i] for i in permutation[cut:]]
    weights = train_evidence_weights(train_pairs, test_pairs)
    engine.set_weights(weights)
    return weights


def build_engine_suite(
    benchmark: Benchmark,
    systems: Sequence[str] = ("d3l", "tus", "aurum"),
    config: Optional[D3LConfig] = None,
    train_weights: bool = True,
    weight_training_targets: int = 15,
    seed: int = 0,
) -> EngineSuite:
    """Index every requested system over the benchmark corpus."""
    config = config or D3LConfig()
    embedding_model = build_embedding_model(benchmark, config)
    subject_classifier = build_subject_classifier(benchmark, seed=seed)

    d3l = D3L(
        config=config,
        embedding_model=embedding_model,
        subject_classifier=subject_classifier,
    )
    d3l.index_lake(benchmark.lake)
    if train_weights:
        train_d3l_weights(
            d3l, benchmark, num_targets=weight_training_targets, seed=seed
        )

    tus: Optional[TableUnionSearch] = None
    knowledge_base: Optional[KnowledgeBase] = None
    if "tus" in systems:
        knowledge_base = build_knowledge_base(benchmark.vocabulary, seed=config.seed)
        tus = TableUnionSearch(
            config=config, knowledge_base=knowledge_base, embedding_model=embedding_model
        )
        tus.index_lake(benchmark.lake)

    aurum: Optional[Aurum] = None
    if "aurum" in systems:
        aurum = Aurum(config=config)
        aurum.index_lake(benchmark.lake)

    return EngineSuite(
        benchmark=benchmark,
        config=config,
        d3l=d3l,
        tus=tus,
        aurum=aurum,
        embedding_model=embedding_model,
        knowledge_base=knowledge_base,
    )


# --------------------------------------------------------------------------- #
# Figure 2: repository statistics
# --------------------------------------------------------------------------- #


def _system_query(engine, target: Table, k: int):
    """Query one suite system, keeping D3L off its deprecated shim.

    The experiments are library internals: D3L goes straight to its
    sequential engine (identical answers, no DeprecationWarning, no planner
    overhead inside measured loops); the baselines expose plain ``query``.
    """
    if isinstance(engine, D3L):
        return engine._execute_query(target, k=k)
    return engine.query(target, k=k)


def experiment_repository_stats(benchmarks: Mapping[str, Benchmark]) -> List[Dict[str, object]]:
    """Arity, cardinality and data-type statistics per corpus (Figure 2)."""
    rows = []
    for label, benchmark in benchmarks.items():
        stats = benchmark.describe()
        rows.append(
            {
                "repository": label,
                "tables": stats["tables"],
                "attributes": stats["attributes"],
                "arity_mean": round(stats["arity_mean"], 2),
                "arity_max": stats["arity_max"],
                "cardinality_mean": round(stats["cardinality_mean"], 1),
                "cardinality_max": stats["cardinality_max"],
                "numeric_attribute_ratio": round(stats["numeric_attribute_ratio"], 3),
                "average_answer_size": round(stats["average_answer_size"], 1),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Table I: example attribute distances
# --------------------------------------------------------------------------- #


def figure1_tables() -> Tuple[Table, List[Table]]:
    """The target and sources of Figure 1 (the paper's running example)."""
    source_1 = Table.from_dict(
        "gp_practices_s1",
        {
            "Practice Name": ["Dr E Cullen", "Blackfriars", "Radclife Care", "Bolton Medical"],
            "Address": ["51 Botanic Av", "1a Chapel St", "9 Mirabel St", "21 Rupert St"],
            "City": ["Belfast", "Salford", "Manchester", "Bolton"],
            "Postcode": ["BT7 1JL", "M3 6AF", "M3 1NN", "BL3 6PY"],
            "Patients": ["1202", "3572", "2209", "1840"],
        },
    )
    source_2 = Table.from_dict(
        "gp_funding_s2",
        {
            "Practice": ["The London Clinic", "Blackfriars", "Radclife Care", "Bolton Medical"],
            "City": ["London", "Salford", "Manchester", "Bolton"],
            "Postcode": ["W1G 6BW", "M3 6AF", "M26 2SP", "BL3 6PY"],
            "Payment": ["73648", "15530", "20981", "17764"],
        },
    )
    source_3 = Table.from_dict(
        "local_gps_s3",
        {
            "GP": ["Blackfriars", "Radclife Care", "Bolton Medical"],
            "Location": ["Salford", "-", "Bolton"],
            "Opening hours": ["08:00-18:00", "07:00-20:00", "08:00-16:00"],
        },
    )
    target = Table.from_dict(
        "gps_target",
        {
            "Practice": ["Radclife", "Bolton Medical", "Blackfriars"],
            "Street": ["69 Church St", "21 Rupert St", "1a Chapel St"],
            "City": ["Manchester", "Bolton", "Salford"],
            "Postcode": ["M26 2SP", "BL3 6PY", "M3 6AF"],
            "Hours": ["07:00-20:00", "08:00-16:00", "08:00-18:00"],
        },
    )
    return target, [source_1, source_2, source_3]


def experiment_example_distances(config: Optional[D3LConfig] = None) -> List[Dict[str, object]]:
    """Table I: per-evidence distances between the target and S2 of Figure 1."""
    config = config or D3LConfig()
    target, sources = figure1_tables()
    lake = DataLake("figure1", sources)
    engine = D3L(config=config)
    engine.index_lake(lake)
    answer = engine._execute_query(target, k=len(sources))
    entry = answer.result_for("gp_funding_s2")
    rows: List[Dict[str, object]] = []
    if entry is None:
        return rows
    for match in sorted(entry.matches, key=lambda m: m.target_attribute):
        row: Dict[str, object] = {
            "pair": f"(T.{match.target_attribute}, S2.{match.source.column})"
        }
        for evidence in EvidenceType.all():
            row[f"D{evidence.value}"] = round(match.distances[evidence], 3)
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Experiment 1 (Figure 3): individual evidence effectiveness
# --------------------------------------------------------------------------- #


def experiment_individual_evidence(
    suite: EngineSuite,
    ks: Sequence[int],
    num_targets: int = 20,
    seed: int = 0,
    include_aggregate: bool = True,
) -> List[Dict[str, object]]:
    """Precision/recall per evidence type as the answer size grows (Figure 3)."""
    benchmark = suite.benchmark
    targets = benchmark.pick_targets(num_targets, seed=seed)
    max_k = max(ks)
    modes: List[Tuple[str, Optional[List[EvidenceType]]]] = [
        (evidence.value, [evidence]) for evidence in EvidenceType.indexed()
    ]
    if include_aggregate:
        modes.append(("all", None))

    rows: List[Dict[str, object]] = []
    for label, evidence_types in modes:
        answers = {
            target.name: suite.d3l._execute_query(
                target, k=max_k, evidence_types=evidence_types
            )
            for target in targets
        }
        for k in ks:
            precisions, recalls = [], []
            for target in targets:
                precision, recall = precision_recall_at_k(
                    answers[target.name], benchmark.ground_truth, target.name, k
                )
                precisions.append(precision)
                recalls.append(recall)
            rows.append(
                {
                    "evidence": label,
                    "k": k,
                    "precision": float(np.mean(precisions)) if precisions else 0.0,
                    "recall": float(np.mean(recalls)) if recalls else 0.0,
                }
            )
    return rows


# --------------------------------------------------------------------------- #
# Experiments 2-3 (Figures 4-5): comparative effectiveness
# --------------------------------------------------------------------------- #


def experiment_effectiveness(
    suite: EngineSuite,
    ks: Sequence[int],
    num_targets: int = 20,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Precision/recall of D3L, TUS and Aurum as the answer size grows."""
    benchmark = suite.benchmark
    targets = benchmark.pick_targets(num_targets, seed=seed)
    max_k = max(ks)
    rows: List[Dict[str, object]] = []
    for system_name, engine in suite.systems().items():
        answers = {target.name: _system_query(engine, target, max_k) for target in targets}
        for k in ks:
            precisions, recalls = [], []
            for target in targets:
                precision, recall = precision_recall_at_k(
                    answers[target.name], benchmark.ground_truth, target.name, k
                )
                precisions.append(precision)
                recalls.append(recall)
            rows.append(
                {
                    "system": system_name,
                    "k": k,
                    "precision": float(np.mean(precisions)) if precisions else 0.0,
                    "recall": float(np.mean(recalls)) if recalls else 0.0,
                }
            )
    return rows


# --------------------------------------------------------------------------- #
# Experiment 4 (Figure 6a): indexing time vs lake size
# --------------------------------------------------------------------------- #


def experiment_indexing_time(
    table_counts: Sequence[int],
    systems: Sequence[str] = ("d3l", "tus", "aurum"),
    config: Optional[D3LConfig] = None,
    base_rows: int = 120,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Wall-clock time to index growing lakes (Figure 6a).

    Lakes of increasing size are generated with the synthetic derivation
    procedure (the paper uses growing samples of its Larger Real corpus; what
    matters for the scaling curve is the table/attribute count).
    """
    config = config or D3LConfig()
    rows: List[Dict[str, object]] = []
    for count in table_counts:
        tables_per_base = max(1, count // 16)
        benchmark = generate_synthetic_benchmark(
            SyntheticBenchmarkConfig(
                num_base_tables=16,
                tables_per_base=tables_per_base,
                base_rows=base_rows,
                max_rows=min(120, base_rows),
                seed=seed,
            )
        )
        lake = benchmark.lake
        row: Dict[str, object] = {
            "tables": len(lake),
            "attributes": lake.attribute_count,
        }
        if "d3l" in systems:
            embedding_model = build_embedding_model(benchmark, config)
            engine = D3L(config=config, embedding_model=embedding_model)
            start = time.perf_counter()
            engine.index_lake(lake)
            row["d3l_seconds"] = time.perf_counter() - start
        if "tus" in systems:
            knowledge_base = build_knowledge_base(benchmark.vocabulary, seed=config.seed)
            embedding_model = build_embedding_model(benchmark, config)
            tus = TableUnionSearch(
                config=config, knowledge_base=knowledge_base, embedding_model=embedding_model
            )
            start = time.perf_counter()
            tus.index_lake(lake)
            row["tus_seconds"] = time.perf_counter() - start
        if "aurum" in systems:
            aurum = Aurum(config=config)
            start = time.perf_counter()
            aurum.index_lake(lake)
            row["aurum_seconds"] = time.perf_counter() - start
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Experiments 5-6 (Figures 6b-6c): search time vs answer size
# --------------------------------------------------------------------------- #


def experiment_search_time(
    suite: EngineSuite,
    ks: Sequence[int],
    num_targets: int = 10,
    seed: int = 0,
    query_workers: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Average per-query search time as the answer size grows.

    D3L and TUS are parameterised by k (every query is an index lookup task);
    Aurum's query model is not, so — as in the paper — its average search
    time is reported once per corpus (attached to every row for convenience).
    D3L is additionally timed through its batched engine
    (``d3l_batch_seconds``; rankings identical to the sequential timing);
    ``query_workers > 1`` fans the batched queries out over that many worker
    processes.
    """
    benchmark = suite.benchmark
    targets = benchmark.pick_targets(num_targets, seed=seed)
    rows: List[Dict[str, object]] = []

    aurum_seconds: Optional[float] = None
    if suite.aurum is not None and targets:
        start = time.perf_counter()
        for target in targets:
            suite.aurum.query(target, k=max(ks))
        aurum_seconds = (time.perf_counter() - start) / len(targets)

    for k in ks:
        row: Dict[str, object] = {"k": k}
        # Time the engines directly (not the deprecated shims): the timed
        # series predate the request/response planner and must stay
        # comparable PR over PR, without shim/planner overhead.
        start = time.perf_counter()
        for target in targets:
            suite.d3l._execute_query(target, k=k)
        row["d3l_seconds"] = (time.perf_counter() - start) / max(len(targets), 1)
        start = time.perf_counter()
        for target in targets:
            suite.d3l._execute_query_batch(target, k=k, workers=query_workers)
        row["d3l_batch_seconds"] = (time.perf_counter() - start) / max(len(targets), 1)
        if suite.tus is not None:
            start = time.perf_counter()
            for target in targets:
                suite.tus.query(target, k=k)
            row["tus_seconds"] = (time.perf_counter() - start) / max(len(targets), 1)
        if aurum_seconds is not None:
            row["aurum_seconds"] = aurum_seconds
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# serving tier: DiscoverySession cache behaviour (not in the paper)
# --------------------------------------------------------------------------- #


def experiment_session_serving(
    suite: EngineSuite,
    k: int = 10,
    num_targets: int = 5,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Repeated-target serving through :class:`~repro.core.api.DiscoverySession`.

    A serving tier answers the same targets over and over (dashboards, k
    sweeps, evidence ablations).  This experiment sweeps the same targets
    through a session twice and compares the cache-warm second sweep against
    the sequential oracle: the rankings must be identical and the warm sweep
    should be faster, since the session memoizes each target's Algorithm 1
    profile and query signatures.
    """
    from repro.core.api import DiscoverySession, QueryRequest

    targets = suite.benchmark.pick_targets(num_targets, seed=seed)
    if not targets:
        return []
    session = DiscoverySession(suite.d3l)

    start = time.perf_counter()
    first = [session.submit(QueryRequest(target=target, k=k)) for target in targets]
    first_seconds = (time.perf_counter() - start) / len(targets)
    start = time.perf_counter()
    second = [session.submit(QueryRequest(target=target, k=k)) for target in targets]
    second_seconds = (time.perf_counter() - start) / len(targets)

    identical = True
    for target, warm in zip(targets, second):
        oracle = suite.d3l._execute_query(target, k=k)
        if [(entry.table_name, entry.distance) for entry in oracle.results] != [
            (entry.table_name, entry.distance) for entry in warm.results
        ]:
            identical = False
    cache = session.cache_info()
    return [
        {
            "k": k,
            "num_targets": len(targets),
            "cold_seconds_per_query": first_seconds,
            "warm_seconds_per_query": second_seconds,
            "cache_speedup": first_seconds / max(second_seconds, 1e-12),
            "cache_hits": cache["hits"],
            "cache_misses": cache["misses"],
            "rankings_match_oracle": identical,
        }
    ]


# --------------------------------------------------------------------------- #
# Experiment 7 (Table II): space overhead
# --------------------------------------------------------------------------- #


def experiment_space_overhead(suites: Mapping[str, EngineSuite]) -> List[Dict[str, object]]:
    """Index space relative to lake size, per system and corpus (Table II)."""
    rows: List[Dict[str, object]] = []
    for label, suite in suites.items():
        lake_bytes = max(suite.benchmark.lake.estimated_bytes(), 1)
        row: Dict[str, object] = {"repository": label, "lake_bytes": lake_bytes}
        row["d3l_overhead"] = suite.d3l.indexes.estimated_bytes() / lake_bytes
        if suite.tus is not None:
            row["tus_overhead"] = suite.tus.estimated_bytes() / lake_bytes
        if suite.aurum is not None:
            row["aurum_overhead"] = suite.aurum.estimated_bytes() / lake_bytes
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Experiments 8-11 (Figures 7-8): impact of join opportunities
# --------------------------------------------------------------------------- #


def _d3l_joined_tables(suite: EngineSuite, target: Table, k: int) -> Tuple[object, Dict[str, Set[str]]]:
    from repro.core.api import QueryRequest, execute

    # The planner path of the deprecated D3L.query_with_joins shim: identical
    # answer (the batched engine equals the sequential oracle), no warning.
    augmented = execute(suite.d3l, QueryRequest(target=target, k=k, joins=True)).legacy
    per_start: Dict[str, Set[str]] = {}
    top_k = set(augmented.base.table_names(k))
    for start in top_k:
        per_start[start] = {
            name for name in augmented.tables_for(start) if name not in top_k
        }
    return augmented.base, per_start


def _aurum_joined_tables(
    suite: EngineSuite, target: Table, answer, k: int
) -> Dict[str, Set[str]]:
    assert suite.aurum is not None
    per_start: Dict[str, Set[str]] = {}
    top_k = set(answer.table_names(k))
    candidates = answer.candidate_tables()
    for start in top_k:
        reached = suite.aurum.joinable_tables(start, max_hops=suite.config.max_join_path_length)
        per_start[start] = {
            name
            for name in reached
            if name not in top_k and name != target.name and name in candidates
        }
    return per_start


def experiment_join_impact(
    suite: EngineSuite,
    ks: Sequence[int],
    num_targets: int = 15,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Target coverage and attribute precision with and without join paths.

    Produces one row per (system, k) with ``coverage`` and
    ``attribute_precision`` columns, for D3L, D3L+J, TUS, Aurum and Aurum+J
    (Figures 7 and 8).
    """
    benchmark = suite.benchmark
    ground_truth = benchmark.ground_truth
    targets = benchmark.pick_targets(num_targets, seed=seed)
    max_k = max(ks)

    accumulators: Dict[Tuple[str, int], List[Tuple[float, float]]] = {}

    def record(system: str, k: int, coverage: float, precision: float) -> None:
        accumulators.setdefault((system, k), []).append((coverage, precision))

    for target in targets:
        d3l_answer, d3l_joined = _d3l_joined_tables(suite, target, max_k)
        tus_answer = suite.tus.query(target, k=max_k) if suite.tus is not None else None
        aurum_answer = suite.aurum.query(target, k=max_k) if suite.aurum is not None else None
        aurum_joined = (
            _aurum_joined_tables(suite, target, aurum_answer, max_k)
            if aurum_answer is not None
            else {}
        )

        for k in ks:
            record(
                "d3l",
                k,
                target_coverage_at_k(d3l_answer, target, k),
                attribute_precision_at_k(d3l_answer, ground_truth, target.name, k),
            )
            record(
                "d3l+j",
                k,
                target_coverage_with_joins(d3l_answer, d3l_joined, target, k),
                attribute_precision_with_joins(
                    d3l_answer, d3l_joined, ground_truth, target.name, k
                ),
            )
            if tus_answer is not None:
                record(
                    "tus",
                    k,
                    target_coverage_at_k(tus_answer, target, k),
                    attribute_precision_at_k(tus_answer, ground_truth, target.name, k),
                )
            if aurum_answer is not None:
                record(
                    "aurum",
                    k,
                    target_coverage_at_k(aurum_answer, target, k),
                    attribute_precision_at_k(aurum_answer, ground_truth, target.name, k),
                )
                record(
                    "aurum+j",
                    k,
                    target_coverage_with_joins(aurum_answer, aurum_joined, target, k),
                    attribute_precision_with_joins(
                        aurum_answer, aurum_joined, ground_truth, target.name, k
                    ),
                )

    rows: List[Dict[str, object]] = []
    for (system, k), samples in sorted(accumulators.items()):
        coverages = [coverage for coverage, _ in samples]
        precisions = [precision for _, precision in samples]
        rows.append(
            {
                "system": system,
                "k": k,
                "coverage": float(np.mean(coverages)),
                "attribute_precision": float(np.mean(precisions)),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Learned-component accuracy claims (section III-C and III-D)
# --------------------------------------------------------------------------- #


def experiment_weight_training(
    train_benchmark: Benchmark,
    test_benchmark: Benchmark,
    config: Optional[D3LConfig] = None,
    num_targets: int = 15,
    k: int = 30,
    seed: int = 0,
) -> Dict[str, object]:
    """Train Equation 3 weights on one corpus, test on another (section III-D).

    Mirrors the paper: training pairs come from the Synthetic (TUS benchmark)
    ground truth, test pairs from the real-world benchmark; the reported
    accuracy corresponds to the paper's ~89% claim.
    """
    config = config or D3LConfig()

    def collect_pairs(benchmark: Benchmark) -> List[Tuple[Dict[EvidenceType, float], int]]:
        embedding_model = build_embedding_model(benchmark, config)
        engine = D3L(config=config, embedding_model=embedding_model)
        engine.index_lake(benchmark.lake)
        pairs: List[Tuple[Dict[EvidenceType, float], int]] = []
        for target in benchmark.pick_targets(num_targets, seed=seed):
            answer = engine._execute_query(target, k=k)
            for result in answer.results:
                label = (
                    1
                    if benchmark.ground_truth.is_related(target.name, result.table_name)
                    else 0
                )
                pairs.append((result.evidence_distances, label))
        return pairs

    train_pairs = collect_pairs(train_benchmark)
    test_pairs = collect_pairs(test_benchmark)
    weights = train_evidence_weights(train_pairs, test_pairs)
    return {
        "training_pairs": len(train_pairs),
        "test_pairs": len(test_pairs),
        "accuracy": weights.training_accuracy,
        "weights": {evidence.value: round(value, 4) for evidence, value in weights.values.items()},
    }


def experiment_subject_attribute_accuracy(
    benchmark: Benchmark,
    folds: int = 10,
    seed: int = 0,
) -> Dict[str, object]:
    """K-fold cross-validated subject-attribute identification accuracy.

    The paper reports ~89% average accuracy over 350 manually labelled
    data.gov.uk tables; here the labelled tables come from the corpus
    generator.
    """
    labelled = benchmark.labelled_subject_tables()
    if len(labelled) < folds:
        raise ValueError(
            f"need at least {folds} labelled tables, found {len(labelled)}"
        )
    accuracies: List[float] = []
    for train_index, test_index in k_fold_indices(len(labelled), folds, seed=seed):
        train_set = [labelled[i] for i in train_index]
        test_set = [labelled[i] for i in test_index]
        classifier = SubjectAttributeClassifier(seed=seed)
        try:
            classifier.fit(train_set)
        except ValueError:
            continue
        accuracies.append(classifier.accuracy(test_set))
    return {
        "tables": len(labelled),
        "folds": folds,
        "mean_accuracy": float(np.mean(accuracies)) if accuracies else 0.0,
        "fold_accuracies": [round(value, 4) for value in accuracies],
    }
