"""Lightweight typed table layer used throughout the reproduction.

The paper operates over tabular datasets (CSV files from open-government
portals).  This package provides the minimal relational substrate the rest of
the system needs: typed columns, tables, CSV I/O, and the relational
operations used by the benchmark generators and the join-path machinery
(projection, selection, join, union).
"""

from repro.tables.column import Column
from repro.tables.csv_io import read_csv, read_csv_directory, write_csv
from repro.tables.operations import (
    concat_rows,
    hash_join,
    natural_join,
    project,
    rename_columns,
    sample_rows,
    select,
    union,
)
from repro.tables.table import Table
from repro.tables.types import ValueType, coerce_numeric, infer_type, is_missing

__all__ = [
    "Column",
    "Table",
    "ValueType",
    "coerce_numeric",
    "concat_rows",
    "hash_join",
    "infer_type",
    "is_missing",
    "natural_join",
    "project",
    "read_csv",
    "read_csv_directory",
    "rename_columns",
    "sample_rows",
    "select",
    "union",
    "write_csv",
]
