"""Property-based tests for the distance space and aggregation invariants.

The paper's framework relies on every evidence distance living in [0, 1] and
on the aggregation (Equations 1-3) preserving that interval; these properties
are what make the five evidence types combinable in one distance space.
"""

from hypothesis import given, settings, strategies as st

from repro.core.aggregation import aggregate_column, combined_distance, evidence_vector
from repro.core.evidence import EvidenceType
from repro.core.profiles import AttributeMatch
from repro.core.weights import EvidenceWeights
from repro.lake.datalake import AttributeRef
from repro.stats.distributions import ccdf_weight
from repro.stats.ks import ks_statistic

unit = st.floats(min_value=0.0, max_value=1.0)
positive = st.floats(min_value=0.0, max_value=10.0)


def _matches(distance_rows):
    matches = []
    for index, row in enumerate(distance_rows):
        distances = dict(zip(EvidenceType.all(), row))
        weights = {evidence: 1.0 for evidence in EvidenceType.all()}
        matches.append(
            AttributeMatch(
                target_attribute=f"a{index}",
                source=AttributeRef("s", f"c{index}"),
                distances=distances,
                weights=weights,
            )
        )
    return matches


distance_rows = st.lists(st.tuples(unit, unit, unit, unit, unit), min_size=1, max_size=6)
weight_values = st.tuples(positive, positive, positive, positive, positive)


class TestAggregationProperties:
    @given(distance_rows)
    @settings(max_examples=80, deadline=None)
    def test_equation1_stays_in_unit_interval(self, rows):
        matches = _matches(rows)
        for evidence in EvidenceType.all():
            assert 0.0 <= aggregate_column(matches, evidence) <= 1.0

    @given(distance_rows)
    @settings(max_examples=80, deadline=None)
    def test_equation1_bounded_by_min_and_max(self, rows):
        matches = _matches(rows)
        for evidence in EvidenceType.all():
            values = [match.distances[evidence] for match in matches]
            aggregated = aggregate_column(matches, evidence)
            assert min(values) - 1e-9 <= aggregated <= max(values) + 1e-9

    @given(distance_rows, weight_values)
    @settings(max_examples=80, deadline=None)
    def test_equation3_stays_in_unit_interval(self, rows, weight_tuple):
        matches = _matches(rows)
        vector = evidence_vector(matches)
        weights = EvidenceWeights(dict(zip(EvidenceType.all(), weight_tuple)))
        assert 0.0 <= combined_distance(vector, weights) <= 1.0

    @given(st.tuples(unit, unit, unit, unit, unit), weight_values)
    @settings(max_examples=80, deadline=None)
    def test_equation3_zero_iff_all_weighted_dimensions_zero(self, values, weight_tuple):
        vector = dict(zip(EvidenceType.all(), values))
        weights = EvidenceWeights(dict(zip(EvidenceType.all(), weight_tuple)))
        distance = combined_distance(vector, weights)
        weighted_values = [
            value for value, weight in zip(values, weight_tuple) if weight > 0
        ]
        if weighted_values and max(weighted_values) == 0.0:
            assert distance == 0.0
        if distance == 0.0 and sum(weight_tuple) > 0:
            # Allow for floating-point underflow of (weight * value)^2.
            assert all(
                value * weight < 1e-6
                for value, weight in zip(values, weight_tuple)
                if weight > 0
            )


class TestWeightProperties:
    @given(unit, st.lists(unit, min_size=2, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_ccdf_weight_in_unit_interval(self, distance, population):
        assert 0.0 <= ccdf_weight(distance, population) <= 1.0

    @given(st.lists(unit, min_size=2, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_ccdf_weight_antitone_in_distance(self, population):
        small = min(population)
        large = max(population)
        assert ccdf_weight(small, population) >= ccdf_weight(large, population)


class TestKsProperties:
    samples = st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=60
    )

    @given(samples, samples)
    @settings(max_examples=80, deadline=None)
    def test_bounded(self, first, second):
        assert 0.0 <= ks_statistic(first, second) <= 1.0

    @given(samples, samples)
    @settings(max_examples=80, deadline=None)
    def test_symmetric(self, first, second):
        assert abs(ks_statistic(first, second) - ks_statistic(second, first)) < 1e-12

    @given(samples)
    @settings(max_examples=80, deadline=None)
    def test_identity(self, sample):
        assert ks_statistic(sample, sample) == 0.0
