"""Data lake abstraction: a registry of tables with no further metadata."""

from repro.lake.datalake import AttributeRef, DataLake

__all__ = ["AttributeRef", "DataLake"]
