"""Tier-1 wiring of the benchmark smoke checks (``benchmarks/bench_smoke.py``).

Benchmark regressions — a refactor dropping a tracked series from
``BENCH_hot_paths.json``, a floor constant vanishing, the batched query
engine diverging from its oracle — should fail the test suite, not wait for
the next manual benchmark run.
"""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SMOKE_PATH = REPO_ROOT / "benchmarks" / "bench_smoke.py"


@pytest.fixture(scope="module")
def bench_smoke():
    spec = importlib.util.spec_from_file_location("bench_smoke", SMOKE_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestQuickMode:
    def test_quick_mode_passes(self, bench_smoke):
        assert bench_smoke.run_quick() == []

    def test_cli_entry_point_passes(self):
        result = subprocess.run(
            [sys.executable, str(SMOKE_PATH), "--quick"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            timeout=300,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "passed" in result.stdout


class TestSchemaValidation:
    def test_recorded_payload_is_valid(self, bench_smoke):
        payload = json.loads(
            (REPO_ROOT / "BENCH_hot_paths.json").read_text(encoding="utf-8")
        )
        assert bench_smoke.validate_hot_paths_payload(payload) == []

    def test_missing_tracked_series_is_detected(self, bench_smoke):
        payload = json.loads(
            (REPO_ROOT / "BENCH_hot_paths.json").read_text(encoding="utf-8")
        )
        del payload["results"][-1]["batched_query"]
        problems = bench_smoke.validate_hot_paths_payload(payload)
        assert any("batched_query" in problem for problem in problems)

    def test_empty_results_are_detected(self, bench_smoke):
        problems = bench_smoke.validate_hot_paths_payload(
            {key: None for key in bench_smoke.TOP_LEVEL_KEYS} | {"results": []}
        )
        assert problems

    def test_floors_are_tracked(self, bench_smoke):
        assert bench_smoke._check_floors() == []


class TestServingRecord:
    @pytest.fixture()
    def payload(self):
        return json.loads(
            (REPO_ROOT / "BENCH_hot_paths.json").read_text(encoding="utf-8")
        )

    def test_missing_serving_section_is_detected(self, bench_smoke, payload):
        del payload["serving"]
        problems = bench_smoke.validate_hot_paths_payload(payload)
        assert any("serving" in problem for problem in problems)

    def test_missing_latency_percentile_is_detected(self, bench_smoke, payload):
        del payload["serving"]["closed_loop"]["latency_ms"]["p99"]
        problems = bench_smoke.validate_serving_section(payload)
        assert any("p99" in problem for problem in problems)

    def test_recorded_run_clears_the_throughput_floor(self, bench_smoke, payload):
        assert bench_smoke._check_recorded_serving_floor(payload) == []

    def test_throughput_regression_is_detected(self, bench_smoke, payload):
        payload["serving"]["closed_loop"]["qps"] = 0.01
        problems = bench_smoke._check_recorded_serving_floor(payload)
        assert any("floor" in problem for problem in problems)

    def test_unverified_responses_are_detected(self, bench_smoke, payload):
        payload["serving"]["responses_identical"] = False
        problems = bench_smoke._check_recorded_serving_floor(payload)
        assert any("identical" in problem for problem in problems)

class TestStaticAnalysisGate:
    def test_shipped_tree_is_clean(self, bench_smoke):
        assert bench_smoke._check_static_analysis() == []

    def test_seeded_rule_violation_fails_the_smoke(
        self, bench_smoke, tmp_path, monkeypatch
    ):
        bad = tmp_path / "src" / "core" / "parallel.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "def shard(tables):\n    return [name for name in set(tables)]\n"
        )
        monkeypatch.setattr(bench_smoke, "REPO_ROOT", tmp_path)
        problems = bench_smoke._check_static_analysis()
        assert any("R2" in problem for problem in problems)

    def test_seeded_lint_problem_fails_the_smoke(
        self, bench_smoke, tmp_path, monkeypatch
    ):
        bad = tmp_path / "src" / "mod.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import os\n\nVALUE = 1\n")
        monkeypatch.setattr(bench_smoke, "REPO_ROOT", tmp_path)
        problems = bench_smoke._check_static_analysis()
        assert any("imported but unused" in problem for problem in problems)


class TestIncrementalMutationRecord:
    @pytest.fixture()
    def payload(self):
        return json.loads(
            (REPO_ROOT / "BENCH_hot_paths.json").read_text(encoding="utf-8")
        )

    def test_missing_mutation_section_is_detected(self, bench_smoke, payload):
        del payload["incremental_mutation"]
        problems = bench_smoke.validate_hot_paths_payload(payload)
        assert any("incremental_mutation" in problem for problem in problems)

    def test_missing_speedup_key_is_detected(self, bench_smoke, payload):
        del payload["incremental_mutation"]["speedup"]
        problems = bench_smoke.validate_incremental_mutation_section(payload)
        assert any("speedup" in problem for problem in problems)

    def test_recorded_run_clears_the_add_floor(self, bench_smoke, payload):
        assert bench_smoke._check_recorded_mutation_floor(payload) == []

    def test_speedup_regression_is_detected(self, bench_smoke, payload):
        payload["incremental_mutation"]["speedup"] = 1.5
        problems = bench_smoke._check_recorded_mutation_floor(payload)
        assert any("floor" in problem for problem in problems)

    def test_unverified_state_is_detected(self, bench_smoke, payload):
        payload["incremental_mutation"]["state_identical"] = False
        problems = bench_smoke._check_recorded_mutation_floor(payload)
        assert any("identical" in problem for problem in problems)
