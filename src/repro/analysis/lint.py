"""A pyflakes-clean gate with a dependency-free AST fallback.

Tier-1 (through ``bench_smoke --quick``) requires ``src/`` to pass a lint
sweep alongside ``repro check --strict``.  When ``pyflakes`` is importable
it is used as-is; the container image does not ship it, so the fallback
implements the two pyflakes findings that matter most for this codebase
and produces **zero output on a clean tree**:

* unused imports (module- and function-level, skipping ``__init__.py``
  re-export surfaces, ``__future__``, and names re-exported via
  ``__all__``);
* duplicate top-level / class-level definitions without decorators
  (decorated redefinitions — ``@property`` setters, ``@overload`` — are
  legitimate).

The fallback intentionally under-approximates pyflakes: anything it
reports is a real problem on either engine, so the tier-1 gate behaves
identically whichever engine a machine resolves.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Sequence, Set


def run_lint(paths: Sequence[object]) -> List[str]:
    """Lint problems under ``paths`` (empty on a clean tree)."""
    from repro.analysis.checker import iter_python_files

    files = iter_python_files(paths)
    try:
        return _pyflakes_lint(files)
    except ImportError:
        return _fallback_lint(files)


def _pyflakes_lint(files: Sequence[Path]) -> List[str]:
    import io

    from pyflakes.api import checkPath
    from pyflakes.reporter import Reporter

    problems: List[str] = []
    for path in files:
        out, err = io.StringIO(), io.StringIO()
        checkPath(str(path), Reporter(out, err))
        for stream in (out, err):
            problems.extend(
                line for line in stream.getvalue().splitlines() if line.strip()
            )
    return problems


def _fallback_lint(files: Sequence[Path]) -> List[str]:
    problems: List[str] = []
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source)
        except (OSError, SyntaxError, ValueError):
            continue
        problems.extend(_unused_imports(path, tree))
        problems.extend(_duplicate_definitions(path, tree))
    return problems


def _unused_imports(path: Path, tree: ast.Module) -> List[str]:
    if path.name == "__init__.py":
        return []  # package re-export surface: imports ARE the API
    imported: Dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".", 1)[0]
                imported.setdefault(name, node.lineno)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                name = alias.asname or alias.name
                imported.setdefault(name, node.lineno)
    if not imported:
        return []
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            base = node.value
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name):
                used.add(base.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # __all__ entries and doctest-ish references keep a name alive
            used.add(node.value)
    problems = []
    for name, line in sorted(imported.items(), key=lambda item: item[1]):
        if name not in used:
            problems.append(f"{path}:{line}: '{name}' imported but unused")
    return problems


def _duplicate_definitions(path: Path, tree: ast.Module) -> List[str]:
    problems: List[str] = []
    scopes = [tree.body] + [
        node.body for node in ast.walk(tree) if isinstance(node, ast.ClassDef)
    ]
    for body in scopes:
        seen: Dict[str, int] = {}
        for stmt in body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if getattr(stmt, "decorator_list", None):
                continue  # @property setters / @overload redefine legitimately
            if stmt.name in seen:
                problems.append(
                    f"{path}:{stmt.lineno}: redefinition of '{stmt.name}' "
                    f"(first defined at line {seen[stmt.name]})"
                )
            else:
                seen[stmt.name] = stmt.lineno
    return problems
