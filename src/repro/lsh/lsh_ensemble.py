"""LSH Ensemble (Zhu et al., PVLDB 2016): containment search over skewed sets.

MinHash-based LSH targets Jaccard similarity, which penalises pairs whose set
sizes differ greatly even when the smaller set is fully contained in the
larger one.  LSH Ensemble partitions the indexed sets by cardinality and
tunes a banded index per partition so that *containment* queries remain
accurate under skew.  The paper cites it as a compatible improvement to its
value index; the reproduction uses it in the join-path machinery where
containment (inclusion-dependency style overlap) is the relevant notion.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.lsh.lsh_index import LSHIndex
from repro.lsh.minhash import MinHash


class _Partition:
    """One cardinality range of the ensemble with its own banded index."""

    def __init__(self, lower: int, upper: int, num_hashes: int, threshold: float, seed: int) -> None:
        self.lower = lower
        self.upper = upper
        # Containment-oriented search must retrieve sets whose Jaccard
        # similarity with the query is far below the containment threshold
        # (a small query fully contained in a large set has low Jaccard), so
        # the banded index is made deliberately permissive (2 rows per band)
        # and precision is recovered by the containment filter at query time.
        rows = 2
        bands = max(1, num_hashes // rows)
        self.index = LSHIndex(
            threshold=threshold, num_hashes=num_hashes, bands=bands, rows=rows, seed=seed
        )
        self.sizes: Dict[Hashable, int] = {}

    def accepts(self, size: int) -> bool:
        return self.lower <= size <= self.upper


class LSHEnsemble:
    """Containment-oriented MinHash index partitioned by set cardinality.

    Items must be inserted before :meth:`index` is called; queries convert the
    containment threshold into an equivalent Jaccard threshold per partition
    using the upper bound of the partition's cardinality range.
    """

    def __init__(
        self,
        threshold: float = 0.7,
        num_hashes: int = 256,
        num_partitions: int = 8,
        seed: int = 13,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.threshold = threshold
        self.num_hashes = num_hashes
        self.num_partitions = num_partitions
        self.seed = seed
        self._pending: List[Tuple[Hashable, MinHash, int]] = []
        self._partitions: List[_Partition] = []
        self._indexed = False

    def insert(self, key: Hashable, minhash: MinHash, size: int) -> None:
        """Stage ``key`` with its MinHash signature and true set cardinality."""
        if self._indexed:
            raise RuntimeError("cannot insert into an LSHEnsemble after index() was called")
        if size < 0:
            raise ValueError("set size must be non-negative")
        self._pending.append((key, minhash, max(size, 1)))

    def __len__(self) -> int:
        return len(self._pending)

    def index(self) -> None:
        """Partition the staged items by cardinality and build per-partition indexes."""
        if self._indexed:
            return
        self._indexed = True
        if not self._pending:
            return
        sizes = sorted(size for _, _, size in self._pending)
        boundaries = self._partition_boundaries(sizes)
        self._partitions = [
            _Partition(lower, upper, self.num_hashes, self.threshold, self.seed + i)
            for i, (lower, upper) in enumerate(boundaries)
        ]
        for key, minhash, size in self._pending:
            partition = self._find_partition(size)
            partition.index.insert(key, minhash.hashvalues)
            partition.sizes[key] = size

    def _partition_boundaries(self, sorted_sizes: Sequence[int]) -> List[Tuple[int, int]]:
        """Equi-depth partition boundaries over the observed cardinalities."""
        unique = sorted(set(sorted_sizes))
        partitions = min(self.num_partitions, len(unique))
        boundaries: List[Tuple[int, int]] = []
        per_partition = max(1, len(unique) // partitions)
        start = 0
        for i in range(partitions):
            end = len(unique) - 1 if i == partitions - 1 else min(
                start + per_partition - 1, len(unique) - 1
            )
            lower = unique[start] if i > 0 else 0
            upper = unique[end] if i < partitions - 1 else int(unique[-1] * 2 + 1)
            boundaries.append((lower, upper))
            start = end + 1
            if start >= len(unique):
                break
        return boundaries

    def _find_partition(self, size: int) -> _Partition:
        for partition in self._partitions:
            if partition.accepts(size):
                return partition
        return self._partitions[-1]

    def query(
        self,
        minhash: MinHash,
        size: int,
        exclude: Optional[Hashable] = None,
    ) -> Set[Hashable]:
        """Return keys whose estimated containment of the query exceeds the threshold.

        Containment here is ``|Q ∩ X| / |Q|`` for query set Q and indexed set
        X, estimated from the Jaccard estimate and the known cardinalities via
        the inclusion-exclusion identity used in the paper's section IV.
        """
        if not self._indexed:
            raise RuntimeError("LSHEnsemble.query() requires index() to have been called")
        size = max(size, 1)
        results: Set[Hashable] = set()
        for partition in self._partitions:
            candidates = partition.index.query(minhash.hashvalues, exclude=exclude)
            for key in candidates:
                candidate_size = partition.sizes[key]
                stored = partition.index.signature(key)
                agreement = float(
                    (stored == minhash.hashvalues).sum() / len(minhash.hashvalues)
                )
                jaccard = agreement
                # containment(Q, X) = J * (|Q| + |X|) / ((1 + J) * |Q|)
                containment = jaccard * (size + candidate_size) / ((1.0 + jaccard) * size)
                if containment >= self.threshold:
                    results.add(key)
        if exclude is not None:
            results.discard(exclude)
        return results

    def estimated_bytes(self) -> int:
        """Approximate memory footprint of all partitions."""
        return sum(partition.index.estimated_bytes() for partition in self._partitions)
