"""Tests for the experiment runners.

These use tiny corpora so the full experiment machinery runs in seconds; the
assertions check structure and value ranges rather than the paper's absolute
numbers (those are exercised, at realistic scale, by the benchmarks).
"""

import pytest

from repro.core.evidence import EvidenceType
from repro.evaluation.experiments import (
    build_engine_suite,
    experiment_effectiveness,
    experiment_example_distances,
    experiment_indexing_time,
    experiment_individual_evidence,
    experiment_join_impact,
    experiment_repository_stats,
    experiment_search_time,
    experiment_space_overhead,
    experiment_subject_attribute_accuracy,
    experiment_weight_training,
    train_d3l_weights,
)


@pytest.fixture(scope="module")
def suite(small_real_benchmark, fast_config):
    return build_engine_suite(
        small_real_benchmark,
        systems=("d3l", "tus", "aurum"),
        config=fast_config,
        train_weights=False,
    )


class TestEngineSuite:
    def test_all_systems_built(self, suite):
        assert set(suite.systems()) == {"d3l", "tus", "aurum"}

    def test_d3l_indexed_all_tables(self, suite, small_real_benchmark):
        assert len(suite.d3l.indexes.table_profiles) == len(small_real_benchmark.lake)

    def test_weight_training_updates_engine(self, suite, small_real_benchmark):
        original = suite.d3l.weights
        weights = train_d3l_weights(suite.d3l, small_real_benchmark, num_targets=4, k=10)
        assert suite.d3l.weights is weights
        suite.d3l.set_weights(original)


class TestRepositoryStats:
    def test_one_row_per_corpus(self, small_real_benchmark, small_synthetic_benchmark):
        rows = experiment_repository_stats(
            {"real": small_real_benchmark, "synthetic": small_synthetic_benchmark}
        )
        assert len(rows) == 2
        for row in rows:
            assert row["tables"] > 0
            assert 0.0 <= row["numeric_attribute_ratio"] <= 1.0


class TestExampleDistances:
    def test_table1_rows(self):
        rows = experiment_example_distances()
        assert rows
        for row in rows:
            for evidence in EvidenceType.all():
                value = row[f"D{evidence.value}"]
                assert 0.0 <= value <= 1.0
        pairs = {row["pair"] for row in rows}
        assert any("Postcode" in pair for pair in pairs)


class TestEffectivenessExperiments:
    def test_individual_evidence_rows(self, suite):
        rows = experiment_individual_evidence(suite, ks=[3, 5], num_targets=4)
        labels = {row["evidence"] for row in rows}
        assert labels == {"N", "V", "F", "E", "all"}
        for row in rows:
            assert 0.0 <= row["precision"] <= 1.0
            assert 0.0 <= row["recall"] <= 1.0

    def test_comparative_effectiveness_rows(self, suite):
        rows = experiment_effectiveness(suite, ks=[3, 5], num_targets=4)
        systems = {row["system"] for row in rows}
        assert systems == {"d3l", "tus", "aurum"}
        assert len(rows) == 3 * 2

    def test_recall_non_decreasing_in_k(self, suite):
        rows = experiment_effectiveness(suite, ks=[2, 8], num_targets=4)
        by_system = {}
        for row in rows:
            by_system.setdefault(row["system"], {})[row["k"]] = row["recall"]
        for system, series in by_system.items():
            assert series[8] >= series[2] - 1e-9, system


class TestEfficiencyExperiments:
    def test_indexing_time_rows(self, fast_config):
        rows = experiment_indexing_time(
            [8, 16], systems=("d3l", "aurum"), config=fast_config, base_rows=40
        )
        assert len(rows) == 2
        assert rows[1]["tables"] >= rows[0]["tables"]
        for row in rows:
            assert row["d3l_seconds"] > 0
            assert row["aurum_seconds"] > 0
            assert "tus_seconds" not in row

    def test_search_time_rows(self, suite):
        rows = experiment_search_time(suite, ks=[2, 5], num_targets=3)
        assert len(rows) == 2
        for row in rows:
            assert row["d3l_seconds"] > 0
            assert row["tus_seconds"] > 0
            assert row["aurum_seconds"] > 0

    def test_space_overhead_rows(self, suite):
        rows = experiment_space_overhead({"real": suite})
        assert len(rows) == 1
        row = rows[0]
        assert row["d3l_overhead"] > 0
        assert row["tus_overhead"] > 0
        assert row["aurum_overhead"] > 0
        # D3L builds four indexes and finer-grained profiles, so its overhead
        # should not be smaller than Aurum's two-index footprint.
        assert row["d3l_overhead"] >= row["aurum_overhead"]


class TestJoinImpact:
    def test_rows_cover_all_systems(self, suite):
        rows = experiment_join_impact(suite, ks=[2, 4], num_targets=3)
        systems = {row["system"] for row in rows}
        assert systems == {"d3l", "d3l+j", "tus", "aurum", "aurum+j"}
        for row in rows:
            assert 0.0 <= row["coverage"] <= 1.0
            assert 0.0 <= row["attribute_precision"] <= 1.0

    def test_join_variant_never_reduces_coverage(self, suite):
        rows = experiment_join_impact(suite, ks=[3], num_targets=3)
        by_system = {row["system"]: row for row in rows}
        assert by_system["d3l+j"]["coverage"] >= by_system["d3l"]["coverage"] - 1e-9
        assert by_system["aurum+j"]["coverage"] >= by_system["aurum"]["coverage"] - 1e-9


class TestLearnedComponentExperiments:
    def test_weight_training_experiment(self, small_synthetic_benchmark, small_real_benchmark, fast_config):
        result = experiment_weight_training(
            small_synthetic_benchmark,
            small_real_benchmark,
            config=fast_config,
            num_targets=4,
            k=10,
        )
        assert result["training_pairs"] > 0
        assert result["test_pairs"] > 0
        assert 0.0 <= result["accuracy"] <= 1.0
        assert set(result["weights"]) == {"N", "V", "F", "E", "D"}

    def test_subject_attribute_accuracy(self, small_real_benchmark):
        result = experiment_subject_attribute_accuracy(small_real_benchmark, folds=5)
        assert result["tables"] > 0
        assert 0.0 <= result["mean_accuracy"] <= 1.0
        assert len(result["fold_accuracies"]) <= 5

    def test_subject_attribute_accuracy_requires_enough_tables(self, small_real_benchmark):
        with pytest.raises(ValueError):
            experiment_subject_attribute_accuracy(small_real_benchmark, folds=10_000)
