"""Figure 3 / Experiment 1 — individual evidence effectiveness (Smaller Real).

Precision and recall of each evidence type used alone, and of the aggregated
framework, as the answer size grows.  The shapes to reproduce: format
evidence alone is the weakest signal, and aggregating all evidence types
improves on the best individual type.
"""

import numpy as np

from conftest import REAL_KS, NUM_TARGETS, run_once

from repro.evaluation.experiments import experiment_individual_evidence


def test_figure3_individual_evidence(benchmark, record_rows, real_suite):
    rows = run_once(
        benchmark,
        experiment_individual_evidence,
        real_suite,
        ks=REAL_KS,
        num_targets=NUM_TARGETS,
        seed=3,
    )
    record_rows(
        "figure3_individual_evidence",
        rows,
        "Figure 3: individual evidence precision/recall (Smaller Real style corpus)",
    )

    def mean_metric(evidence, metric):
        return float(np.mean([row[metric] for row in rows if row["evidence"] == evidence]))

    # Format evidence alone is the weakest discriminator (paper: Figure 3).
    individual = ["N", "V", "F", "E"]
    assert mean_metric("F", "precision") <= max(mean_metric(e, "precision") for e in individual)
    # The aggregate is at least as good as format-only evidence and close to
    # (or better than) the best single evidence type.
    best_single_recall = max(mean_metric(e, "recall") for e in individual)
    assert mean_metric("all", "recall") >= 0.8 * best_single_recall
    assert mean_metric("all", "precision") >= mean_metric("F", "precision")
