"""Attribute and table profiles (the feature extraction of Algorithm 1).

An :class:`AttributeProfile` holds the set representations and vectors the
indexes are built from:

* the q-gram set of the attribute name (N);
* the informative-token set of the extent (V);
* the format-string set of the extent (F);
* the aggregated word-embedding vector of the frequent tokens (E);
* the numeric extent, for the KS statistic (D).

A :class:`TableProfile` groups the attribute profiles of one table and
records its subject attribute (section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.core.config import D3LConfig
from repro.core.evidence import EvidenceType
from repro.lake.datalake import AttributeRef
from repro.tables.column import Column
from repro.text.embeddings import WordEmbeddingModel, aggregate_vectors
from repro.text.qgrams import name_qgrams
from repro.text.regex_format import format_set
from repro.text.token_stats import informative_and_frequent_tokens


#: Maximum number of distinct values kept in an attribute's value sample.
VALUE_SAMPLE_LIMIT = 512


def sample_overlap(left: Set[str], right: Set[str]) -> float:
    """Overlap coefficient ``|A ∩ B| / min(|A|, |B|)`` of two value samples.

    The single definition of the section IV SA-joinability metric: both
    :meth:`AttributeProfile.value_overlap` and the sharded join-graph
    verification (:func:`~repro.core.parallel.verify_value_overlaps`) funnel
    through it, so the sequential oracle and the worker shards can never
    disagree on the formula.
    """
    if not left or not right:
        return 0.0
    return len(left & right) / min(len(left), len(right))


@dataclass
class AttributeProfile:
    """The extracted features of one attribute."""

    ref: AttributeRef
    is_numeric: bool
    qgrams: Set[str]
    tokens: Set[str]
    formats: Set[str]
    embedding: np.ndarray
    numeric_values: List[float]
    cardinality: int
    distinct_count: int
    value_sample: Set[str] = field(default_factory=set)
    _numeric_sorted: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    @property
    def numeric_sorted(self) -> np.ndarray:
        """Sorted finite numeric extent, cached for the KS fast path.

        One sort per attribute replaces one sort per candidate pair in
        Algorithm 2 (``ks_statistic_sorted`` consumes this directly).
        """
        if self._numeric_sorted is None:
            values = np.asarray(self.numeric_values, dtype=np.float64)
            values = values[np.isfinite(values)]
            values.sort()
            self._numeric_sorted = values
        return self._numeric_sorted

    @classmethod
    def build(
        cls,
        table_name: str,
        column: Column,
        embedding_model: WordEmbeddingModel,
        config: D3LConfig,
    ) -> "AttributeProfile":
        """Extract every feature of Algorithm 1 from one column.

        Numeric attributes receive name and format features only (plus their
        numeric extent); token and embedding features are left empty because
        the paper considers them uninformative for numbers.
        """
        ref = AttributeRef(table_name, column.name)
        qgrams = name_qgrams(column.name, q=config.qgram_size)
        values = column.non_missing
        formats = format_set(values)
        if column.is_numeric:
            tokens: Set[str] = set()
            embedding = np.zeros(embedding_model.dimension, dtype=np.float64)
            value_sample: Set[str] = set()
        else:
            tokens, frequent_tokens = informative_and_frequent_tokens(values)
            vectors = [embedding_model.vector(token) for token in sorted(frequent_tokens)]
            embedding = aggregate_vectors(vectors, embedding_model.dimension)
            # A bounded sample of distinct whole values, used to verify the
            # partial inclusion dependencies behind SA-joinability.
            value_sample = {
                value.lower() for value in column.distinct_values[:VALUE_SAMPLE_LIMIT]
            }
        return cls(
            ref=ref,
            is_numeric=column.is_numeric,
            qgrams=qgrams,
            tokens=tokens,
            formats=formats,
            embedding=embedding,
            numeric_values=list(column.numeric_values) if column.is_numeric else [],
            cardinality=len(values),
            distinct_count=len(column.distinct_values),
            value_sample=value_sample,
        )

    def set_representation(self, evidence: EvidenceType) -> Set[str]:
        """The set representation used for a Jaccard-grounded evidence type."""
        if evidence is EvidenceType.NAME:
            return self.qgrams
        if evidence is EvidenceType.VALUE:
            return self.tokens
        if evidence is EvidenceType.FORMAT:
            return self.formats
        raise ValueError(f"evidence type {evidence} has no set representation")

    def has_embedding(self) -> bool:
        """True when the attribute has a non-zero embedding vector."""
        return bool(np.any(self.embedding))

    def value_overlap(self, other: "AttributeProfile") -> float:
        """Overlap coefficient between the two attributes' value samples.

        ``|A ∩ B| / min(|A|, |B|)`` over distinct case-folded values — the
        postulated (possibly partial) inclusion dependency of section IV.
        """
        return sample_overlap(self.value_sample, other.value_sample)

    def estimated_bytes(self) -> int:
        """Approximate size of the profile (used in space-overhead accounting)."""
        text_bytes = sum(len(item) for item in self.qgrams)
        text_bytes += sum(len(item) for item in self.tokens)
        text_bytes += sum(len(item) for item in self.formats)
        text_bytes += sum(len(item) for item in self.value_sample)
        cached_sorted = 0 if self._numeric_sorted is None else self._numeric_sorted.nbytes
        return int(
            text_bytes
            + self.embedding.nbytes
            + 8 * len(self.numeric_values)
            + cached_sorted
        )


@dataclass
class TableProfile:
    """Profiles of every attribute of one table plus its subject attribute."""

    table_name: str
    attributes: Dict[str, AttributeProfile]
    subject_attribute: Optional[str]
    arity: int
    cardinality: int

    @property
    def attribute_refs(self) -> List[AttributeRef]:
        """References of every profiled attribute."""
        return [profile.ref for profile in self.attributes.values()]

    def profile(self, column_name: str) -> AttributeProfile:
        """The profile of the named attribute."""
        return self.attributes[column_name]

    def subject_profile(self) -> Optional[AttributeProfile]:
        """The profile of the subject attribute, when one was identified."""
        if self.subject_attribute is None:
            return None
        return self.attributes.get(self.subject_attribute)

    def estimated_bytes(self) -> int:
        """Approximate size of all attribute profiles."""
        return sum(profile.estimated_bytes() for profile in self.attributes.values())


@dataclass
class AttributeMatch:
    """An alignment between a target attribute and a lake attribute.

    Carries the five distances (one per evidence type) and, after weighting,
    the Equation 2 weights used when the match is aggregated into a table
    relatedness vector.
    """

    target_attribute: str
    source: AttributeRef
    distances: Dict[EvidenceType, float]
    weights: Dict[EvidenceType, float] = field(default_factory=dict)

    def mean_distance(self) -> float:
        """Unweighted mean of the five distances (used for alignment choice)."""
        values = [self.distances[evidence] for evidence in EvidenceType.all()]
        return float(sum(values) / len(values))

    def best_evidence(self) -> EvidenceType:
        """The evidence type with the smallest distance for this match."""
        return min(EvidenceType.all(), key=lambda evidence: self.distances[evidence])
