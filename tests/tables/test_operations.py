"""Tests for relational operations over tables."""

import pytest

from repro.tables.operations import (
    column_overlap,
    concat_rows,
    hash_join,
    natural_join,
    project,
    rename_columns,
    sample_rows,
    select,
    union,
)
from repro.tables.table import Table


@pytest.fixture
def practices():
    return Table.from_dict(
        "practices",
        {
            "Practice": ["Blackfriars", "Radclife Care", "Bolton Medical"],
            "City": ["Salford", "Manchester", "Bolton"],
            "Patients": ["3572", "2209", "1840"],
        },
    )


@pytest.fixture
def hours():
    return Table.from_dict(
        "hours",
        {
            "GP": ["blackfriars", "Radclife Care", "Unknown Practice"],
            "Opening hours": ["08:00-18:00", "07:00-20:00", "09:00-17:00"],
        },
    )


class TestProjectSelect:
    def test_project_keeps_requested_columns(self, practices):
        result = project(practices, ["City"])
        assert result.column_names == ["City"]
        assert result.cardinality == 3

    def test_project_reorders_columns(self, practices):
        result = project(practices, ["Patients", "Practice"])
        assert result.column_names == ["Patients", "Practice"]

    def test_select_filters_rows(self, practices):
        result = select(practices, lambda row: row["City"] == "Salford")
        assert result.cardinality == 1
        assert result.column("Practice").values == ["Blackfriars"]

    def test_select_can_return_empty_table(self, practices):
        result = select(practices, lambda row: False)
        assert result.cardinality == 0
        assert result.column_names == practices.column_names

    def test_sample_rows(self, practices):
        result = sample_rows(practices, [2, 0])
        assert result.column("City").values == ["Bolton", "Salford"]

    def test_rename_columns(self, practices):
        result = rename_columns(practices, {"Practice": "GP"})
        assert result.column_names == ["GP", "City", "Patients"]
        assert result.column("GP").values[0] == "Blackfriars"


class TestConcatAndUnion:
    def test_concat_rows_same_schema(self, practices):
        combined = concat_rows([practices, practices], "double")
        assert combined.cardinality == 6
        assert combined.column_names == practices.column_names

    def test_concat_rows_rejects_mismatched_schema(self, practices, hours):
        with pytest.raises(ValueError):
            concat_rows([practices, hours], "bad")

    def test_concat_requires_at_least_one_table(self):
        with pytest.raises(ValueError):
            concat_rows([], "empty")

    def test_union_aligns_columns_and_fills_gaps(self, practices, hours):
        result = union(
            ["Practice", "City", "Hours"],
            [practices, hours],
            [
                {"Practice": "Practice", "City": "City"},
                {"Practice": "GP", "Hours": "Opening hours"},
            ],
        )
        assert result.cardinality == 6
        assert result.column("Hours").values[:3] == [None, None, None]
        assert result.column("Practice").values[3] == "blackfriars"

    def test_union_requires_one_alignment_per_table(self, practices):
        with pytest.raises(ValueError):
            union(["a"], [practices], [])


class TestJoins:
    def test_hash_join_matches_case_insensitively(self, practices, hours):
        result = hash_join(practices, hours, "Practice", "GP")
        assert result.cardinality == 2
        assert "Opening hours" in result.column_names

    def test_hash_join_renames_clashing_columns(self, practices):
        other = practices.with_name("other")
        result = hash_join(practices, other, "Practice", "Practice")
        assert "City_other" in result.column_names

    def test_hash_join_empty_result_keeps_schema(self, practices, hours):
        no_overlap = Table.from_dict("none", {"GP": ["Nobody"], "Opening hours": ["-"]})
        result = hash_join(practices, no_overlap, "Practice", "GP")
        assert result.cardinality == 0
        assert "Opening hours" in result.column_names

    def test_natural_join_uses_shared_column(self, practices):
        funding = Table.from_dict(
            "funding",
            {"Practice": ["Blackfriars"], "Payment": ["15530"]},
        )
        result = natural_join(practices, funding)
        assert result.cardinality == 1
        assert result.column("Payment").values == ["15530"]

    def test_natural_join_without_shared_column_raises(self, practices, hours):
        with pytest.raises(ValueError):
            natural_join(practices, hours)


class TestColumnOverlap:
    def test_full_containment(self, practices):
        subset = Table.from_dict("subset", {"Practice": ["Blackfriars"]})
        overlap = column_overlap(subset.column("Practice"), practices.column("Practice"))
        assert overlap == 1.0

    def test_no_overlap(self, practices, hours):
        overlap = column_overlap(practices.column("City"), hours.column("Opening hours"))
        assert overlap == 0.0

    def test_empty_column_yields_zero(self, practices):
        empty = Table.from_dict("empty", {"Practice": [None]})
        assert column_overlap(empty.column("Practice"), practices.column("Practice")) == 0.0
