"""Tests for subject-attribute detection."""

import pytest

from repro.ml.subject_attribute import (
    FEATURE_NAMES,
    SubjectAttributeClassifier,
    column_feature_vector,
    heuristic_subject_attribute,
)
from repro.tables.table import Table


@pytest.fixture
def practices_table():
    return Table.from_dict(
        "practices",
        {
            "Practice Name": ["Blackfriars", "Radclife Care", "Bolton Medical", "Dr E Cullen"],
            "City": ["Salford", "Manchester", "Bolton", "Belfast"],
            "Patients": ["3572", "2209", "1840", "1202"],
        },
    )


@pytest.fixture
def labelled_tables(small_synthetic_benchmark):
    return small_synthetic_benchmark.labelled_subject_tables()


class TestFeatureVector:
    def test_feature_vector_length(self, practices_table):
        vector = column_feature_vector(practices_table, 0)
        assert len(vector) == len(FEATURE_NAMES)

    def test_numeric_flag(self, practices_table):
        assert column_feature_vector(practices_table, 2)[1] == 1.0
        assert column_feature_vector(practices_table, 0)[1] == 0.0

    def test_position_normalised(self, practices_table):
        assert column_feature_vector(practices_table, 0)[0] == 0.0
        assert column_feature_vector(practices_table, 2)[0] == 1.0

    def test_leftmost_textual_flag(self, practices_table):
        assert column_feature_vector(practices_table, 0)[5] == 1.0
        assert column_feature_vector(practices_table, 1)[5] == 0.0


class TestHeuristic:
    def test_prefers_distinct_leftmost_textual_column(self, practices_table):
        assert heuristic_subject_attribute(practices_table) == "Practice Name"

    def test_numeric_only_table_has_no_subject(self):
        table = Table.from_dict("numbers", {"a": ["1", "2"], "b": ["3", "4"]})
        assert heuristic_subject_attribute(table) is None

    def test_prefers_distinct_over_repetitive_column(self):
        table = Table.from_dict(
            "services",
            {
                "Category": ["Health", "Health", "Health", "Health"],
                "Provider": ["A Practice", "B Surgery", "C Clinic", "D Centre"],
            },
        )
        assert heuristic_subject_attribute(table) == "Provider"


class TestClassifier:
    def test_unfitted_identify_falls_back_to_heuristic(self, practices_table):
        classifier = SubjectAttributeClassifier()
        assert classifier.identify(practices_table) == "Practice Name"
        assert not classifier.is_fitted

    def test_unfitted_column_scores_raise(self, practices_table):
        with pytest.raises(RuntimeError):
            SubjectAttributeClassifier().column_scores(practices_table)

    def test_training_set_has_row_per_column(self, labelled_tables):
        features, labels = SubjectAttributeClassifier.build_training_set(labelled_tables)
        expected_rows = sum(table.arity for table, _ in labelled_tables)
        assert features.shape[0] == expected_rows
        assert labels.sum() == len(labelled_tables)

    def test_fit_and_identify(self, labelled_tables):
        classifier = SubjectAttributeClassifier().fit(labelled_tables)
        assert classifier.is_fitted
        accuracy = classifier.accuracy(labelled_tables)
        assert accuracy > 0.6

    def test_column_scores_only_textual_columns(self, labelled_tables, practices_table):
        classifier = SubjectAttributeClassifier().fit(labelled_tables)
        scores = classifier.column_scores(practices_table)
        assert "Patients" not in scores
        assert set(scores) <= {"Practice Name", "City"}

    def test_accuracy_of_empty_set(self, labelled_tables):
        classifier = SubjectAttributeClassifier().fit(labelled_tables)
        assert classifier.accuracy([]) == 0.0

    def test_fit_requires_both_classes(self, practices_table):
        classifier = SubjectAttributeClassifier()
        with pytest.raises(ValueError):
            # Labelling a non-existent column makes every row a negative
            # example, so the training set has a single class.
            classifier.fit([(practices_table, "No Such Column")])

    def test_fit_rejects_empty_training_data(self):
        with pytest.raises(ValueError):
            SubjectAttributeClassifier().fit([])
