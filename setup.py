"""Setuptools entry point.

Metadata lives in pyproject.toml; this file exists so that editable installs
work in offline environments whose setuptools lacks PEP 660 wheel support.
"""

from setuptools import setup

setup()
