"""The ``repro serve`` discovery service: a long-lived multi-worker HTTP tier.

The wire protocol (:mod:`repro.core.api`, ``d3l.query_response/v1``) and the
caching :class:`~repro.core.api.DiscoverySession` existed before this module,
but nothing served them.  :class:`DiscoveryServer` is that missing tier — a
stdlib-only HTTP server (no new dependencies) over one loaded engine:

* ``POST /query`` accepts a ``d3l.query_request/v1`` JSON body (target table
  inline, plus ``k``/``evidence``/``explain``/``joins``/``workers``/…),
  submits it through a :class:`~repro.core.api.DiscoverySession`, and returns
  ``QueryResponse.truncated().to_dict()`` — the exact payload the CLI's
  ``--json`` mode emits, bit-identical to an in-process session;
* ``GET /index-status`` reports the lake size, per-index byte footprint,
  ``D3LIndexes.version``, the snapshot backing workers would attach, and
  aggregated session-cache statistics;
* ``GET /healthz`` answers ``{"status": "ok"}`` for load balancers.

Concurrency model: a :class:`~http.server.ThreadingHTTPServer` accepts
connections on demand, and request handlers check a
:class:`~repro.core.api.DiscoverySession` out of a fixed pool of ``workers``
sessions (all sharing the one engine — and therefore one set of fan-out
worker pools and one shared-memory index snapshot per worker count).  The
pool bounds concurrent query execution without dropping connections;
``workers`` request-level ``workers`` still fan individual queries across
processes through the engine's zero-copy snapshot machinery.

Lifecycle: :meth:`DiscoveryServer.close` (idempotent, also the
``__exit__``) stops accepting, drains handler threads, closes every session
— which reaps the engine's worker pools and unlinks its ``/dev/shm``
segments — so a served engine shuts down leak-free.
:meth:`run_until_interrupt` wires SIGINT/SIGTERM to that teardown for the
CLI's foreground mode.
"""

from __future__ import annotations

import json
import queue
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.analysis.sanitizer import tracked_scope
from repro.core.api import (
    DiscoverySession,
    QueryRequest,
    query_request_from_wire,
)
from repro.core.config import require_positive
from repro.core.discovery import D3L

#: Server identifier reported by ``/healthz`` and the ``Server`` header.
SERVER_NAME = "repro-serve/1"


def index_status(engine: D3L, sessions: List[DiscoverySession]) -> Dict[str, object]:
    """The ``GET /index-status`` payload for one engine + its session pool."""
    from repro.core.shared import live_segment_locators

    indexes = engine.indexes
    cache = {"hits": 0, "misses": 0, "size": 0, "capacity": 0}
    for session in sessions:
        info = session.cache_info()
        for key in cache:
            cache[key] += info[key]
    return {
        "status": "ok",
        "server": SERVER_NAME,
        "lake": {
            "tables": len(indexes.table_profiles),
            "attributes": len(indexes.profiles),
        },
        "index_bytes": indexes.index_bytes(),
        "version": indexes.version,
        "snapshot": {
            "backing": "shm" if Path("/dev/shm").is_dir() else "file",
            "live_segments": live_segment_locators(),
        },
        "workers": len(sessions),
        "cache": cache,
    }


class _DiscoveryRequestHandler(BaseHTTPRequestHandler):
    """One HTTP exchange against the owning :class:`DiscoveryServer`.

    The handler is intentionally thin: route, borrow a session, delegate.
    Validation errors surface as 400s carrying the same messages the
    :class:`~repro.core.api.QueryRequest` constructor raises in-process.
    """

    protocol_version = "HTTP/1.1"
    server_version = SERVER_NAME
    # Idle keep-alive connections drop after this many seconds, bounding how
    # long a forgotten client can stall the shutdown join.
    timeout = 5

    # The ThreadingHTTPServer subclass below carries the DiscoveryServer in
    # this attribute; annotate for readability only.
    server: "_ServingHTTPServer"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.owner.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path
        if path == "/healthz":
            self._respond(200, {"status": "ok", "server": SERVER_NAME})
        elif path == "/index-status":
            owner = self.server.owner
            self._respond(200, index_status(owner.engine, owner.sessions))
        else:
            self._respond(404, {"error": f"unknown path {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path
        if path != "/query":
            self._respond(404, {"error": f"unknown path {path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length <= 0:
            self._respond(400, {"error": "request body required"})
            return
        body = self.rfile.read(length)
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            self._respond(400, {"error": f"invalid JSON body: {error}"})
            return
        try:
            request = query_request_from_wire(payload)
        except (ValueError, KeyError, TypeError) as error:
            self._respond(400, {"error": str(error)})
            return
        try:
            response = self.server.owner.submit(request)
        except Exception as error:  # noqa: BLE001 - one request must not kill the server
            self._respond(500, {"error": f"{type(error).__name__}: {error}"})
            return
        self._respond(200, response)

    # ------------------------------------------------------------------ #
    # response plumbing
    # ------------------------------------------------------------------ #
    def _respond(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response; nothing to clean up


class _ServingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that knows its owning :class:`DiscoveryServer`."""

    daemon_threads = True
    # Handler threads are joined on shutdown so `close()` really is the last
    # word — no request can outlive the sessions it borrows from.
    block_on_close = True

    def __init__(self, address: Tuple[str, int], owner: "DiscoveryServer") -> None:
        super().__init__(address, _DiscoveryRequestHandler)
        self.owner = owner


class DiscoveryServer:
    """A long-lived discovery service over one indexed engine.

    Programmatic usage (tests, benchmarks)::

        with DiscoveryServer(engine, port=0, workers=4) as server:
            server.start()
            ... HTTP traffic against server.host:server.port ...
        # closed: sessions drained, pools reaped, segments unlinked

    Foreground usage (the CLI)::

        server = DiscoveryServer(engine, host=host, port=port, workers=n)
        server.run_until_interrupt()      # SIGINT/SIGTERM → clean teardown
    """

    def __init__(
        self,
        engine: D3L,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        profile_cache_size: int = 64,
        verbose: bool = False,
    ) -> None:
        require_positive("workers", workers)
        self.engine = engine
        self.verbose = verbose
        #: One caching session per serving worker, all over the same engine.
        self.sessions: List[DiscoverySession] = [
            DiscoverySession(engine, profile_cache_size=profile_cache_size)
            for _ in range(workers)
        ]
        self._idle: "queue.Queue[DiscoverySession]" = queue.Queue()
        for session in self.sessions:
            self._idle.put(session)
        self._httpd = _ServingHTTPServer((host, port), self)
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # addressing
    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` — bind to a free one)."""
        return self._httpd.server_address[1]

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def submit(self, request: QueryRequest) -> Dict[str, object]:
        """Answer one request through an idle session (blocks until one frees).

        Returns the wire payload — ``QueryResponse.truncated().to_dict()`` —
        so HTTP handlers and in-process callers serve byte-identical answers.
        """
        # Under REPRO_SANITIZE=1 the tracker flags a handler that tries to
        # check out a second session while holding one (a deadlock once the
        # bounded pool is exhausted) and any inverted nesting against the
        # server state lock; otherwise this is a no-op context.
        with tracked_scope("discovery-server.session-pool"):
            session = self._idle.get()
            try:
                response = session.submit(request)
            finally:
                self._idle.put(session)
        return response.truncated().to_dict()

    def start(self) -> "DiscoveryServer":
        """Serve in a background thread (idempotent); returns ``self``."""
        with tracked_scope("discovery-server.state-lock"), self._lock:
            if self._closed:
                raise RuntimeError("server is closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._httpd.serve_forever,
                    name=f"repro-serve:{self.port}",
                    daemon=True,
                )
                self._thread.start()
        return self

    def run_until_interrupt(self) -> None:
        """Serve in the foreground until SIGINT/SIGTERM, then tear down.

        Must run on the main thread (signal handlers).  The previous
        handlers are restored before :meth:`close` runs, so a second Ctrl-C
        during a slow teardown still interrupts the process.
        """
        stop = threading.Event()

        def _request_shutdown(signum, frame) -> None:  # noqa: ARG001
            stop.set()

        previous = {
            sig: signal.signal(sig, _request_shutdown)
            for sig in (signal.SIGINT, signal.SIGTERM)
        }
        self.start()
        try:
            # Polled wait rather than a bare wait(): a signal delivered to a
            # non-main thread only sets CPython's pending-handler flag, which
            # an indefinitely blocked main thread would never re-check.
            while not stop.wait(0.5):
                pass
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            self.close()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop serving and release every resource (idempotent).

        Order matters: stop accepting and join handler threads first (no
        request may hold a session past this point), then close the sessions
        — which reaps the engine's fan-out pools and unlinks its
        shared-memory segments.
        """
        with tracked_scope("discovery-server.state-lock"), self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
            self._thread = None
        if thread is not None:
            self._httpd.shutdown()
            thread.join()
        self._httpd.server_close()
        for session in self.sessions:
            session.close()

    def __enter__(self) -> "DiscoveryServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
