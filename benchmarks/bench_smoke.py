"""Benchmark smoke checks: fast guards over the perf-tracking contract.

The full hot-path benchmark (``bench_perf_hot_paths.py``) takes minutes; its
regressions used to surface only when someone ran it by hand.  This script is
the piece small enough to wire into tier-1 (see
``tests/integration/test_bench_smoke.py``): in ``--quick`` mode it

* imports the tracked floors from ``bench_perf_hot_paths`` and checks they
  are sane positive ratios,
* validates that the committed ``BENCH_hot_paths.json`` parses and still has
  the schema the benchmark writes (so a bench refactor cannot silently stop
  recording a tracked series), and
* runs the static-analysis gate: every ``repro check`` rule (R1–R5) over
  ``src/`` plus the pyflakes-or-fallback lint sweep must come back clean
  (see ``src/repro/analysis/`` and docs/api.md), and
* builds a tiny lake and asserts the batched query engine answers exactly
  like the sequential oracle — the equivalence the floors depend on —
  including the bulk ``related_attributes`` path, and
* exercises the serving API on the same lake: ``DiscoverySession`` answers
  must match the deprecated shims and the oracle, and ``QueryResponse``
  must survive a ``to_dict`` → JSON → ``from_dict`` round trip losslessly, and
* checks the join-path surface: the batched SA-join graph build must equal
  the scalar ``build_sequential`` oracle edge for edge, and a ``joins=True``
  request's ``join_paths`` block must round-trip through the wire format, and
* exercises the zero-copy fan-out path: an in-process shared-snapshot attach
  and a ``workers=2`` pooled query must answer bit-identically to the
  sequential oracle, the executor-verified join graph must equal the scalar
  build, the committed bench run must clear the snapshot-ship floor
  (``SNAPSHOT_SHIP_RATIO_FLOOR``) at the largest lake, and closing the
  engine must leave no stray ``/dev/shm`` segments, and
* guards the mutation path: the committed ``incremental_mutation`` section
  must keep its schema, record a verified-identical mutated index, and clear
  the single-table-add floor (``INCREMENTAL_ADD_SPEEDUP_FLOOR``); a tiny-lake
  add/remove/upsert sequence must answer exactly like a from-scratch rebuild
  over the surviving tables — rankings and SA-join edge sets — and
* guards the serving tier: the committed ``serving`` section written by
  ``bench_serving.py`` must keep its schema, record verified-identical
  responses, and clear the warm-cache throughput floor
  (``SERVING_WARM_QPS_FLOOR``); a live ``DiscoveryServer`` over the tiny
  lake must answer one HTTP query exactly like an in-process session and
  shut down without leaking segments.

Run directly::

    PYTHONPATH=src python benchmarks/bench_smoke.py --quick

Exit status 0 means every check passed; failures are printed one per line.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

RESULT_PATH = REPO_ROOT / "BENCH_hot_paths.json"

#: Required keys of the BENCH_hot_paths.json payload, by section.  Keeping
#: this list in a tier-1-checked file makes the JSON schema part of the
#: repository contract: removing a tracked series fails tests, not just the
#: manual bench run.
TOP_LEVEL_KEYS = ("benchmark", "generated_by", "config", "lake_sizes", "results")
RESULT_KEYS = (
    "num_attributes",
    "num_queries",
    "top_k",
    "index_seconds",
    "query_seconds_per_query",
    "token_hashing",
    "index_construction",
    "batched_query",
    "session_cache",
    "join_graph_build",
    "rankings_identical",
)
SPEEDUP_SECTION_KEYS = ("vectorized", "scalar", "speedup")
SIGNATURE_BATCHING_KEYS = (
    "num_attributes",
    "scalar_seconds",
    "batched_seconds",
    "speedup",
    "signatures_identical",
)
END_TO_END_KEYS = (
    "num_tables",
    "num_attributes",
    "available_cpus",
    "serial_seconds",
    "parallel_seconds",
    "parallel_workers",
    "parallel_speedup",
    "snapshot_pickled_bytes",
    "snapshot_shipped_bytes",
    "snapshot_ship_ratio",
    "snapshot_pickle_seconds",
    "snapshot_create_seconds",
    "snapshot_attach_seconds",
    "worker_rss_delta_pickled_bytes",
    "worker_rss_delta_shared_bytes",
    "snapshot_state_identical",
)
BATCHED_QUERY_KEYS = (
    "num_attributes",
    "num_targets",
    "top_k",
    "candidate_pool",
    "sequential_seconds_per_query",
    "batched_seconds_per_query",
    "speedup",
    "rankings_identical",
    "parallel_workers",
    "workers_rankings_identical",
)
SESSION_CACHE_KEYS = (
    "num_attributes",
    "num_targets",
    "top_k",
    "uncached_seconds_per_query",
    "session_cold_seconds_per_query",
    "session_warm_seconds_per_query",
    "cache_speedup",
    "cache_hits",
    "cache_misses",
    "rankings_identical",
)
JOIN_GRAPH_KEYS = (
    "num_tables",
    "num_attributes",
    "num_edges",
    "candidate_pool",
    "sequential_seconds",
    "batched_seconds",
    "speedup",
    "edges_identical",
    "parallel_workers",
    "workers_edges_identical",
)
#: Required keys of the top-level ``serving`` section written by
#: ``bench_serving.py`` (the serving-tier load benchmark).
SERVING_KEYS = (
    "generated_by",
    "num_attributes",
    "num_targets",
    "top_k",
    "server_workers",
    "available_cpus",
    "responses_identical",
    "closed_loop",
    "open_loop",
    "process_backend",
    "process_speedup",
)
#: Required keys of the ``serving.process_backend`` sub-section: the same
#: sweeps as the thread backend, recorded against ``--backend process``.
SERVING_PROCESS_KEYS = (
    "responses_identical",
    "verification_problems",
    "closed_loop",
    "open_loop",
)
SERVING_LOOP_KEYS = ("client_workers", "requests", "qps", "latency_ms")
SERVING_OPEN_LOOP_KEYS = ("client_workers", "offered_qps", "requests", "achieved_qps", "latency_ms")
SERVING_LATENCY_KEYS = ("p50", "p90", "p99")
#: Required keys of the top-level ``incremental_mutation`` section: the
#: single-table-add-vs-full-rebuild record ``bench_perf_hot_paths.py`` writes.
INCREMENTAL_MUTATION_KEYS = (
    "num_attributes",
    "num_tables",
    "full_rebuild_seconds",
    "single_add_seconds",
    "single_remove_seconds",
    "speedup",
    "state_identical",
)


def validate_hot_paths_payload(payload: Dict[str, object]) -> List[str]:
    """Problems with the structure of a ``BENCH_hot_paths.json`` payload."""
    problems: List[str] = []
    for key in TOP_LEVEL_KEYS:
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    results = payload.get("results")
    if not isinstance(results, list) or not results:
        problems.append("results must be a non-empty list")
        return problems
    for entry in results:
        size = entry.get("num_attributes", "?")
        for key in RESULT_KEYS:
            if key not in entry:
                problems.append(f"result n={size}: missing key {key!r}")
        for section in ("index_seconds", "query_seconds_per_query"):
            for key in SPEEDUP_SECTION_KEYS:
                if key not in entry.get(section, {}):
                    problems.append(f"result n={size}: {section} missing {key!r}")
        construction = entry.get("index_construction", {})
        for key in SIGNATURE_BATCHING_KEYS:
            if key not in construction.get("signature_batching", {}):
                problems.append(f"result n={size}: signature_batching missing {key!r}")
        for key in END_TO_END_KEYS:
            if key not in construction.get("end_to_end", {}):
                problems.append(f"result n={size}: end_to_end missing {key!r}")
        for key in BATCHED_QUERY_KEYS:
            if key not in entry.get("batched_query", {}):
                problems.append(f"result n={size}: batched_query missing {key!r}")
        for key in SESSION_CACHE_KEYS:
            if key not in entry.get("session_cache", {}):
                problems.append(f"result n={size}: session_cache missing {key!r}")
        for key in JOIN_GRAPH_KEYS:
            if key not in entry.get("join_graph_build", {}):
                problems.append(f"result n={size}: join_graph_build missing {key!r}")
    problems += validate_serving_section(payload)
    problems += validate_incremental_mutation_section(payload)
    return problems


def validate_incremental_mutation_section(payload: Dict[str, object]) -> List[str]:
    """Problems with the top-level ``incremental_mutation`` section."""
    mutation = payload.get("incremental_mutation")
    if not isinstance(mutation, dict):
        return [
            "missing top-level 'incremental_mutation' section "
            "(run bench_perf_hot_paths.py)"
        ]
    return [
        f"incremental_mutation: missing key {key!r}"
        for key in INCREMENTAL_MUTATION_KEYS
        if key not in mutation
    ]


def validate_serving_section(payload: Dict[str, object]) -> List[str]:
    """Problems with the ``serving`` section ``bench_serving.py`` writes."""
    serving = payload.get("serving")
    if not isinstance(serving, dict):
        return ["missing top-level 'serving' section (run bench_serving.py)"]
    problems: List[str] = []
    for key in SERVING_KEYS:
        if key not in serving:
            problems.append(f"serving: missing key {key!r}")
    for section, keys in (
        ("closed_loop", SERVING_LOOP_KEYS),
        ("open_loop", SERVING_OPEN_LOOP_KEYS),
    ):
        block = serving.get(section, {})
        for key in keys:
            if key not in block:
                problems.append(f"serving: {section} missing {key!r}")
        for key in SERVING_LATENCY_KEYS:
            if key not in block.get("latency_ms", {}):
                problems.append(f"serving: {section} latency_ms missing {key!r}")
    process = serving.get("process_backend")
    if not isinstance(process, dict):
        return problems
    for key in SERVING_PROCESS_KEYS:
        if key not in process:
            problems.append(f"serving: process_backend missing {key!r}")
    for section, keys in (
        ("closed_loop", SERVING_LOOP_KEYS),
        ("open_loop", SERVING_OPEN_LOOP_KEYS),
    ):
        block = process.get(section, {})
        for key in keys:
            if key not in block:
                problems.append(f"serving: process_backend {section} missing {key!r}")
    return problems


def _check_floors() -> List[str]:
    """The tracked floors import and are sane positive ratios."""
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        import bench_perf_hot_paths as hot_paths
    except Exception as error:  # pragma: no cover - import failure is the finding
        return [f"cannot import bench_perf_hot_paths: {error}"]
    problems = []
    for name in (
        "BATCHING_SPEEDUP_FLOOR",
        "QUERY_SPEEDUP_FLOOR",
        "BATCHED_QUERY_SPEEDUP_FLOOR",
        "SESSION_CACHE_SPEEDUP_FLOOR",
        "JOIN_GRAPH_SPEEDUP_FLOOR",
        "SNAPSHOT_SHIP_RATIO_FLOOR",
        "INCREMENTAL_ADD_SPEEDUP_FLOOR",
    ):
        floor = getattr(hot_paths, name, None)
        if not isinstance(floor, (int, float)) or floor < 1.0:
            problems.append(f"{name} should be a ratio >= 1.0, found {floor!r}")
    try:
        import bench_serving
    except Exception as error:  # pragma: no cover - import failure is the finding
        return problems + [f"cannot import bench_serving: {error}"]
    qps_floor = getattr(bench_serving, "SERVING_WARM_QPS_FLOOR", None)
    if not isinstance(qps_floor, (int, float)) or qps_floor <= 0:
        problems.append(
            f"SERVING_WARM_QPS_FLOOR should be a positive rate, found {qps_floor!r}"
        )
    speedup_floor = getattr(bench_serving, "SERVING_PROCESS_SPEEDUP_FLOOR", None)
    if not isinstance(speedup_floor, (int, float)) or speedup_floor < 1.0:
        problems.append(
            "SERVING_PROCESS_SPEEDUP_FLOOR should be a ratio >= 1.0, "
            f"found {speedup_floor!r}"
        )
    ratio_guard = getattr(bench_serving, "SERVING_PROCESS_SINGLE_CORE_RATIO", None)
    if not isinstance(ratio_guard, (int, float)) or not 0 < ratio_guard <= 1.0:
        problems.append(
            "SERVING_PROCESS_SINGLE_CORE_RATIO should be a fraction in (0, 1], "
            f"found {ratio_guard!r}"
        )
    return problems


def _check_recorded_payload() -> List[str]:
    """The committed benchmark JSON parses and keeps its schema."""
    if not RESULT_PATH.exists():
        return [f"{RESULT_PATH.name} not found at the repository root"]
    try:
        payload = json.loads(RESULT_PATH.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        return [f"{RESULT_PATH.name} is not valid JSON: {error}"]
    problems = validate_hot_paths_payload(payload)
    if problems:
        return problems
    return (
        _check_recorded_ship_floor(payload)
        + _check_recorded_serving_floor(payload)
        + _check_recorded_mutation_floor(payload)
    )


def _check_recorded_ship_floor(payload: Dict[str, object]) -> List[str]:
    """The committed bench run clears the snapshot-ship floor at the largest lake."""
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    import bench_perf_hot_paths as hot_paths

    largest = payload["results"][-1]
    end_to_end = largest["index_construction"]["end_to_end"]
    problems: List[str] = []
    if not end_to_end.get("snapshot_state_identical", False):
        problems.append(
            f"recorded n={largest['num_attributes']}: shared snapshot state was "
            "not verified identical to the source index"
        )
    ratio = end_to_end.get("snapshot_ship_ratio", 0.0)
    if ratio < hot_paths.SNAPSHOT_SHIP_RATIO_FLOOR:
        problems.append(
            f"recorded n={largest['num_attributes']}: shared snapshot ships only "
            f"{ratio:.1f}x fewer bytes than the pickled snapshot "
            f"(floor {hot_paths.SNAPSHOT_SHIP_RATIO_FLOOR}x)"
        )
    return problems


def _check_recorded_serving_floor(payload: Dict[str, object]) -> List[str]:
    """The committed serving record was verified correct and clears its floor."""
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    import bench_serving

    serving = payload["serving"]
    problems: List[str] = []
    if not serving.get("responses_identical", False):
        problems.append(
            "recorded serving run: served responses were not verified identical "
            "to the in-process session"
        )
    qps = serving.get("closed_loop", {}).get("qps", 0.0)
    if qps < bench_serving.SERVING_WARM_QPS_FLOOR:
        problems.append(
            f"recorded serving run: warm closed-loop throughput {qps:.1f} qps "
            f"below the tracked floor ({bench_serving.SERVING_WARM_QPS_FLOOR} qps)"
        )
    process = serving.get("process_backend", {})
    if not process.get("responses_identical", False):
        problems.append(
            "recorded serving run: process-backend responses were not verified "
            "identical to the in-process session"
        )
    speedup = serving.get("process_speedup", 0.0)
    cpus = serving.get("available_cpus", 1)
    workers = serving.get("server_workers", 1)
    if cpus >= workers:
        # The recording host had the CPUs — the GIL-lifting speedup must show.
        if speedup < bench_serving.SERVING_PROCESS_SPEEDUP_FLOOR:
            problems.append(
                f"recorded serving run: process-backend speedup {speedup:.2f}x "
                f"below the tracked floor "
                f"({bench_serving.SERVING_PROCESS_SPEEDUP_FLOOR}x with "
                f"{cpus} CPUs)"
            )
    elif speedup < bench_serving.SERVING_PROCESS_SINGLE_CORE_RATIO:
        problems.append(
            f"recorded serving run: process backend retains only {speedup:.2f}x "
            f"of thread throughput on a {cpus}-CPU host (guard "
            f"{bench_serving.SERVING_PROCESS_SINGLE_CORE_RATIO}x)"
        )
    return problems


def _check_recorded_mutation_floor(payload: Dict[str, object]) -> List[str]:
    """The committed mutation record was verified and clears its floor."""
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    import bench_perf_hot_paths as hot_paths

    mutation = payload["incremental_mutation"]
    problems: List[str] = []
    if not mutation.get("state_identical", False):
        problems.append(
            f"recorded mutation run at n={mutation.get('num_attributes', '?')}: "
            "the incrementally mutated index was not verified identical to the "
            "from-scratch rebuild"
        )
    speedup = mutation.get("speedup", 0.0)
    if speedup < hot_paths.INCREMENTAL_ADD_SPEEDUP_FLOOR:
        problems.append(
            f"recorded mutation run at n={mutation.get('num_attributes', '?')}: "
            f"single-table add only {speedup:.1f}x cheaper than a full rebuild "
            f"(floor {hot_paths.INCREMENTAL_ADD_SPEEDUP_FLOOR}x)"
        )
    return problems


def _check_static_analysis() -> List[str]:
    """``repro check --strict`` + the lint gate are clean over ``src/``.

    The same pass the ``repro check`` CLI runs: every R1–R5 rule violation
    under ``src/`` is a smoke failure, as is any finding from the
    pyflakes-or-fallback lint sweep.  Wiring it here puts the static
    contracts under tier-1: a new violation turns the suite red.
    """
    from repro.analysis.checker import run_check
    from repro.analysis.lint import run_lint

    src = REPO_ROOT / "src"
    problems = [f"repro check: {v.render()}" for v in run_check([src])]
    problems += [f"lint: {finding}" for finding in run_lint([src])]
    return problems


def _tiny_engine():
    """A tiny indexed corpus/engine pair shared by the quick checks."""
    from repro.core.config import D3LConfig
    from repro.core.discovery import D3L
    from repro.datagen.synthetic_benchmark import (
        SyntheticBenchmarkConfig,
        generate_synthetic_benchmark,
    )

    corpus = generate_synthetic_benchmark(
        SyntheticBenchmarkConfig(
            num_base_tables=3,
            tables_per_base=3,
            base_rows=40,
            min_rows=15,
            max_rows=30,
            seed=5,
        )
    )
    engine = D3L(
        config=D3LConfig(
            num_hashes=64, num_trees=8, min_candidates=15, embedding_dimension=16
        )
    )
    engine.index_lake(corpus.lake)
    return corpus, engine


def _check_tiny_lake_equivalence(corpus, engine) -> List[str]:
    """The batched engine equals the sequential oracle on a tiny lake."""
    problems: List[str] = []
    for name in corpus.lake.table_names[::2]:
        target = corpus.lake.table(name)
        sequential = engine.query(target, k=5)
        batched = engine.query_batch(target, k=5)
        if [(r.table_name, r.distance) for r in sequential.results] != [
            (r.table_name, r.distance) for r in batched.results
        ]:
            problems.append(f"query_batch diverges from query on target {name!r}")
    target = corpus.lake.tables[0]
    bulk = engine.related_attributes_bulk(target, k=5)
    for column in target.columns:
        sequential = engine.related_attributes(target, column.name, k=5)
        if [(r.ref, r.distance) for r in sequential] != [
            (r.ref, r.distance) for r in bulk[column.name]
        ]:
            problems.append(
                f"related_attributes_bulk diverges on {target.name}.{column.name}"
            )
    return problems


def _check_api_roundtrip(corpus, engine) -> List[str]:
    """The serving API: shim-vs-session equivalence + lossless JSON wire format.

    Guards the QueryRequest/QueryResponse protocol contract at tier-1 speed:
    a DiscoverySession must answer exactly like the deprecated shims (which
    share its planner) and the sequential oracle, and ``to_dict`` →
    ``json`` → ``from_dict`` must reproduce the response exactly.
    """
    from repro.core.api import DiscoverySession, QueryRequest, QueryResponse

    problems: List[str] = []
    session = DiscoverySession(engine)
    target = corpus.lake.tables[1]
    for explain in (False, True):
        response = session.submit(QueryRequest(target=target, k=5, explain=explain))
        wire = json.loads(json.dumps(response.to_dict()))
        restored = QueryResponse.from_dict(wire)
        if restored != response:
            problems.append(
                f"QueryResponse JSON round trip is lossy (explain={explain})"
            )
        if restored.to_dict() != response.to_dict():
            problems.append(
                f"QueryResponse re-serialisation diverges (explain={explain})"
            )
    response = session.submit(QueryRequest(target=target, k=5))
    shim = engine.query_batch(target, k=5)
    oracle = engine.query(target, k=5)
    session_ranking = [(r.table_name, r.distance) for r in response.results]
    if session_ranking != [(r.table_name, r.distance) for r in shim.results]:
        problems.append("DiscoverySession diverges from the query_batch shim")
    if session_ranking != [(r.table_name, r.distance) for r in oracle.results]:
        problems.append("DiscoverySession diverges from the sequential oracle")
    attr_response = session.related_attributes(target, k=5, explain=True)
    wire = json.loads(json.dumps(attr_response.to_dict()))
    if QueryResponse.from_dict(wire) != attr_response:
        problems.append("attribute-level QueryResponse JSON round trip is lossy")
    bulk = engine.related_attributes_bulk(target, k=5)
    for name, entries in bulk.items():
        rankings = attr_response.attribute_results.get(name, [])
        if [(entry.ref, entry.distance) for entry in entries] != [
            (entry.source, entry.distance) for entry in rankings
        ]:
            problems.append(f"session attribute ranking diverges on {name!r}")
    return problems


def _check_join_serving(corpus, engine) -> List[str]:
    """Join-path serving: batched-vs-sequential build equivalence + the wire.

    Tier-1 guards over the D3L+J surface: the batched SA-join graph build
    must produce the identical edge set to the scalar probe-at-a-time
    oracle, and a ``joins=True`` request must put a ``join_paths`` block on
    the wire that survives ``to_dict`` → JSON → ``from_dict`` losslessly.
    """
    from repro.core.api import DiscoverySession, QueryRequest, QueryResponse
    from repro.core.joins import SAJoinGraph

    problems: List[str] = []
    batched = SAJoinGraph.build(engine.indexes, engine.config)
    sequential = SAJoinGraph.build_sequential(engine.indexes, engine.config)

    def edge_map(graph):
        return {
            tuple(sorted(pair)): (
                graph.edge(*pair).left,
                graph.edge(*pair).right,
                graph.edge(*pair).overlap,
            )
            for pair in graph.graph.edges
        }

    if edge_map(batched) != edge_map(sequential):
        problems.append("batched SA-join graph build diverges from build_sequential")
    session = DiscoverySession(engine)
    target = corpus.lake.tables[0]
    response = session.submit(QueryRequest(target=target, k=5, joins=True))
    if response.join_paths is None:
        problems.append("joins=True response is missing the join_paths block")
        return problems
    wire = json.loads(json.dumps(response.to_dict()))
    if QueryResponse.from_dict(wire) != response:
        problems.append("join_paths QueryResponse JSON round trip is lossy")
    return problems


def _check_shared_memory_path(corpus, engine) -> List[str]:
    """The zero-copy fan-out path answers exactly like the sequential oracle.

    Exercises the real shared-memory machinery on the tiny lake: an
    in-process snapshot attach must reproduce query rankings bit-identically,
    a ``workers=2`` fanned-out query (worker pool attached to a shared
    segment) must equal ``workers=1``, the join graph verified over the
    executor pool must equal the scalar oracle's edge set, and closing the
    engine must leave no stray segments behind.
    """
    from repro.core.discovery import D3L
    from repro.core.joins import SAJoinGraph
    from repro.core.shared import SharedIndexSnapshot, stray_segments

    problems: List[str] = []
    before = set(stray_segments())
    target = corpus.lake.tables[0]
    oracle = [(r.table_name, r.distance) for r in engine.query(target, k=5).results]

    snapshot = SharedIndexSnapshot.create(engine.indexes)
    try:
        attached = SharedIndexSnapshot.attach(snapshot.descriptor)
        mirror = D3L(
            config=attached.config,
            embedding_model=attached.embedding_model,
            weights=engine.weights,
            subject_classifier=attached.subject_classifier,
        )
        mirror.indexes = attached
        over_attached = [
            (r.table_name, r.distance)
            for r in mirror.query_batch(target, k=5).results
        ]
        if over_attached != oracle:
            problems.append("query over the attached shared index diverges")
    finally:
        snapshot.close()

    fanned = [
        (r.table_name, r.distance)
        for r in engine.query_batch(target, k=5, workers=2).results
    ]
    if fanned != oracle:
        problems.append("workers=2 shared-path query diverges from the oracle")

    def edge_map(graph):
        return {
            tuple(sorted(pair)): (
                graph.edge(*pair).left,
                graph.edge(*pair).right,
                graph.edge(*pair).overlap,
            )
            for pair in graph.graph.edges
        }

    shared_graph = engine.build_join_graph(workers=2)
    sequential_graph = SAJoinGraph.build_sequential(engine.indexes, engine.config)
    if edge_map(shared_graph) != edge_map(sequential_graph):
        problems.append("executor-verified join graph diverges from the oracle")

    engine.close()
    leaked = set(stray_segments()) - before
    if leaked:
        problems.append(f"shared-memory segments leaked: {sorted(leaked)}")
    return problems


def _check_live_serving(corpus, engine) -> List[str]:
    """A real HTTP server over the tiny engine: serve one query, shut down clean.

    Starts a :class:`~repro.core.server.DiscoveryServer` on a free port,
    answers ``/healthz`` and one ``POST /query``, checks the served payload
    byte-for-byte against an in-process :class:`DiscoverySession` answering
    the identical request, and verifies the shutdown leaves no stray
    shared-memory segments behind.
    """
    import http.client

    from repro.core.api import DiscoverySession, QueryRequest, query_request_to_wire
    from repro.core.server import DiscoveryServer
    from repro.core.shared import stray_segments

    problems: List[str] = []
    before = set(stray_segments())
    target = corpus.lake.tables[0]
    request = QueryRequest(target=target, k=5, joins=True)
    with DiscoverySession(engine) as oracle:
        expected = oracle.submit(request).truncated().to_dict()
    with DiscoveryServer(engine, port=0, workers=2) as server:
        connection = http.client.HTTPConnection(server.host, server.port, timeout=60)
        try:
            connection.request("GET", "/healthz")
            health = connection.getresponse()
            health_payload = json.loads(health.read())
            if health.status != 200 or health_payload.get("status") != "ok":
                problems.append(f"served /healthz answered {health.status}: {health_payload}")
            connection.request(
                "POST",
                "/query",
                body=json.dumps(query_request_to_wire(request)),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            if response.status != 200:
                problems.append(f"served /query answered {response.status}: {payload}")
            elif payload != expected:
                problems.append(
                    "served /query payload diverges from the in-process session"
                )
        finally:
            connection.close()
    if not server.closed:
        problems.append("DiscoveryServer did not report closed after __exit__")
    # Same single query against a process-backend server: worker processes
    # attach the shared snapshot read-only and must produce the identical
    # payload the thread backend (and the in-process session) did.
    with DiscoveryServer(engine, port=0, workers=2, backend="process") as server:
        connection = http.client.HTTPConnection(server.host, server.port, timeout=60)
        try:
            connection.request(
                "POST",
                "/query",
                body=json.dumps(query_request_to_wire(request)),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            if response.status != 200:
                problems.append(
                    f"process-served /query answered {response.status}: {payload}"
                )
            elif payload != expected:
                problems.append(
                    "process-served /query payload diverges from the in-process "
                    "session"
                )
        finally:
            connection.close()
    if not server.closed:
        problems.append(
            "process-backend DiscoveryServer did not report closed after __exit__"
        )
    leaked = set(stray_segments()) - before
    if leaked:
        problems.append(f"serving smoke leaked shared-memory segments: {sorted(leaked)}")
    return problems


def _check_mutation_equivalence(corpus) -> List[str]:
    """Incremental mutation equals a from-scratch rebuild on a tiny lake.

    Runs the incremental paths end to end on its own small engine — add a
    new table, remove one, upsert one with replacement content and restore
    it — and checks the result against an engine freshly built over the
    surviving tables: identical attribute sets, identical rankings (ties
    included), and identical SA-join edge sets.  This is the correctness
    half of the ``INCREMENTAL_ADD_SPEEDUP_FLOOR`` contract, at tier-1 speed.
    """
    from repro.core.config import D3LConfig
    from repro.core.discovery import D3L
    from repro.lake.datalake import DataLake

    config = D3LConfig(
        num_hashes=64, num_trees=8, min_candidates=15, embedding_dimension=16
    )
    tables = list(corpus.lake.tables)
    engine = D3L(config=config)
    engine.index_lake(DataLake("mutation_base", tables[:5]))
    extra = tables[6].with_name("smoke_mutation_extra")
    engine.index_table(extra)
    engine.remove_table(tables[1].name)
    engine.index_table(tables[7].with_name(tables[2].name))  # upsert, new content
    engine.index_table(tables[2])  # restore the original content
    survivors = [tables[0]] + tables[2:5] + [extra]

    oracle = D3L(config=config)
    oracle.index_lake(DataLake("mutation_oracle", survivors))
    problems: List[str] = []
    try:
        if set(engine.indexes.profiles) != set(oracle.indexes.profiles):
            problems.append(
                "mutated index holds a different attribute set than the rebuild"
            )
        for table in survivors[:3]:
            mutated = [
                (r.table_name, r.distance)
                for r in engine.query_batch(table, k=5).results
            ]
            rebuilt = [
                (r.table_name, r.distance)
                for r in oracle.query_batch(table, k=5).results
            ]
            if mutated != rebuilt:
                problems.append(
                    f"mutated rankings diverge from the rebuild on {table.name!r}"
                )

        def edge_map(graph):
            return {
                tuple(sorted(pair)): (
                    graph.edge(*pair).left,
                    graph.edge(*pair).right,
                    graph.edge(*pair).overlap,
                )
                for pair in graph.graph.edges
            }

        if edge_map(engine.join_graph) != edge_map(oracle.join_graph):
            problems.append("mutated SA-join edge set diverges from the rebuild")
    finally:
        engine.close()
        oracle.close()
    return problems


def run_quick() -> List[str]:
    """Every quick check; returns the list of problems found."""
    import warnings

    problems = _check_floors()
    problems += _check_recorded_payload()
    problems += _check_static_analysis()
    corpus, engine = _tiny_engine()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        problems += _check_tiny_lake_equivalence(corpus, engine)
        problems += _check_api_roundtrip(corpus, engine)
        problems += _check_join_serving(corpus, engine)
        problems += _check_live_serving(corpus, engine)
        problems += _check_mutation_equivalence(corpus)
        problems += _check_shared_memory_path(corpus, engine)
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Benchmark smoke checks")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the fast tier-1 checks (floors, JSON schema, tiny-lake "
        "equivalence); currently the only mode",
    )
    parser.parse_args(argv)
    problems = run_quick()
    for problem in problems:
        print(f"SMOKE FAILURE: {problem}")
    if not problems:
        print("benchmark smoke checks passed")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
