"""Sharded, multi-process index construction and query fan-out.

Figure 6a of the paper shows index construction dominating end-to-end cost:
a deployment indexes the lake once and answers many queries afterwards.
:class:`ParallelIndexBuilder` splits that one expensive pass across worker
processes; :class:`ParallelQueryExecutor` applies the same shard/merge
discipline to the query side, fanning one target's attributes out across
workers for the batched query engine
(:meth:`~repro.core.discovery.D3L.query_batch`).

:class:`ParallelIndexBuilder` works as follows:

1. the lake's table names are sorted and dealt round-robin into one shard
   per worker (deterministic for a given lake and worker count);
2. each worker process profiles its shard's tables and computes their
   signatures with the table-level batched passes
   (:meth:`~repro.core.indexes.D3LIndexes.table_signatures`);
3. the main process merges the shard results **in globally sorted table
   order** through :meth:`~repro.core.indexes.D3LIndexes.add_profiled_table`,
   i.e. the existing buffered forest inserts and batched signature-matrix
   appends.

Because signature computation is deterministic and the merge order is the
same sorted order a serial ``add_lake`` uses, a sharded build produces
signature matrices, forest contents, and therefore query rankings identical
to a single-process build — which is what ``tests/core/test_parallel_build.py``
locks down.
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.lake.datalake import DataLake
from repro.tables.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.indexes import D3LIndexes
    from repro.core.shared import Descriptor, SharedIndexSnapshot
    from repro.lake.datalake import AttributeRef

#: One shard worker's result: per table, the profile plus the per-attribute
#: signatures (``{attribute name: {evidence: signature or None}}``).
ShardResult = List[Tuple[object, Dict[str, dict]]]

#: Every live :class:`ParallelQueryExecutor` of this process, for the
#: leak-audit helpers (:func:`live_worker_pids`).  Weak so dropped executors
#: vanish from the audit once their finalizer has run.
_LIVE_EXECUTORS: "weakref.WeakSet[ParallelQueryExecutor]" = weakref.WeakSet()

#: Largest mutated-table count a worker pool refreshes via a delta; beyond
#: this, tearing the pool down and re-exporting a fresh snapshot is cheaper
#: than shipping per-table profiles and signatures with every task.
_DELTA_MAX_TABLES = 32


def _pool_size(requested: int) -> int:
    """Worker-process count for a pool: the request clamped to the host CPUs.

    Only the *pool* is clamped — shard partitioning stays a pure function of
    the requested worker count, so ``workers=N`` produces identical shards
    (and therefore identical merged results) on any host size.
    """
    return max(1, min(requested, os.cpu_count() or 1))


def live_worker_pids() -> Set[int]:
    """PIDs of worker processes owned by live query-executor pools."""
    pids: Set[int] = set()
    for executor in list(_LIVE_EXECUTORS):
        pool = executor._pool
        processes = getattr(pool, "_processes", None) if pool is not None else None
        if processes:
            pids.update(processes.keys())
    return pids


def _snapshot_descriptor(
    indexes: "D3LIndexes",
) -> Tuple["Descriptor", Optional["SharedIndexSnapshot"]]:
    """A shared snapshot of ``indexes`` plus the descriptor workers attach.

    Falls back to the degraded ``("pickle", indexes)`` descriptor — the old
    ship-a-copy-per-worker behavior — when no shared backing can be created,
    so fan-out keeps working (at the old cost) on hosts without ``/dev/shm``
    or a writable temp directory.
    """
    from repro.core.shared import SharedIndexSnapshot, SharedSnapshotError

    try:
        snapshot = SharedIndexSnapshot.create(indexes)
    except SharedSnapshotError:
        return ("pickle", indexes), None
    return snapshot.descriptor, snapshot


def _finalize_fanout(pool: ProcessPoolExecutor, snapshot) -> None:
    """Backstop for executors dropped without ``close()``: reap pool, unlink
    segment (worker mappings stay valid through their own exit)."""
    pool.shutdown(wait=False)
    if snapshot is not None:
        snapshot.close()


def partition_tables(table_names: Sequence[str], shards: int) -> List[List[str]]:
    """Deal the sorted table names round-robin into ``shards`` groups.

    Sorting first makes the partition a pure function of the name set, so
    rebuilding the same lake — regardless of the order its tables were added
    in — always yields the same shards.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    ordered = sorted(table_names)
    return [ordered[index::shards] for index in range(shards)]


#: The build-worker process's profiling clone (an empty ``D3LIndexes``
#: carrying the configuration, embedding model, and subject classifier),
#: installed once by the pool initializer so per-shard payloads are bare
#: table lists instead of re-shipping the models per shard.
_BUILD_WORKER_INDEXES: Optional["D3LIndexes"] = None


def _init_build_worker(indexes: "D3LIndexes") -> None:
    """Pool initializer: pin this build worker's profiling clone."""
    global _BUILD_WORKER_INDEXES
    _BUILD_WORKER_INDEXES = indexes


def _profile_and_sign_shard(
    tables: List[Table], indexes: Optional["D3LIndexes"] = None
) -> ShardResult:
    """Worker entry point: profile and sign every table of one shard.

    The profiling clone — a fresh (empty) ``D3LIndexes`` with exactly the
    same configuration, embedding model, and subject classifier as the
    merging process — is the worker-resident one installed by
    :func:`_init_build_worker` unless passed explicitly (the inline
    single-shard path); nothing is inserted into it.  Signatures are batched
    across the whole shard, so every worker exploits the same cross-table
    vocabulary sharing a serial ``add_lake`` does.
    """
    if indexes is None:
        indexes = _BUILD_WORKER_INDEXES
    table_profiles = [indexes.profile_table(table) for table in tables]
    signatures = indexes.batch_signatures(table_profiles)
    return [
        (table_profile, signatures[table_profile.table_name])
        for table_profile in table_profiles
    ]


class ParallelIndexBuilder:
    """Builds a :class:`~repro.core.indexes.D3LIndexes` over process shards.

    The target indexes (and through them the configuration, embedding model,
    and subject classifier) must be picklable, since an empty clone is
    shipped to every worker.  ``workers=1`` degenerates to profiling in the
    main process through the identical code path, which is how the
    determinism tests compare the two.
    """

    def __init__(self, indexes: "D3LIndexes", workers: int) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.indexes = indexes
        self.workers = workers

    def _worker_clone(self) -> "D3LIndexes":
        """A fresh, empty indexes object sharing the target's configuration."""
        from repro.core.indexes import D3LIndexes

        return D3LIndexes(
            config=self.indexes.config,
            embedding_model=self.indexes.embedding_model,
            subject_classifier=self.indexes.subject_classifier,
        )

    def build(self, lake: DataLake) -> "D3LIndexes":
        """Profile and sign ``lake`` across the shards, then merge in order.

        The profiling clone is shipped once per worker process through the
        pool initializer; per-shard payloads carry only the shard's tables.
        The pool itself is clamped to the host CPU count — sharding is not,
        so the merged result is a function of the requested worker count
        alone.
        """
        shards = [
            names for names in partition_tables(lake.table_names, self.workers) if names
        ]
        payloads = [[lake.table(name) for name in names] for names in shards]
        if len(payloads) <= 1:
            clone = self._worker_clone()
            shard_results = [
                _profile_and_sign_shard(payload, clone) for payload in payloads
            ]
        else:
            with ProcessPoolExecutor(
                max_workers=_pool_size(len(payloads)),
                initializer=_init_build_worker,
                initargs=(self._worker_clone(),),
            ) as pool:
                shard_results = list(pool.map(_profile_and_sign_shard, payloads))

        by_table: Dict[str, Tuple[object, Dict[str, dict]]] = {}
        for result in shard_results:
            for table_profile, signatures in result:
                by_table[table_profile.table_name] = (table_profile, signatures)
        for name in sorted(by_table):
            table_profile, signatures = by_table[name]
            self.indexes.add_profiled_table(table_profile, signatures)
        return self.indexes


# --------------------------------------------------------------------------- #
# SA-join verification fan-out
# --------------------------------------------------------------------------- #


def _verify_join_shard(payload) -> List[Tuple["AttributeRef", "AttributeRef", float]]:
    """Worker entry point: exact value-overlap of one shard's candidate pairs.

    ``payload`` is ``(samples, pairs)``: the value samples of exactly the
    refs this shard touches, plus the ``(left, right)`` ref pairs to verify.
    """
    from repro.core.profiles import sample_overlap

    samples, pairs = payload
    return [
        (left, right, sample_overlap(samples[left], samples[right]))
        for left, right in pairs
    ]


def _verify_join_shard_attached(
    payload,
) -> List[Tuple["AttributeRef", "AttributeRef", float]]:
    """Worker entry point: overlaps of one shard's pairs over the attached index.

    Runs in a query-worker pool (:func:`_init_query_worker`): the value
    samples are read from the worker-resident shared index's profiles, so
    the payload is ``(delta, pairs)`` — the executor's pending index delta
    (or None) plus the bare pair list; no samples are shipped at all.
    """
    from repro.core.profiles import sample_overlap

    delta, pairs = payload
    _refresh_worker_indexes(delta)
    profiles = _QUERY_WORKER_INDEXES.profiles
    return [
        (
            left,
            right,
            sample_overlap(
                profiles[left].value_sample, profiles[right].value_sample
            ),
        )
        for left, right in pairs
    ]


def verify_value_overlaps(
    samples: Dict["AttributeRef", frozenset],
    pairs: Sequence[Tuple["AttributeRef", "AttributeRef"]],
    workers: Optional[int] = None,
    executor: Optional["ParallelQueryExecutor"] = None,
) -> Dict[Tuple["AttributeRef", "AttributeRef"], float]:
    """Exact overlap coefficients of many candidate pairs, optionally sharded.

    The verification step of SA-join graph construction: every blocked
    ``(subject attribute, candidate attribute)`` pair surviving the
    estimated-overlap pre-filter is scored with the same overlap coefficient
    as :meth:`~repro.core.profiles.AttributeProfile.value_overlap`.

    With ``executor`` (a live :class:`ParallelQueryExecutor` over the same
    indexes), the pairs are verified on the executor's persistent worker
    pool against the shared attached index — no per-call pool spin-up and no
    sample shipping; ``samples`` may then be empty.  Otherwise ``workers >
    1`` deals the deduplicated pairs round-robin across a transient pool
    (clamped to the host CPU count), shipping each shard only the value
    samples its pairs touch.  Because the overlap of a pair is a pure
    function of the two samples and the merge is keyed by pair, every
    routing returns the identical mapping.
    """
    from repro.core.profiles import sample_overlap

    if executor is not None:
        return executor.verify_overlaps(pairs)
    ordered = list(dict.fromkeys(pairs))
    if workers is None or workers <= 1 or len(ordered) <= 1:
        return {
            (left, right): sample_overlap(samples[left], samples[right])
            for left, right in ordered
        }
    shards = [shard for shard in (ordered[index::workers] for index in range(workers)) if shard]
    payloads = [
        (
            {ref: samples[ref] for pair in shard for ref in pair},
            shard,
        )
        for shard in shards
    ]
    if len(payloads) <= 1:
        shard_results = [_verify_join_shard(payload) for payload in payloads]
    else:
        with ProcessPoolExecutor(max_workers=_pool_size(len(payloads))) as pool:
            shard_results = list(pool.map(_verify_join_shard, payloads))
    return {
        (left, right): overlap
        for result in shard_results
        for left, right, overlap in result
    }


#: One query shard worker's result: per target attribute, the sorted
#: candidate refs plus the per-evidence distance columns aligned with them
#: (``[(attribute name, refs, {evidence: column})]``).
QueryShardResult = List[Tuple[str, List, Dict]]


#: The query-worker process's resident view of the indexes, attached once by
#: the pool initializer.  Over the shared-memory path this is a read-only
#: reconstruction whose arrays are views into the host's one segment; only
#: under the degraded ``("pickle", ...)`` descriptor is it a private copy.
_QUERY_WORKER_INDEXES: Optional["D3LIndexes"] = None


def _init_query_worker(descriptor: "Descriptor") -> None:
    """Pool initializer: attach this worker process to the shared snapshot."""
    global _QUERY_WORKER_INDEXES
    from repro.core.shared import SharedIndexSnapshot

    _QUERY_WORKER_INDEXES = SharedIndexSnapshot.attach(descriptor)


def _refresh_worker_indexes(delta) -> None:
    """Bring this worker's resident index up to the host's version.

    ``delta`` is a :func:`~repro.core.shared.build_index_delta` result (or
    None when the pool's snapshot is already current).  The delta rides on
    every task payload rather than being broadcast — each worker applies it
    on its next task, and the apply is idempotent and convergent from any
    intermediate state, so no barrier across the pool is needed.
    """
    if delta is not None:
        from repro.core.shared import apply_index_delta

        apply_index_delta(_QUERY_WORKER_INDEXES, delta)


def _collect_shard_candidate_distances(payload) -> QueryShardResult:
    """Worker entry point: batched candidate collection for one shard.

    ``payload`` is ``(delta, table_name, entries, context)``: the executor's
    pending index delta (or None), the target's name, this shard's
    ``(attribute name, profile)`` pairs, and the shared query context
    (active evidence, pool, exclusions, subject-related tables).  The
    indexes are the worker-resident copy installed by
    :func:`_init_query_worker`, delta-refreshed when the host mutated; the
    worker runs exactly the same batched sweeps the single-process engine
    runs on its shard.
    """
    delta, table_name, entries, context = payload
    from repro.core.discovery import collect_attribute_candidate_distances

    _refresh_worker_indexes(delta)
    return collect_attribute_candidate_distances(
        _QUERY_WORKER_INDEXES, table_name, entries, **context
    )


class ParallelQueryExecutor:
    """Fans one query's target attributes out across worker processes.

    The sorted attribute names are dealt round-robin into one shard per
    worker (:func:`partition_tables` — the partition is a pure function of
    the attribute-name set), each worker collects its shard's candidate
    distance vectors through the batched sweeps of
    :func:`~repro.core.discovery.collect_attribute_candidate_distances`, and
    the merge re-emits the results in the target profile's original
    attribute order — the order the sequential engine iterates.  Because
    every per-attribute result is a pure function of the (read-only) indexes
    and the shared query context, ``workers=1`` and ``workers=N`` answers
    are identical, which ``tests/core/test_parallel_query.py`` locks down.

    The worker pool is created lazily on the first fanned-out query and kept
    alive for the executor's lifetime.  Pool spin-up exports one
    :class:`~repro.core.shared.SharedIndexSnapshot` of the indexes and ships
    each worker only the segment descriptor (~50 bytes); workers attach
    read-only array views over the one host-resident segment, so N workers
    no longer cost N× index memory or per-pool pickling.  The snapshot is
    taken at pool creation; when the index version moves past it,
    ``_ensure_pool`` self-heals — preferably by computing a per-table delta
    (:func:`~repro.core.shared.build_index_delta`) that subsequent task
    payloads carry to the workers, falling back to recreating pool and
    snapshot when the mutation set is too large or no longer reconstructible.
    """

    def __init__(self, indexes: "D3LIndexes", workers: int) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.indexes = indexes
        self.workers = workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._snapshot: Optional["SharedIndexSnapshot"] = None
        self._pool_version: Optional[int] = None
        # Version the current snapshot was exported at (the fixed delta base:
        # individual workers may sit at any state between it and the current
        # version, depending on which deltas they have already applied), and
        # the pending delta shipped with every pooled task payload.
        self._snapshot_version: Optional[int] = None
        self._delta = None
        self._finalizer: Optional[weakref.finalize] = None
        _LIVE_EXECUTORS.add(self)

    @property
    def snapshot(self) -> Optional["SharedIndexSnapshot"]:
        """The live shared snapshot backing the pool (None before spin-up or
        under the degraded pickle descriptor)."""
        return self._snapshot

    def close(self) -> None:
        """Shut the pool down and unlink its snapshot (the executor can be
        reused afterwards — the next fan-out re-creates both)."""
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._snapshot is not None:
            self._snapshot.close()
            self._snapshot = None
        self._pool_version = None
        self._snapshot_version = None
        self._delta = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is not None and self._pool_version != self.indexes.version:
            # The indexes moved past the state the workers hold.  Prefer a
            # per-table delta refresh over tearing the pool down: the delta
            # is always computed against the fixed snapshot version, so it is
            # valid for a worker at any intermediate state.
            from repro.core.shared import build_index_delta

            delta = build_index_delta(
                self.indexes, self._snapshot_version, max_tables=_DELTA_MAX_TABLES
            )
            if delta is None:
                # Not reconstructible (journal window exceeded) or too many
                # tables mutated — re-export the current state.
                self.close()
            else:
                self._delta = delta
                self._pool_version = self.indexes.version
        if self._pool is None:
            descriptor, self._snapshot = _snapshot_descriptor(self.indexes)
            self._pool_version = self.indexes.version
            self._snapshot_version = self.indexes.version
            self._delta = None
            self._pool = ProcessPoolExecutor(
                max_workers=_pool_size(self.workers),
                initializer=_init_query_worker,
                initargs=(descriptor,),
            )
            # Reap the pool and unlink the segment when the executor is
            # dropped without an explicit close(), so abandoned engines leak
            # neither worker processes nor /dev/shm segments (and do not
            # trip the interpreter-exit wakeup of concurrent.futures on an
            # already-collected pipe).
            self._finalizer = weakref.finalize(
                self, _finalize_fanout, self._pool, self._snapshot
            )
        return self._pool

    def verify_overlaps(
        self, pairs: Sequence[Tuple["AttributeRef", "AttributeRef"]]
    ) -> Dict[Tuple["AttributeRef", "AttributeRef"], float]:
        """Exact value overlaps of candidate pairs over the attached index.

        Shards the deduplicated pairs round-robin across this executor's
        persistent worker pool; each worker resolves value samples from its
        attached shared index, so payloads are bare pair lists.  Single-pair
        (or single-worker) calls short-circuit in-process over the same
        profiles — the result is routing-independent either way.
        """
        from repro.core.profiles import sample_overlap

        ordered = list(dict.fromkeys(pairs))
        if not ordered:
            return {}
        shards = [
            shard
            for shard in (ordered[index :: self.workers] for index in range(self.workers))
            if shard
        ]
        if self.workers <= 1 or len(shards) <= 1 or len(ordered) <= 1:
            profiles = self.indexes.profiles
            return {
                (left, right): sample_overlap(
                    profiles[left].value_sample, profiles[right].value_sample
                )
                for left, right in ordered
            }
        pool = self._ensure_pool()
        shard_results = list(
            pool.map(
                _verify_join_shard_attached,
                [(self._delta, shard) for shard in shards],
            )
        )
        return {
            (left, right): overlap
            for result in shard_results
            for left, right, overlap in result
        }

    def collect(
        self,
        table_name: str,
        entries: Sequence[Tuple[str, object]],
        **context,
    ) -> QueryShardResult:
        """Collect every attribute's candidate distances across the shards.

        When the shared query context carries memoized target signatures
        (``signature_maps``, from a serving session's profile cache), each
        worker is shipped only its own shard's slice of the map so repeated
        queries neither re-sign the target nor pay for signatures of
        attributes another shard owns.
        """
        entries = list(entries)
        profile_of = dict(entries)
        signature_maps = context.pop("signature_maps", None)
        shards = [
            names
            for names in partition_tables([name for name, _ in entries], self.workers)
            if names
        ]
        shard_entries = [
            [(name, profile_of[name]) for name in names] for names in shards
        ]

        def shard_signatures(names):
            if signature_maps is None:
                return None
            return {name: signature_maps[name] for name in names}

        if len(shard_entries) <= 1:
            from repro.core.discovery import collect_attribute_candidate_distances

            shard_results = [
                collect_attribute_candidate_distances(
                    self.indexes,
                    table_name,
                    entries_for_shard,
                    signature_maps=shard_signatures([name for name, _ in entries_for_shard]),
                    **context,
                )
                for entries_for_shard in shard_entries
            ]
        else:
            pool = self._ensure_pool()
            payloads = [
                (
                    self._delta,
                    table_name,
                    entries_for_shard,
                    context
                    | {
                        "signature_maps": shard_signatures(
                            [name for name, _ in entries_for_shard]
                        )
                    },
                )
                for entries_for_shard in shard_entries
            ]
            shard_results = list(
                pool.map(_collect_shard_candidate_distances, payloads)
            )
        by_attribute = {
            name: (refs, columns)
            for result in shard_results
            for name, refs, columns in result
        }
        return [
            (name, *by_attribute[name])
            for name, _ in entries
            if name in by_attribute
        ]
