"""Ablation — contribution of the numeric (D) evidence.

The paper reports that disabling distribution evidence (treating D_D = 1
everywhere) costs less than 3.5% of aggregated precision and recall on its
real corpus, because most numeric relationships are already caught by name
and format evidence.  This ablation repeats that measurement.
"""

import numpy as np

from conftest import REAL_KS, NUM_TARGETS, run_once

from repro.core.evidence import EvidenceType
from repro.evaluation.metrics import precision_recall_at_k


def _sweep(suite, evidence_types, ks, num_targets, seed):
    corpus = suite.benchmark
    targets = corpus.pick_targets(num_targets, seed=seed)
    max_k = max(ks)
    # Both variants rank with the same trained Equation 3 weights so that the
    # comparison isolates the contribution of the D (KS) distances themselves
    # rather than a change of weighting scheme.
    answers = {
        target.name: suite.d3l.query(
            target, k=max_k, evidence_types=evidence_types, weights=suite.d3l.weights
        )
        for target in targets
    }
    rows = []
    for k in ks:
        precisions, recalls = [], []
        for target in targets:
            precision, recall = precision_recall_at_k(
                answers[target.name], corpus.ground_truth, target.name, k
            )
            precisions.append(precision)
            recalls.append(recall)
        rows.append(
            {
                "k": k,
                "precision": float(np.mean(precisions)),
                "recall": float(np.mean(recalls)),
            }
        )
    return rows


def test_ablation_numeric_evidence(benchmark, record_rows, real_suite):
    def run_ablation():
        with_numeric = _sweep(real_suite, None, REAL_KS, NUM_TARGETS, seed=15)
        without_numeric = _sweep(
            real_suite, list(EvidenceType.indexed()), REAL_KS, NUM_TARGETS, seed=15
        )
        rows = []
        for row in with_numeric:
            rows.append({"variant": "all_evidence", **row})
        for row in without_numeric:
            rows.append({"variant": "without_distribution", **row})
        return rows

    rows = run_once(benchmark, run_ablation)
    record_rows(
        "ablation_numeric_evidence",
        rows,
        "Ablation: aggregated effectiveness with vs without D (KS) evidence",
    )

    def mean_metric(variant, metric):
        return float(np.mean([row[metric] for row in rows if row["variant"] == variant]))

    # The paper: dropping numeric evidence costs only a few percent (< 3.5%
    # at its scale); allow a slightly wider band on the generated corpus.
    drop_precision = mean_metric("all_evidence", "precision") - mean_metric(
        "without_distribution", "precision"
    )
    drop_recall = mean_metric("all_evidence", "recall") - mean_metric(
        "without_distribution", "recall"
    )
    assert abs(drop_precision) <= 0.15
    assert abs(drop_recall) <= 0.15
