"""repro — a reproduction of "Dataset Discovery in Data Lakes" (D3L, ICDE 2020).

The package implements the D3L discovery engine (five-evidence LSH-based
relatedness with join-path extension), the TUS and Aurum baselines, the
benchmark corpus generators, and the evaluation harness that regenerates
every table and figure of the paper.

Quickstart::

    from repro import D3L, DataLake, DiscoverySession, QueryRequest

    lake = DataLake("my-lake", tables)
    engine = D3L()
    engine.index_lake(lake)
    session = DiscoverySession(engine)
    answer = session.submit(QueryRequest(target=target_table, k=10))
    for entry in answer.top():
        print(entry.table_name, entry.distance)
"""

from repro.core.api import (
    AttributeRanking,
    DiscoverySession,
    JoinPathsBlock,
    QueryRequest,
    QueryResponse,
    TableRanking,
)
from repro.core.config import D3LConfig
from repro.core.discovery import D3L, JoinAugmentedResult, QueryResult, TableResult
from repro.core.evidence import EvidenceType
from repro.core.indexes import D3LIndexes
from repro.core.persistence import load_engine, load_session, save_engine, save_session
from repro.core.weights import EvidenceWeights, train_evidence_weights
from repro.lake.datalake import AttributeRef, DataLake
from repro.tables.column import Column
from repro.tables.table import Table

__version__ = "1.0.0"

__all__ = [
    "AttributeRanking",
    "AttributeRef",
    "Column",
    "D3L",
    "D3LConfig",
    "D3LIndexes",
    "DataLake",
    "DiscoverySession",
    "EvidenceType",
    "EvidenceWeights",
    "JoinAugmentedResult",
    "JoinPathsBlock",
    "QueryRequest",
    "QueryResponse",
    "QueryResult",
    "Table",
    "TableRanking",
    "TableResult",
    "load_engine",
    "load_session",
    "save_engine",
    "save_session",
    "train_evidence_weights",
    "__version__",
]
