"""Oracle harness for incremental lake mutation.

The tentpole contract: any interleaving of ``index_table`` / ``remove_table``
/ re-add must leave the engine indistinguishable from one built from scratch
over the surviving tables — identical rankings (ties included), identical
join-graph edge sets, and ``workers=1 == workers=N`` through the
delta-refreshed executor pools.  The mutation journal and the net-delta
build/apply pair that ship mutations to live workers are unit-tested here
alongside the randomized sequences.
"""

import pickle
import random

import numpy as np
import pytest

from repro.core.config import D3LConfig
from repro.core.discovery import D3L
from repro.core.evidence import EvidenceType
from repro.core.indexes import _MUTATION_LOG_LIMIT
from repro.core.shared import apply_index_delta, build_index_delta
from repro.datagen.synthetic_benchmark import (
    SyntheticBenchmarkConfig,
    generate_synthetic_benchmark,
)
from repro.lake.datalake import DataLake
from repro.tables.table import Table

from tests.core.test_batched_query import assert_identical_answers


@pytest.fixture(scope="module")
def corpus():
    return generate_synthetic_benchmark(
        SyntheticBenchmarkConfig(
            num_base_tables=3,
            tables_per_base=3,
            base_rows=40,
            min_rows=15,
            max_rows=30,
            seed=33,
        )
    )


_CONFIG = dict(num_hashes=64, num_trees=8, min_candidates=15, embedding_dimension=16)


def _fresh_engine():
    return D3L(config=D3LConfig(**_CONFIG))


def _build_engine(tables):
    engine = _fresh_engine()
    engine.index_lake(DataLake("oracle", list(tables)))
    return engine


def _rankings(engine, targets, k=5):
    return [
        [(result.table_name, result.distance) for result in engine.query_batch(target, k=k).results]
        for target in targets
    ]


def _edge_map(graph):
    return {
        tuple(sorted(pair)): (
            graph.edge(*pair).left,
            graph.edge(*pair).right,
            graph.edge(*pair).overlap,
        )
        for pair in graph.graph.edges
    }


def _forest_states(indexes):
    states = {}
    for evidence in EvidenceType.indexed():
        state = indexes._forests[evidence].export_state()
        states[evidence] = [
            (tree["keys"].tobytes(), tree["items"]) for tree in state["trees"]
        ]
    return states


def _matrix_maps(indexes):
    maps = {}
    for evidence in EvidenceType.indexed():
        refs, matrix, flags = indexes._matrices[evidence].export_state(copy=False)
        maps[evidence] = {
            ref: (matrix[row].tobytes(), bool(flags[row]))
            for row, ref in enumerate(refs)
        }
    return maps


def assert_equals_rebuilt_oracle(engine, tables, targets):
    """``engine`` must be indistinguishable from a from-scratch build."""
    oracle = _build_engine(tables)
    try:
        assert set(engine.indexes.table_names) == set(oracle.indexes.table_names)
        assert set(engine.indexes.profiles) == set(oracle.indexes.profiles)
        # Canonical tree layout: a mutated forest compacts bit-identically.
        assert _forest_states(engine.indexes) == _forest_states(oracle.indexes)
        # Matrix rows may sit at different offsets (swap-removal), but the
        # per-ref contents must match exactly.
        assert _matrix_maps(engine.indexes) == _matrix_maps(oracle.indexes)
        assert _rankings(engine, targets) == _rankings(oracle, targets)
        assert _edge_map(engine.join_graph) == _edge_map(oracle.join_graph)
    finally:
        oracle.close()


class TestMutationJournal:
    def test_current_version_yields_empty_set(self, corpus):
        engine = _build_engine(corpus.lake.tables[:3])
        assert engine.indexes.mutated_tables_since(engine.indexes.version) == set()

    def test_mutations_accumulate_per_table(self, corpus):
        engine = _build_engine(corpus.lake.tables[:3])
        base = engine.indexes.version
        extra = corpus.lake.tables[4].with_name("journal_extra")
        engine.index_table(extra)
        assert engine.indexes.mutated_tables_since(base) == {"journal_extra"}
        victim = corpus.lake.tables[0].name
        engine.remove_table(victim)
        assert engine.indexes.mutated_tables_since(base) == {"journal_extra", victim}
        # A narrower base only sees the later mutation.
        assert engine.indexes.mutated_tables_since(base + 1) == {victim}

    def test_unknown_bases_are_conservative(self, corpus):
        engine = _build_engine(corpus.lake.tables[:3])
        assert engine.indexes.mutated_tables_since(engine.indexes.version + 1) is None
        assert engine.indexes.mutated_tables_since(-1) is None

    def test_exhausted_window_yields_none(self, corpus):
        engine = _build_engine(corpus.lake.tables[:3])
        base = engine.indexes.version
        engine.index_table(corpus.lake.tables[4].with_name("window_extra"))
        engine.indexes._mutation_log.clear()
        assert engine.indexes.mutated_tables_since(base) is None

    def test_journal_is_bounded(self, corpus):
        engine = _build_engine(corpus.lake.tables[:3])
        indexes = engine.indexes
        for _ in range(_MUTATION_LOG_LIMIT + 10):
            indexes.version += 1
            indexes._log_mutation("synthetic")
        assert len(indexes._mutation_log) == _MUTATION_LOG_LIMIT
        # Entries beyond the window are gone, so old bases report None.
        assert indexes.mutated_tables_since(0) is None


class TestIndexDelta:
    def test_upsert_and_remove_ops(self, corpus):
        engine = _build_engine(corpus.lake.tables[:4])
        base = engine.indexes.version
        victim = corpus.lake.tables[1].name
        engine.remove_table(victim)
        engine.index_table(corpus.lake.tables[5].with_name("delta_extra"))
        delta = build_index_delta(engine.indexes, base)
        assert delta is not None
        target_version, ops = delta
        assert target_version == engine.indexes.version
        assert [op[:2] for op in ops] == sorted(
            [("remove", victim), ("upsert", "delta_extra")], key=lambda op: op[1]
        )

    def test_max_tables_cap(self, corpus):
        engine = _build_engine(corpus.lake.tables[:4])
        base = engine.indexes.version
        engine.index_table(corpus.lake.tables[5].with_name("cap_a"))
        engine.index_table(corpus.lake.tables[6].with_name("cap_b"))
        assert build_index_delta(engine.indexes, base, max_tables=1) is None
        assert build_index_delta(engine.indexes, base, max_tables=2) is not None

    def test_apply_converges_to_the_host_state(self, corpus):
        engine = _build_engine(corpus.lake.tables[:4])
        stale = pickle.loads(pickle.dumps(engine.indexes))
        base = engine.indexes.version
        victim = corpus.lake.tables[2].name
        engine.remove_table(victim)
        engine.index_table(corpus.lake.tables[5].with_name("apply_extra"))
        # Re-add one surviving table with different content (upsert path).
        mutated_name = corpus.lake.tables[0].name
        engine.index_table(corpus.lake.tables[7].with_name(mutated_name))
        delta = build_index_delta(engine.indexes, base)
        assert delta is not None
        apply_index_delta(stale, delta)
        assert stale.version == engine.indexes.version
        assert set(stale.profiles) == set(engine.indexes.profiles)
        assert _forest_states(stale) == _forest_states(engine.indexes)
        assert _matrix_maps(stale) == _matrix_maps(engine.indexes)

    def test_apply_is_idempotent(self, corpus):
        engine = _build_engine(corpus.lake.tables[:4])
        stale = pickle.loads(pickle.dumps(engine.indexes))
        base = engine.indexes.version
        engine.index_table(corpus.lake.tables[5].with_name("idempotent_extra"))
        delta = build_index_delta(engine.indexes, base)
        apply_index_delta(stale, delta)
        before = _matrix_maps(stale)
        apply_index_delta(stale, delta)  # replay must be a no-op
        assert stale.version == engine.indexes.version
        assert _matrix_maps(stale) == before

    def test_delta_reuses_stored_signatures(self, corpus):
        engine = _build_engine(corpus.lake.tables[:3])
        base = engine.indexes.version
        extra = corpus.lake.tables[4].with_name("signature_reuse")
        engine.index_table(extra)
        delta = build_index_delta(engine.indexes, base)
        (_, name, profile, signatures) = delta[1][0]
        assert name == "signature_reuse"
        for attribute_name, attribute in profile.attributes.items():
            for evidence in EvidenceType.indexed():
                assert (
                    signatures[attribute_name][evidence]
                    is engine.indexes.signature(evidence, attribute.ref)
                )


class TestBatchedRemoval:
    """The batched removal path must be observationally equal to per-op removal.

    ``remove_tables`` compacts matrices stably while sequential ``remove_table``
    swap-packs, so physical row order may differ — every assertion here goes
    through row-order-independent views (per-ref content maps, compacted
    forest exports, rankings) plus the order-sensitive journal and version.
    """

    def test_remove_tables_matches_sequential_removals(self, corpus):
        engine = _build_engine(corpus.lake.tables[:6])
        try:
            base = engine.indexes.version
            victims = sorted(engine.indexes.table_names)[1:4]
            sequential = pickle.loads(pickle.dumps(engine.indexes))
            for name in victims:
                assert sequential.remove_table(name) is True
            batched = pickle.loads(pickle.dumps(engine.indexes))
            assert batched.remove_tables(victims) == len(victims)
            assert batched.version == sequential.version
            assert set(batched.table_names) == set(sequential.table_names)
            assert set(batched.profiles) == set(sequential.profiles)
            assert _forest_states(batched) == _forest_states(sequential)
            assert _matrix_maps(batched) == _matrix_maps(sequential)
            assert batched.mutated_tables_since(base) == sequential.mutated_tables_since(base)
            assert batched._mutation_log == sequential._mutation_log
        finally:
            engine.close()

    def test_remove_tables_ignores_unknown_names(self, corpus):
        engine = _build_engine(corpus.lake.tables[:4])
        try:
            base = engine.indexes.version
            victim = sorted(engine.indexes.table_names)[0]
            removed = engine.indexes.remove_tables(["no_such_table", victim, "ghost"])
            assert removed == 1
            assert engine.indexes.version == base + 1
            assert engine.indexes.mutated_tables_since(base) == {victim}
        finally:
            engine.close()

    def test_batched_engine_answers_like_a_rebuild(self, corpus):
        engine = _build_engine(corpus.lake.tables[:6])
        try:
            victims = sorted(engine.indexes.table_names)[:2]
            assert engine.indexes.remove_tables(victims) == 2
            survivors = [
                table
                for table in corpus.lake.tables[:6]
                if table.name not in victims
            ]
            assert_equals_rebuilt_oracle(engine, survivors, survivors[:3])
        finally:
            engine.close()

    def test_discard_batch_matches_sequential_discards(self, corpus):
        engine = _build_engine(corpus.lake.tables[:5])
        try:
            evidence = EvidenceType.indexed()[0]
            host = engine.indexes._matrices[evidence]
            refs, _, _ = host.export_state(copy=False)
            doomed = list(refs)[::2] + ["not-a-ref"]
            sequential = pickle.loads(pickle.dumps(host))
            # Reversed order on the sequential side: swap-pack row placement
            # depends on removal order, the per-ref contents must not.
            for ref in reversed(doomed):
                sequential.discard(ref)
            batched = pickle.loads(pickle.dumps(host))
            assert batched.discard_batch(doomed) == len(doomed) - 1
            s_refs, s_matrix, s_flags = sequential.export_state(copy=False)
            b_refs, b_matrix, b_flags = batched.export_state(copy=False)
            assert set(b_refs) == set(s_refs) == set(refs) - set(doomed)
            sequential_map = {
                ref: (s_matrix[row].tobytes(), bool(s_flags[row]))
                for row, ref in enumerate(s_refs)
            }
            batched_map = {
                ref: (b_matrix[row].tobytes(), bool(b_flags[row]))
                for row, ref in enumerate(b_refs)
            }
            assert batched_map == sequential_map
            # Tie-breaking ranks are a pure function of the ref set.
            assert sorted(b_refs) == sorted(s_refs)
            assert [b_refs[row] for row in np.argsort(batched.ref_ranks())] == sorted(b_refs)
        finally:
            engine.close()

    def test_forest_remove_batch_matches_sequential_removes(self, corpus):
        engine = _build_engine(corpus.lake.tables[:5])
        try:
            evidence = EvidenceType.indexed()[0]
            host = engine.indexes._forests[evidence]
            keys = sorted(engine.indexes._signatures[evidence])
            doomed = keys[::3] + ["not-a-key"]
            sequential = pickle.loads(pickle.dumps(host))
            for key in reversed(doomed):
                sequential.remove(key)
            batched = pickle.loads(pickle.dumps(host))
            batched.remove_batch(doomed)
            assert len(batched) == len(sequential)
            s_state = sequential.export_state()
            b_state = batched.export_state()
            assert len(b_state["trees"]) == len(s_state["trees"])
            for b_tree, s_tree in zip(b_state["trees"], s_state["trees"]):
                assert b_tree["keys"].tobytes() == s_tree["keys"].tobytes()
                assert b_tree["items"] == s_tree["items"]
        finally:
            engine.close()

    def test_delta_replay_batches_multi_table_removals(self, corpus):
        engine = _build_engine(corpus.lake.tables[:6])
        try:
            stale = pickle.loads(pickle.dumps(engine.indexes))
            base = engine.indexes.version
            victims = sorted(engine.indexes.table_names)[:3]
            for name in victims:
                engine.remove_table(name)
            engine.index_table(corpus.lake.tables[7].with_name("batch_extra"))
            delta = build_index_delta(engine.indexes, base)
            assert delta is not None
            assert sum(1 for op in delta[1] if op[0] == "remove") == len(victims)
            apply_index_delta(stale, delta)
            assert stale.version == engine.indexes.version
            assert set(stale.profiles) == set(engine.indexes.profiles)
            assert _forest_states(stale) == _forest_states(engine.indexes)
            assert _matrix_maps(stale) == _matrix_maps(engine.indexes)
        finally:
            engine.close()


class TestRandomizedMutationOracle:
    """Hypothesis-style randomized add/remove/re-add sequences.

    Each seeded run draws a random operation sequence over the corpus —
    removing live tables, re-adding removed ones, and upserting live tables
    with replacement content — interleaved with queries and join-graph
    builds so every cache and delta path is exercised mid-sequence.  The
    final state must equal a from-scratch rebuild of the surviving tables.
    """

    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_sequence_equals_from_scratch_rebuild(self, corpus, seed):
        rng = random.Random(seed)
        all_tables = list(corpus.lake.tables)
        live = {table.name: table for table in all_tables[:6]}
        spare = all_tables[6:]
        engine = _build_engine(live.values())
        try:
            for step in range(10):
                op = rng.choice(["remove", "add", "upsert"])
                if op == "remove" and len(live) > 3:
                    name = rng.choice(sorted(live))
                    del live[name]
                    assert engine.remove_table(name) is True
                elif op == "add":
                    table = rng.choice(spare).with_name(f"seed{seed}_step{step}")
                    live[table.name] = table
                    engine.index_table(table)
                else:
                    name = rng.choice(sorted(live))
                    replacement = rng.choice(all_tables).with_name(name)
                    live[name] = replacement
                    engine.index_table(replacement)
                if step % 3 == 0:
                    target = live[rng.choice(sorted(live))]
                    engine.query_batch(target, k=4)
                    engine.join_graph
            probes = [live[name] for name in sorted(live)[:3]]
            assert_equals_rebuilt_oracle(engine, live.values(), probes)
        finally:
            engine.close()

    def test_mutated_engine_fans_out_identically(self, corpus):
        # workers=1 == workers=N through the delta-refreshed pool, with the
        # pool created *before* the mutations so the deltas ride the wire.
        live = {table.name: table for table in corpus.lake.tables[:6]}
        engine = _build_engine(live.values())
        try:
            warmup = live[sorted(live)[0]]
            engine.query_batch(warmup, k=4, workers=2)
            assert engine._query_executors
            executor = engine._query_executors[2]
            pool_before = executor._pool

            victim = sorted(live)[1]
            del live[victim]
            engine.remove_table(victim)
            extra = corpus.lake.tables[7].with_name("fanout_extra")
            live[extra.name] = extra
            engine.index_table(extra)

            for name in sorted(live):
                target = live[name]
                assert_identical_answers(
                    engine.query_batch(target, k=4, workers=1),
                    engine.query_batch(target, k=4, workers=2),
                )
            assert executor._pool is pool_before

            oracle = _build_engine(live.values())
            try:
                for name in sorted(live)[:3]:
                    assert_identical_answers(
                        oracle.query_batch(live[name], k=4),
                        engine.query_batch(live[name], k=4, workers=2),
                    )
            finally:
                oracle.close()
        finally:
            engine.close()
