"""Evaluation harness: metrics, experiment runners, and reporting.

The modules here regenerate the paper's evaluation section:

* :mod:`repro.evaluation.metrics` — precision/recall at k (Experiments 1–3)
  and attribute precision (Experiments 9 and 11);
* :mod:`repro.evaluation.coverage` — target coverage with and without join
  paths, Equations 4 and 5 (Experiments 8 and 10);
* :mod:`repro.evaluation.experiments` — one runner per table/figure, shared
  engine construction and D3L weight training;
* :mod:`repro.evaluation.reporting` — plain-text rendering of result series
  in the shape the paper reports them.
"""

from repro.evaluation.coverage import (
    table_coverage,
    target_coverage_at_k,
    target_coverage_with_joins,
)
from repro.evaluation.metrics import (
    attribute_precision_at_k,
    attribute_precision_with_joins,
    average_over_targets,
    precision_recall_at_k,
)
from repro.evaluation.experiments import (
    EngineSuite,
    build_engine_suite,
    experiment_effectiveness,
    experiment_example_distances,
    experiment_indexing_time,
    experiment_individual_evidence,
    experiment_join_impact,
    experiment_repository_stats,
    experiment_search_time,
    experiment_space_overhead,
    experiment_subject_attribute_accuracy,
    experiment_weight_training,
    train_d3l_weights,
)
from repro.evaluation.plots import ascii_line_chart, chart_metric_by_system
from repro.evaluation.reporting import format_series_table, render_rows
from repro.evaluation.runner import ExperimentReport, run_all_experiments

__all__ = [
    "EngineSuite",
    "ExperimentReport",
    "ascii_line_chart",
    "attribute_precision_at_k",
    "chart_metric_by_system",
    "run_all_experiments",
    "attribute_precision_with_joins",
    "average_over_targets",
    "build_engine_suite",
    "experiment_effectiveness",
    "experiment_example_distances",
    "experiment_indexing_time",
    "experiment_individual_evidence",
    "experiment_join_impact",
    "experiment_repository_stats",
    "experiment_search_time",
    "experiment_space_overhead",
    "experiment_subject_attribute_accuracy",
    "experiment_weight_training",
    "format_series_table",
    "precision_recall_at_k",
    "render_rows",
    "table_coverage",
    "target_coverage_at_k",
    "target_coverage_with_joins",
    "train_d3l_weights",
]
