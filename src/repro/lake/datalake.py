"""The data lake: a repository of datasets with minimal metadata.

The paper defines a data lake as a repository whose items are datasets about
which nothing more is known than their attribute names and, possibly, their
domain-independent types.  :class:`DataLake` is exactly that: a named
collection of :class:`~repro.tables.table.Table` objects, loadable from a
directory of CSV files, with the bookkeeping the evaluation needs (sizes,
attribute enumeration, sampling).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.tables.csv_io import read_csv_directory, write_csv_directory
from repro.tables.column import Column
from repro.tables.table import Table


@dataclass(frozen=True, order=True)
class AttributeRef:
    """A fully qualified attribute: (table name, column name).

    Used as the key type of every index in the system, for both lake
    attributes and target attributes.
    """

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"

    @classmethod
    def parse(cls, text: str) -> "AttributeRef":
        """Parse a ``table.column`` string (the column may contain dots)."""
        table, _, column = text.partition(".")
        if not table or not column:
            raise ValueError(f"cannot parse attribute reference from {text!r}")
        return cls(table, column)


class DataLake:
    """A named repository of tables.

    Tables are keyed by name; insertion order is preserved so that iteration
    (and therefore indexing) is deterministic.
    """

    def __init__(self, name: str = "lake", tables: Optional[Sequence[Table]] = None) -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}
        for table in tables or []:
            self.add_table(table)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_directory(
        cls,
        directory: Union[str, Path],
        name: Optional[str] = None,
        max_tables: Optional[int] = None,
        max_rows: Optional[int] = None,
    ) -> "DataLake":
        """Load every CSV file under ``directory`` into a lake."""
        directory = Path(directory)
        tables = read_csv_directory(directory, max_tables=max_tables, max_rows=max_rows)
        return cls(name or directory.name, tables)

    def to_directory(self, directory: Union[str, Path]) -> List[Path]:
        """Materialise the lake as a directory of CSV files."""
        return write_csv_directory(self.tables, directory)

    def add_table(self, table: Table) -> None:
        """Add ``table`` to the lake, replacing any table with the same name."""
        self._tables[table.name] = table

    def remove_table(self, name: str) -> None:
        """Remove the named table (no-op when absent)."""
        self._tables.pop(name, None)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    @property
    def tables(self) -> List[Table]:
        """All tables, in insertion order."""
        return list(self._tables.values())

    @property
    def table_names(self) -> List[str]:
        """All table names, in insertion order."""
        return list(self._tables)

    def table(self, name: str) -> Table:
        """The table called ``name`` (KeyError when absent)."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"lake {self.name!r} has no table {name!r}") from None

    def column(self, ref: AttributeRef) -> Column:
        """The column identified by ``ref``."""
        return self.table(ref.table).column(ref.column)

    def attributes(self) -> Iterator[Tuple[AttributeRef, Column]]:
        """Iterate over every (attribute reference, column) pair in the lake.

        Tables are visited in sorted-name order (columns in table order) so
        the enumeration is independent of lake insertion order — the same
        stable ordering contract index construction uses (``add_lake`` and
        ``parallel.partition_tables`` sort table names themselves).
        """
        for name in sorted(self._tables):
            table = self._tables[name]
            for column in table.columns:
                yield AttributeRef(table.name, column.name), column

    # ------------------------------------------------------------------ #
    # statistics used by the evaluation
    # ------------------------------------------------------------------ #
    @property
    def attribute_count(self) -> int:
        """Total number of attributes across the lake."""
        return sum(table.arity for table in self._tables.values())

    def estimated_bytes(self) -> int:
        """Approximate total size of the lake (denominator of Table II)."""
        return sum(table.estimated_bytes() for table in self._tables.values())

    def describe(self) -> Dict[str, object]:
        """Corpus-level statistics in the style of Figure 2."""
        tables = self.tables
        arities = [table.arity for table in tables]
        cardinalities = [table.cardinality for table in tables]
        numeric_ratios = [table.numeric_ratio for table in tables]
        return {
            "name": self.name,
            "tables": len(tables),
            "attributes": self.attribute_count,
            "estimated_bytes": self.estimated_bytes(),
            "arity_mean": float(np.mean(arities)) if arities else 0.0,
            "arity_max": max(arities) if arities else 0,
            "cardinality_mean": float(np.mean(cardinalities)) if cardinalities else 0.0,
            "cardinality_max": max(cardinalities) if cardinalities else 0,
            "numeric_attribute_ratio": float(np.mean(numeric_ratios)) if numeric_ratios else 0.0,
        }

    def sample(self, n: int, seed: int = 0, name: Optional[str] = None) -> "DataLake":
        """A new lake with ``n`` tables sampled without replacement."""
        if n >= len(self._tables):
            return DataLake(name or f"{self.name}_sample", self.tables)
        generator = np.random.default_rng(seed)
        chosen = generator.choice(len(self._tables), size=n, replace=False)
        tables = self.tables
        return DataLake(name or f"{self.name}_sample", [tables[i] for i in sorted(chosen)])
