"""Effectiveness metrics: precision/recall at k and attribute precision.

Definitions follow section V-A of the paper:

* a *true positive* is a table in the top-k that the ground truth marks as
  related to the target (at least one related attribute suffices);
* a *false positive* is a table in the top-k not related in the ground truth;
* a *false negative* is a related table missing from the top-k;
* *attribute precision* counts an alignment between a source attribute and a
  target attribute as correct when the ground truth relates the two
  attributes (same semantic domain), and averages the per-table precision
  over the top-k.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.datagen.ground_truth import GroundTruth
from repro.lake.datalake import AttributeRef
from repro.tables.table import Table


def precision_recall_at_k(
    answer,
    ground_truth: GroundTruth,
    target_name: str,
    k: int,
) -> Tuple[float, float]:
    """Precision and recall of the top-k tables of ``answer``.

    ``answer`` is any object exposing ``table_names(k)`` (D3L's
    ``QueryResult`` or the baselines' ``RankedAnswer``).
    """
    returned = list(answer.table_names(k))
    relevant = ground_truth.related_to(target_name)
    true_positives = sum(1 for name in returned if name in relevant)
    false_positives = len(returned) - true_positives
    false_negatives = len(relevant - set(returned))
    precision = true_positives / (true_positives + false_positives) if returned else 0.0
    recall = (
        true_positives / (true_positives + false_negatives)
        if (true_positives + false_negatives) > 0
        else 0.0
    )
    return precision, recall


def _alignment_is_correct(
    ground_truth: GroundTruth, target_name: str, target_attribute: str, source: AttributeRef
) -> bool:
    return ground_truth.are_attributes_related(
        AttributeRef(target_name, target_attribute), source
    )


def table_attribute_precision(
    result,
    ground_truth: GroundTruth,
    target_name: str,
) -> Optional[float]:
    """Attribute precision of a single ranked table (None when unaligned).

    ``result`` exposes ``matches`` whose elements have ``target_attribute``
    and ``source`` fields (both D3L matches and baseline alignments do).
    """
    matches = list(result.matches)
    if not matches:
        return None
    correct = sum(
        1
        for match in matches
        if _alignment_is_correct(ground_truth, target_name, match.target_attribute, match.source)
    )
    return correct / len(matches)


def attribute_precision_at_k(
    answer,
    ground_truth: GroundTruth,
    target_name: str,
    k: int,
) -> float:
    """Average attribute precision over the top-k tables (Experiments 9/11)."""
    precisions = []
    for result in answer.top(k):
        precision = table_attribute_precision(result, ground_truth, target_name)
        if precision is not None:
            precisions.append(precision)
    if not precisions:
        return 0.0
    return sum(precisions) / len(precisions)


def attribute_precision_with_joins(
    answer,
    joined_tables_per_start: Mapping[str, Set[str]],
    ground_truth: GroundTruth,
    target_name: str,
    k: int,
) -> float:
    """Attribute precision when join-path tables augment each top-k table.

    Following the paper: for each top-k table Si, the alignments of Si and of
    every table on a join path from Si are grouped by target attribute; a
    group is a true positive when at least one of its alignments is correct
    per the ground truth, and a false positive otherwise.
    """
    results_by_name = {result.table_name: result for result in answer.results}
    precisions = []
    for result in answer.top(k):
        group_tables = [result.table_name] + sorted(
            joined_tables_per_start.get(result.table_name, set())
        )
        per_target: Dict[str, List[bool]] = {}
        for table_name in group_tables:
            entry = results_by_name.get(table_name)
            if entry is None:
                continue
            for match in entry.matches:
                per_target.setdefault(match.target_attribute, []).append(
                    _alignment_is_correct(
                        ground_truth, target_name, match.target_attribute, match.source
                    )
                )
        if not per_target:
            continue
        true_positives = sum(1 for flags in per_target.values() if any(flags))
        precisions.append(true_positives / len(per_target))
    if not precisions:
        return 0.0
    return sum(precisions) / len(precisions)


def average_over_targets(
    metric: Callable[[Table], Tuple[float, ...]],
    targets: Sequence[Table],
) -> Tuple[float, ...]:
    """Average a per-target metric tuple over a list of targets.

    The paper reports every point as the average over 100 randomly selected
    targets; this helper implements that averaging for metric functions that
    return tuples (e.g. ``(precision, recall)``).
    """
    if not targets:
        return ()
    accumulator: Optional[List[float]] = None
    for target in targets:
        values = metric(target)
        if accumulator is None:
            accumulator = [0.0] * len(values)
        for index, value in enumerate(values):
            accumulator[index] += value
    assert accumulator is not None
    return tuple(value / len(targets) for value in accumulator)
