"""Command-line interface for the D3L reproduction.

Five subcommands cover the library's deployment workflow:

* ``generate`` — materialise a benchmark corpus (Synthetic or real-style) as
  a directory of CSV files plus a ground-truth JSON file;
* ``stats``    — print Figure-2-style statistics of a CSV lake;
* ``index``    — profile and index a CSV lake and persist the engine;
* ``query``    — load a persisted engine and answer a discovery query for a
  target CSV, optionally following join paths;
* ``serve``    — load a persisted engine and answer ``POST /query`` HTTP
  traffic over the ``d3l.query_response/v1`` wire format until interrupted;
* ``check``    — run the AST-based invariant checker (and optionally the
  lint pass) over the source tree; ``--strict`` is the tier-1 CI mode.

Example session::

    python -m repro.cli generate --kind real --output ./lake --families 10
    python -m repro.cli index --lake ./lake/csv --output ./engine.pkl
    python -m repro.cli query --engine ./engine.pkl --target my_target.csv -k 10 --joins
    python -m repro.cli serve --engine ./engine.pkl --port 8080 --workers 4
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.api import DiscoverySession, QueryRequest
from repro.core.config import D3LConfig, require_positive
from repro.core.discovery import D3L
from repro.core.persistence import PersistenceError, load_engine, save_engine
from repro.datagen.real_benchmark import RealBenchmarkConfig, generate_real_benchmark
from repro.datagen.synthetic_benchmark import (
    SyntheticBenchmarkConfig,
    generate_synthetic_benchmark,
)
from repro.evaluation.reporting import render_rows
from repro.lake.datalake import DataLake
from repro.tables.csv_io import read_csv


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="D3L dataset discovery over data lakes (ICDE 2020 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate a benchmark corpus as CSV files plus ground truth"
    )
    generate.add_argument("--kind", choices=["synthetic", "real"], default="real")
    generate.add_argument("--output", required=True, help="directory to write the corpus into")
    generate.add_argument("--families", type=int, default=12,
                          help="base tables (synthetic) or topic families (real)")
    generate.add_argument("--tables-per-family", type=int, default=10)
    generate.add_argument("--seed", type=int, default=0)

    stats = subparsers.add_parser("stats", help="print statistics of a CSV lake")
    stats.add_argument("--lake", required=True, help="directory of CSV files")

    index = subparsers.add_parser("index", help="index a CSV lake and persist the engine")
    index.add_argument("--lake", required=True, help="directory of CSV files")
    index.add_argument("--output", required=True, help="path of the persisted engine (.pkl)")
    index.add_argument("--num-hashes", type=int, default=256)
    index.add_argument("--threshold", type=float, default=0.7)
    index.add_argument("--embedding-dimension", type=int, default=64)
    index.add_argument("--max-rows", type=int, default=None,
                       help="cap on rows read per CSV file")
    index.add_argument("--workers", type=int, default=1,
                       help="worker processes for sharded index construction")

    query = subparsers.add_parser("query", help="query a persisted engine with a target CSV")
    query.add_argument("--engine", required=True, help="path of the persisted engine")
    query.add_argument("--target", required=True, help="CSV file holding the target table")
    query.add_argument("-k", type=int, default=10, help="answer size")
    query.add_argument("--joins", action="store_true", help="also report SA-join paths")
    query.add_argument("--include-self", action="store_true",
                       help="keep a lake table with the target's name in the answer")
    query.add_argument("--workers", type=int, default=1,
                       help="worker processes for the batched query fan-out "
                            "across target attributes (1 = in-process)")
    query.add_argument("--backend", choices=["serial", "thread", "process"],
                       default="process",
                       help="execution backend for the query fan-out "
                            "(rankings are backend-independent)")
    query.add_argument("--evidence", default=None,
                       help="comma-separated evidence subset (codes N,V,F,E,D "
                            "or names like name,value); default: all five")
    query.add_argument("--explain", action="store_true",
                       help="include the per-evidence distance decomposition "
                            "(Equation 2) in the answer")
    query.add_argument("--json", action="store_true",
                       help="emit the answer as QueryResponse JSON instead of "
                            "a rendered table")

    serve = subparsers.add_parser(
        "serve", help="serve a persisted engine over HTTP until interrupted"
    )
    serve.add_argument("--engine", required=True, help="path of the persisted engine")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (0 picks a free one)")
    serve.add_argument("--workers", type=int, default=4,
                       help="serving sessions answering requests concurrently")
    serve.add_argument("--cache-size", type=int, default=64,
                       help="per-session target-profile cache capacity")
    serve.add_argument("--backend", choices=["thread", "process"], default="thread",
                       help="serving concurrency model: an in-process session "
                            "pool (thread) or snapshot-attached worker "
                            "processes that lift the GIL ceiling (process)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request to stderr")

    check = subparsers.add_parser(
        "check", help="run the static invariant checker over the source tree"
    )
    check.add_argument("paths", nargs="*", default=["src"],
                       help="files or directories to check (default: src)")
    check.add_argument("--strict", action="store_true",
                       help="exit 1 when any violation is found (tier-1 mode)")
    check.add_argument("--select", default=None,
                       help="comma-separated rule codes to run, e.g. R1,R3")
    check.add_argument("--lint", action="store_true",
                       help="also run the pyflakes-or-fallback lint pass")
    check.add_argument("--list-rules", action="store_true",
                       help="print the rule table and exit")

    return parser


def _load_engine_or_fail(path: str) -> Optional[D3L]:
    """Load a persisted engine, printing a message (not a traceback) on failure."""
    try:
        return load_engine(path)
    except (PersistenceError, FileNotFoundError, ValueError, OSError) as error:
        print(error, file=sys.stderr)
        return None


# --------------------------------------------------------------------------- #
# subcommand implementations
# --------------------------------------------------------------------------- #


def _command_generate(args: argparse.Namespace) -> int:
    output = Path(args.output)
    if args.kind == "synthetic":
        corpus = generate_synthetic_benchmark(
            SyntheticBenchmarkConfig(
                num_base_tables=args.families,
                tables_per_base=args.tables_per_family,
                seed=args.seed,
            )
        )
    else:
        corpus = generate_real_benchmark(
            RealBenchmarkConfig(
                num_families=args.families,
                tables_per_family=args.tables_per_family,
                seed=args.seed,
            )
        )
    csv_dir = output / "csv"
    corpus.lake.to_directory(csv_dir)
    truth_path = corpus.ground_truth.to_json(output / "ground_truth.json")
    print(f"Wrote {len(corpus.lake)} tables to {csv_dir}")
    print(f"Wrote ground truth to {truth_path}")
    print(f"Average answer size: {corpus.average_answer_size():.1f}")
    return 0


def _command_stats(args: argparse.Namespace) -> int:
    try:
        lake = DataLake.from_directory(args.lake)
    except (FileNotFoundError, NotADirectoryError, ValueError, OSError) as error:
        print(error, file=sys.stderr)
        return 1
    if len(lake) == 0:
        print(f"No CSV tables found under {args.lake}", file=sys.stderr)
        return 1
    print(render_rows([lake.describe()], title=f"Lake statistics: {args.lake}"))
    return 0


def _command_index(args: argparse.Namespace) -> int:
    try:
        lake = DataLake.from_directory(args.lake, max_rows=args.max_rows)
    except (FileNotFoundError, NotADirectoryError, ValueError, OSError) as error:
        print(error, file=sys.stderr)
        return 1
    if len(lake) == 0:
        print(f"No CSV tables found under {args.lake}", file=sys.stderr)
        return 1
    config = D3LConfig(
        num_hashes=args.num_hashes,
        lsh_threshold=args.threshold,
        embedding_dimension=args.embedding_dimension,
    )
    # Context-managed so the sharded build's worker pools and shared-memory
    # segments are reclaimed on every path out, exceptions included, instead
    # of waiting for the weakref.finalize backstop at interpreter exit.
    with D3L(config=config) as engine:
        engine.index_lake(lake, workers=args.workers)
        path = save_engine(engine, args.output)
        sizes = engine.indexes.index_bytes()
    print(f"Indexed {len(lake)} tables ({lake.attribute_count} attributes)")
    print(f"Index sizes (bytes): {sizes}")
    print(f"Persisted engine to {path}")
    return 0


def _command_query(args: argparse.Namespace) -> int:
    if args.workers <= 0:
        print("--workers must be positive", file=sys.stderr)
        return 1
    engine = _load_engine_or_fail(args.engine)
    if engine is None:
        return 1
    # try/finally from the moment the engine exists: the error returns below
    # (bad target CSV, bad request arguments) must not strand its worker
    # pools or /dev/shm segments.  close() is idempotent, so the session's
    # own engine teardown composes with it.
    try:
        try:
            target = read_csv(args.target)
        except (FileNotFoundError, ValueError, OSError) as error:
            print(error, file=sys.stderr)
            return 1
        evidence = (
            [code.strip() for code in args.evidence.split(",") if code.strip()]
            if args.evidence
            else None
        )
        # The session dispatches to the batched engine, whose rankings are
        # identical to the sequential path (its oracle) while scoring
        # candidate pools in per-evidence sweeps.
        with DiscoverySession(engine) as session:
            try:
                request = QueryRequest(
                    target=target,
                    k=args.k,
                    evidence=evidence,
                    # The rendered table always lists covered attributes
                    # (which live in the explain payload); the JSON wire
                    # output honours --explain.
                    explain=args.explain if args.json else True,
                    exclude_self=not args.include_self,
                    joins=args.joins,
                    workers=args.workers,
                    backend=args.backend,
                )
            except (ValueError, KeyError) as error:
                print(error, file=sys.stderr)
                return 1
            response = session.submit(request)
    finally:
        engine.close()
    if args.json:
        # Emit the requested answer, not the whole candidate ranking the
        # response keeps for k sweeps (pool-sized on large lakes).  The
        # join-paths block is bounded by the same cap as the rendered
        # report, with its truncated flag set when paths were dropped.
        print(json.dumps(response.truncated().to_dict(), indent=2))
        return 0
    rows: List[dict] = []
    for rank, result in enumerate(response.top(), start=1):
        row = {
            "rank": rank,
            "table": result.table_name,
            "distance": round(result.distance, 4),
        }
        if args.explain:
            row["evidence"] = ", ".join(
                f"D{evidence_type.value}={distance:.2f}"
                for evidence_type, distance in (result.evidence_distances or {}).items()
            )
        row["covered_attributes"] = ", ".join(
            sorted(result.covered_target_attributes())
        )
        rows.append(row)
    if not rows:
        print("No related datasets found.")
        return 0
    print(render_rows(rows, title=f"Top-{args.k} datasets related to {target.name}"))

    if args.joins and response.join_paths is not None:
        block = response.join_paths
        suffix = " (truncated)" if block.truncated else ""
        print(f"\nJoin paths found: {len(block.paths)}{suffix}")
        for path in block.paths[:20]:
            print("  " + " -> ".join(path.tables))
        if len(block.paths) > 20:
            print(f"  ... and {len(block.paths) - 20} more")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.core.server import DiscoveryServer

    # Validate every numeric flag up front with the library's own
    # require_positive semantics: bad values exit 1 with a one-line error
    # instead of a traceback deep in session or worker-pool construction.
    try:
        require_positive("--workers", args.workers)
        require_positive("--cache-size", args.cache_size)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 1
    if not 0 <= args.port <= 65535:
        print("--port must be between 0 and 65535 (0 picks a free one)",
              file=sys.stderr)
        return 1
    engine = _load_engine_or_fail(args.engine)
    if engine is None:
        return 1
    # try/finally from the moment the engine exists: a DiscoveryServer
    # constructor failure (e.g. the port is already bound) must not strand
    # the loaded engine's pools or segments.  Both close() calls are
    # idempotent, so the normal teardown inside run_until_interrupt
    # composes with them.
    try:
        server = DiscoveryServer(
            engine,
            host=args.host,
            port=args.port,
            workers=args.workers,
            profile_cache_size=args.cache_size,
            verbose=args.verbose,
            backend=args.backend,
        )
        try:
            tables = len(engine.indexes.table_profiles)
            attributes = len(engine.indexes.profiles)
            print(
                f"Serving {tables} tables ({attributes} attributes) "
                f"on http://{server.host}:{server.port} with {args.workers} "
                f"{args.backend} workers (Ctrl-C to stop)",
                flush=True,
            )
            # Blocks until SIGINT/SIGTERM, then closes sessions, reaps
            # worker pools, and unlinks shared-memory segments.
            server.run_until_interrupt()
        finally:
            server.close()
    finally:
        engine.close()
    print("Shut down cleanly.")
    return 0


def _command_check(args: argparse.Namespace) -> int:
    from repro.analysis.checker import run_cli

    return run_cli(args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.cli``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "stats": _command_stats,
        "index": _command_index,
        "query": _command_query,
        "serve": _command_serve,
        "check": _command_check,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via the console
    raise SystemExit(main())
