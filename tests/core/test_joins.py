"""Tests for SA-joinability and Algorithm 3 join-path discovery."""

import pytest

from repro.core.joins import (
    JoinEdge,
    JoinPath,
    SAJoinGraph,
    estimated_overlap,
    find_join_paths,
    paths_from,
    tables_reached,
)
from repro.lake.datalake import AttributeRef


class TestEstimatedOverlap:
    def test_identical_sets(self):
        assert estimated_overlap(1.0, 10, 10) == 1.0

    def test_zero_jaccard(self):
        assert estimated_overlap(0.0, 10, 10) == 0.0

    def test_empty_set(self):
        assert estimated_overlap(0.5, 0, 10) == 0.0

    def test_containment_of_small_set_in_large(self):
        # |A|=10 fully contained in |B|=100: J = 10/100 = 0.1,
        # ov estimate = 0.1*110/(1.1*10) = 1.0.
        assert estimated_overlap(0.1, 10, 100) == pytest.approx(1.0)

    def test_clipped_to_one(self):
        assert estimated_overlap(0.9, 10, 1000) == 1.0

    def test_monotone_in_jaccard(self):
        assert estimated_overlap(0.6, 50, 60) > estimated_overlap(0.3, 50, 60)


class TestSAJoinGraph:
    def test_figure1_join_graph_connects_gp_tables(self, figure1_engine):
        graph = figure1_engine.join_graph
        assert set(graph.table_names) == {
            "gp_practices_s1",
            "gp_funding_s2",
            "local_gps_s3",
        }
        # The subject attributes (practice names) overlap heavily, so at
        # least one SA-join edge must exist.
        assert graph.edge_count() >= 1

    def test_edges_involve_subject_attributes(self, figure1_engine):
        graph = figure1_engine.join_graph
        subjects = {
            table_name: figure1_engine.indexes.subject_attribute(table_name)
            for table_name in graph.table_names
        }
        for first, second in graph.graph.edges:
            edge = graph.edge(first, second)
            assert (
                edge.left.column == subjects[edge.left.table]
                or edge.right.column == subjects[edge.right.table]
            )

    def test_neighbours_of_unknown_table(self, figure1_engine):
        assert figure1_engine.join_graph.neighbours("unknown") == []

    def test_edge_for_unconnected_pair(self, figure1_engine):
        graph = figure1_engine.join_graph
        assert graph.edge("gp_practices_s1", "no_such_table") is None

    def test_connected_component_contains_self(self, figure1_engine):
        component = figure1_engine.join_graph.connected_component("gp_practices_s1")
        assert "gp_practices_s1" in component

    def test_connected_component_of_unknown_table(self, figure1_engine):
        assert figure1_engine.join_graph.connected_component("unknown") == set()

    def test_overlaps_above_threshold(self, figure1_engine):
        graph = figure1_engine.join_graph
        threshold = figure1_engine.config.overlap_threshold
        for first, second in graph.graph.edges:
            assert graph.edge(first, second).overlap >= threshold


class TestFindJoinPaths:
    @pytest.fixture
    def toy_graph(self):
        import networkx as nx

        graph = nx.Graph()
        edges = [
            ("a", "b"),
            ("b", "c"),
            ("c", "d"),
            ("a", "e"),
        ]
        for first, second in edges:
            graph.add_edge(
                first,
                second,
                join=JoinEdge(
                    left=AttributeRef(first, "subject"),
                    right=AttributeRef(second, "subject"),
                    overlap=0.9,
                ),
            )
        return SAJoinGraph(graph)

    def test_paths_exclude_top_k_members(self, toy_graph):
        paths = find_join_paths(toy_graph, ["a", "b"], related_tables={"a", "b", "c", "d", "e"})
        reached = tables_reached(paths)
        assert "b" not in reached
        assert {"c", "d", "e"} & reached

    def test_paths_restricted_to_related_tables(self, toy_graph):
        paths = find_join_paths(toy_graph, ["a"], related_tables={"a", "b", "e"})
        reached = tables_reached(paths)
        assert "e" in reached
        assert "c" not in reached and "d" not in reached

    def test_paths_are_acyclic(self, toy_graph):
        paths = find_join_paths(toy_graph, ["a"], related_tables={"a", "b", "c", "d", "e"})
        for path in paths:
            assert len(path.tables) == len(set(path.tables))

    def test_max_length_respected(self, toy_graph):
        short = find_join_paths(
            toy_graph, ["a"], related_tables={"a", "b", "c", "d", "e"}, max_length=1
        )
        assert all(len(path) == 2 for path in short)
        longer = find_join_paths(
            toy_graph, ["a"], related_tables={"a", "b", "c", "d", "e"}, max_length=3
        )
        assert any(len(path) == 4 for path in longer)

    def test_every_path_starts_from_a_top_k_table(self, toy_graph):
        paths = find_join_paths(toy_graph, ["a", "b"], related_tables={"a", "b", "c", "d", "e"})
        assert all(path.start in {"a", "b"} for path in paths)

    def test_path_edges_match_tables(self, toy_graph):
        paths = find_join_paths(toy_graph, ["b"], related_tables={"a", "b", "c", "d"})
        for path in paths:
            assert len(path.edges) == len(path.tables) - 1

    def test_paths_from_helper(self, toy_graph):
        paths = find_join_paths(toy_graph, ["a", "b"], related_tables={"a", "b", "c", "d", "e"})
        assert all(path.start == "a" for path in paths_from(paths, "a"))

    def test_reached_property(self):
        path = JoinPath(tables=["a", "b", "c"], edges=[])
        assert path.start == "a"
        assert path.reached == ["b", "c"]
        assert len(path) == 3


class TestEnsembleJoinGraph:
    def test_ensemble_variant_finds_gp_joins(self, figure1_engine):
        from repro.core.joins import SAJoinGraph

        graph = SAJoinGraph.build_with_ensemble(
            figure1_engine.indexes, figure1_engine.config
        )
        assert set(graph.table_names) == {
            "gp_practices_s1",
            "gp_funding_s2",
            "local_gps_s3",
        }
        assert graph.edge_count() >= 1

    def test_ensemble_edges_verified_by_value_overlap(self, figure1_engine):
        from repro.core.joins import SAJoinGraph

        graph = SAJoinGraph.build_with_ensemble(
            figure1_engine.indexes, figure1_engine.config
        )
        threshold = figure1_engine.config.overlap_threshold
        for first, second in graph.graph.edges:
            assert graph.edge(first, second).overlap >= threshold


class TestQueryWithJoins:
    def test_join_augmented_result_structure(self, figure1_engine, figure1_tables):
        augmented = figure1_engine.query_with_joins(figure1_tables["target"], k=1)
        assert augmented.base.requested_k == 1
        top_table = augmented.base.table_names(1)[0]
        assert augmented.tables_for(top_table) == {
            path.tables[1] for path in augmented.join_paths if path.start == top_table
        } or augmented.tables_for(top_table) == set()

    def test_joined_tables_not_in_top_k(self, figure1_engine, figure1_tables):
        augmented = figure1_engine.query_with_joins(figure1_tables["target"], k=1)
        top = set(augmented.base.table_names(1))
        assert augmented.joined_tables.isdisjoint(top)

    def test_joined_tables_on_generated_corpus(self, indexed_d3l, small_synthetic_benchmark):
        target = small_synthetic_benchmark.pick_targets(1, seed=6)[0]
        augmented = indexed_d3l.query_with_joins(target, k=3)
        # Join paths may or may not exist, but the structure must be coherent.
        for path in augmented.join_paths:
            assert path.start in augmented.base.table_names(3)
            assert set(path.reached) <= augmented.base.candidate_tables()
