"""Tests for the banded LSH index."""

import numpy as np
import pytest

from repro.lsh.lsh_index import LSHIndex, optimal_bands
from repro.lsh.minhash import MinHashFactory


@pytest.fixture
def factory():
    return MinHashFactory(num_perm=128, seed=5)


@pytest.fixture
def index():
    return LSHIndex(threshold=0.7, num_hashes=128)


def _tokens(prefix, count):
    return {f"{prefix}{i}" for i in range(count)}


class TestOptimalBands:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            optimal_bands(0.0, 128)
        with pytest.raises(ValueError):
            optimal_bands(1.0, 128)

    def test_rejects_bad_num_hashes(self):
        with pytest.raises(ValueError):
            optimal_bands(0.5, 0)

    def test_product_does_not_exceed_signature(self):
        bands, rows = optimal_bands(0.7, 128)
        assert bands * rows <= 128

    def test_higher_threshold_gives_more_rows_per_band(self):
        _, rows_low = optimal_bands(0.3, 128)
        _, rows_high = optimal_bands(0.9, 128)
        assert rows_high >= rows_low


class TestInsertQuery:
    def test_insert_and_contains(self, index, factory):
        signature = factory.from_tokens(_tokens("a", 30))
        index.insert("item", signature.hashvalues)
        assert "item" in index
        assert len(index) == 1

    def test_near_duplicates_collide(self, index, factory):
        base = _tokens("tok", 50)
        first = factory.from_tokens(base)
        second = factory.from_tokens(base | {"extra"})
        index.insert("first", first.hashvalues)
        candidates = index.query(second.hashvalues)
        assert "first" in candidates

    def test_dissimilar_items_do_not_collide(self, index, factory):
        index.insert("first", factory.from_tokens(_tokens("a", 50)).hashvalues)
        candidates = index.query(factory.from_tokens(_tokens("b", 50)).hashvalues)
        assert "first" not in candidates

    def test_exclude_removes_self(self, index, factory):
        signature = factory.from_tokens(_tokens("a", 20))
        index.insert("self", signature.hashvalues)
        assert index.query(signature.hashvalues, exclude="self") == set()

    def test_reinsert_replaces(self, index, factory):
        first = factory.from_tokens(_tokens("a", 20))
        second = factory.from_tokens(_tokens("b", 20))
        index.insert("item", first.hashvalues)
        index.insert("item", second.hashvalues)
        assert len(index) == 1
        assert "item" not in index.query(first.hashvalues)
        assert "item" in index.query(second.hashvalues)

    def test_remove(self, index, factory):
        signature = factory.from_tokens(_tokens("a", 20))
        index.insert("item", signature.hashvalues)
        index.remove("item")
        assert "item" not in index
        assert index.query(signature.hashvalues) == set()

    def test_remove_missing_is_noop(self, index):
        index.remove("missing")
        assert len(index) == 0

    def test_short_signature_rejected(self, index):
        with pytest.raises(ValueError):
            index.insert("bad", np.zeros(4, dtype=np.uint64))

    def test_signature_retrieval(self, index, factory):
        signature = factory.from_tokens(_tokens("a", 20))
        index.insert("item", signature.hashvalues)
        assert np.array_equal(index.signature("item"), signature.hashvalues)


class TestAccounting:
    def test_bucket_count_grows_with_inserts(self, index, factory):
        assert index.bucket_count() == 0
        index.insert("a", factory.from_tokens(_tokens("a", 10)).hashvalues)
        assert index.bucket_count() > 0

    def test_estimated_bytes_grow_with_inserts(self, index, factory):
        empty_bytes = index.estimated_bytes()
        index.insert("a", factory.from_tokens(_tokens("a", 10)).hashvalues)
        assert index.estimated_bytes() > empty_bytes

    def test_keys_and_items(self, index, factory):
        index.insert("a", factory.from_tokens(_tokens("a", 10)).hashvalues)
        assert index.keys == ["a"]
        assert [key for key, _ in index.items()] == ["a"]


class TestRecall:
    def test_high_similarity_pairs_mostly_retrieved(self, factory):
        index = LSHIndex(threshold=0.6, num_hashes=128)
        base = _tokens("shared", 90)
        index.insert("stored", factory.from_tokens(base).hashvalues)
        # 90% overlapping query should be retrieved.
        query = factory.from_tokens(set(list(base)[:81]) | _tokens("noise", 9))
        assert "stored" in index.query(query.hashvalues)
