"""Tests for value tokenisation."""

from repro.text.tokenizer import is_numeric_token, split_parts, tokenize, tokenize_parts


class TestSplitParts:
    def test_splits_at_commas(self):
        parts = split_parts("18 Portland Street, M1 3BE")
        assert parts == ["18 Portland Street", " M1 3BE"]

    def test_splits_at_multiple_punctuation(self):
        parts = split_parts("a;b/c-d")
        assert parts == ["a", "b", "c", "d"]

    def test_empty_value(self):
        assert split_parts("") == []

    def test_value_without_punctuation_is_one_part(self):
        assert split_parts("Blackfriars Medical Centre") == ["Blackfriars Medical Centre"]

    def test_blank_parts_dropped(self):
        assert split_parts(",,a,,") == ["a"]


class TestTokenizeParts:
    def test_words_lowercased(self):
        parts = tokenize_parts("18 Portland Street, M1 3BE")
        assert parts == [["18", "portland", "street"], ["m1", "3be"]]

    def test_empty_parts_removed(self):
        assert tokenize_parts("...") == []

    def test_time_range_tokenised(self):
        assert tokenize_parts("08:00-18:00") == [["08"], ["00"], ["18"], ["00"]]


class TestTokenize:
    def test_flattens_parts(self):
        assert tokenize("18 Portland Street, M1 3BE") == ["18", "portland", "street", "m1", "3be"]

    def test_empty_value(self):
        assert tokenize("") == []

    def test_underscores_split_words(self):
        assert tokenize("hello_world") == ["hello", "world"]


class TestIsNumericToken:
    def test_integers(self):
        assert is_numeric_token("42")

    def test_decimals(self):
        assert is_numeric_token("3.5")

    def test_alphanumeric_is_not_numeric(self):
        assert not is_numeric_token("m1")

    def test_words_are_not_numeric(self):
        assert not is_numeric_token("street")
