"""Determinism harness for sharded (multi-process) index construction.

``workers=1`` and ``workers=N`` builds of the same lake must be
indistinguishable: identical signature-matrix contents, identical forest key
arrays *and* item orders, and therefore identical top-k query rankings.
Shard partitioning and the merge order are functions of the sorted table
names, so the tests also shuffle lake insertion order and assert nothing
changes.
"""

import numpy as np
import pytest

from repro.core.config import D3LConfig
from repro.core.discovery import D3L
from repro.core.evidence import EvidenceType
from repro.core.indexes import D3LIndexes
from repro.core.parallel import ParallelIndexBuilder, partition_tables
from repro.datagen.synthetic_benchmark import (
    SyntheticBenchmarkConfig,
    generate_synthetic_benchmark,
)
from repro.lake.datalake import DataLake


@pytest.fixture(scope="module")
def corpus():
    return generate_synthetic_benchmark(
        SyntheticBenchmarkConfig(
            num_base_tables=4,
            tables_per_base=4,
            base_rows=50,
            min_rows=20,
            max_rows=40,
            seed=13,
        )
    )


@pytest.fixture(scope="module")
def config():
    return D3LConfig(num_hashes=64, num_trees=8, min_candidates=20, embedding_dimension=16)


def _build(corpus, config, workers):
    indexes = D3LIndexes(config=config)
    indexes.add_lake(corpus.lake, workers=workers)
    return indexes


@pytest.fixture(scope="module")
def serial_indexes(corpus, config):
    return _build(corpus, config, workers=1)


@pytest.fixture(scope="module")
def sharded_indexes(corpus, config):
    return _build(corpus, config, workers=4)


def _assert_identical_indexes(first: D3LIndexes, second: D3LIndexes) -> None:
    assert first.table_names == second.table_names
    assert list(first.profiles) == list(second.profiles)
    for evidence in EvidenceType.indexed():
        refs_a, matrix_a, flags_a = first._matrices[evidence].export_state()
        refs_b, matrix_b, flags_b = second._matrices[evidence].export_state()
        assert refs_a == refs_b
        assert matrix_a.dtype == matrix_b.dtype
        assert np.array_equal(matrix_a, matrix_b)
        assert np.array_equal(flags_a, flags_b)
        forest_a = first.forest(evidence).export_state()
        forest_b = second.forest(evidence).export_state()
        for tree_a, tree_b in zip(forest_a["trees"], forest_b["trees"]):
            assert np.array_equal(tree_a["keys"], tree_b["keys"])
            assert tree_a["items"] == tree_b["items"]


class TestShardedBuildDeterminism:
    def test_matrices_and_forests_identical(self, serial_indexes, sharded_indexes):
        _assert_identical_indexes(serial_indexes, sharded_indexes)

    def test_more_workers_than_tables(self, corpus, config):
        small = DataLake("small", corpus.lake.tables[:3])
        serial = D3LIndexes(config=config)
        serial.add_lake(small)
        sharded = D3LIndexes(config=config)
        sharded.add_lake(small, workers=8)
        _assert_identical_indexes(serial, sharded)

    def test_insertion_order_does_not_matter(self, corpus, config, serial_indexes):
        reversed_lake = DataLake("reversed", list(reversed(corpus.lake.tables)))
        sharded = D3LIndexes(config=config)
        sharded.add_lake(reversed_lake, workers=3)
        _assert_identical_indexes(serial_indexes, sharded)

    def test_top_k_rankings_identical(self, corpus, config):
        serial_engine = D3L(config=config)
        serial_engine.index_lake(corpus.lake)
        sharded_engine = D3L(config=config)
        sharded_engine.index_lake(corpus.lake, workers=4)
        for target_name in corpus.lake.table_names[::5]:
            target = corpus.lake.table(target_name)
            serial_answer = serial_engine.query(target, k=5)
            sharded_answer = sharded_engine.query(target, k=5)
            assert serial_answer.table_names(5) == sharded_answer.table_names(5)
            assert [result.distance for result in serial_answer.results] == [
                result.distance for result in sharded_answer.results
            ]


class TestParallelBuilderApi:
    def test_invalid_workers_rejected(self, serial_indexes):
        with pytest.raises(ValueError):
            ParallelIndexBuilder(serial_indexes, workers=0)

    def test_build_returns_target_indexes(self, corpus, config):
        indexes = D3LIndexes(config=config)
        built = ParallelIndexBuilder(indexes, workers=2).build(corpus.lake)
        assert built is indexes
        assert built.attribute_count == corpus.lake.attribute_count


class TestPartitioning:
    def test_partition_is_sorted_and_covers_everything(self):
        names = [f"t{i}" for i in range(10)]
        shards = partition_tables(list(reversed(names)), 3)
        assert sorted(name for shard in shards for name in shard) == sorted(names)
        for shard in shards:
            assert shard == sorted(shard)

    def test_partition_independent_of_input_order(self):
        names = ["b", "a", "d", "c", "e"]
        assert partition_tables(names, 2) == partition_tables(sorted(names), 2)

    def test_partition_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            partition_tables(["a"], 0)
