"""Core-test fixtures.

The autouse leak-audit fixture (``no_fanout_leaks``) that used to live here
moved up to ``tests/conftest.py`` so the CLI and serving-tier suites run
under the same shared-memory-segment and child-process auditing as the core
suite.
"""
