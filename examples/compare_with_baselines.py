"""Compare D3L with the TUS and Aurum baselines on one corpus.

A compact version of the paper's Experiments 2-3: index the same lake with
all three systems, query a set of random targets, and report precision and
recall at several answer sizes plus per-system indexing time and index size.

Run with::

    python examples/compare_with_baselines.py
"""

from __future__ import annotations

import time

from repro.core.config import D3LConfig
from repro.datagen.real_benchmark import RealBenchmarkConfig, generate_real_benchmark
from repro.evaluation.experiments import build_engine_suite, experiment_effectiveness
from repro.evaluation.reporting import format_series_table, render_rows


def main() -> None:
    corpus = generate_real_benchmark(
        RealBenchmarkConfig(
            num_families=10,
            tables_per_family=6,
            min_rows=25,
            max_rows=80,
            dirtiness=0.35,
            seed=55,
        )
    )
    print(f"Corpus: {len(corpus.lake)} tables, average answer size {corpus.average_answer_size():.1f}\n")

    start = time.perf_counter()
    suite = build_engine_suite(
        corpus,
        systems=("d3l", "tus", "aurum"),
        config=D3LConfig(num_hashes=128, embedding_dimension=48),
        train_weights=True,
        weight_training_targets=10,
    )
    print(f"Indexed all three systems in {time.perf_counter() - start:.1f}s")

    sizes = [
        {
            "system": "d3l",
            "index_bytes": suite.d3l.indexes.estimated_bytes(),
        },
        {"system": "tus", "index_bytes": suite.tus.estimated_bytes()},
        {"system": "aurum", "index_bytes": suite.aurum.estimated_bytes()},
    ]
    print()
    print(render_rows(sizes, title="Index sizes"))

    rows = experiment_effectiveness(suite, ks=[5, 10, 20, 30], num_targets=10, seed=1)
    print()
    print(format_series_table(rows, group_by="system", x="k", y="precision", title="Precision at k"))
    print()
    print(format_series_table(rows, group_by="system", x="k", y="recall", title="Recall at k"))


if __name__ == "__main__":
    main()
