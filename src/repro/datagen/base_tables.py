"""Base tables in the style of the TUS Synthetic benchmark seeds.

The TUS benchmark derives ~5,000 lake tables from 32 wide base tables of
Canadian open-government data by random projections and selections.  This
module defines 32 base table *specifications* over the default vocabulary
(open-government topics: health, education, business, transport, public
service, environment) and materialises them into wide, many-row tables from
which :mod:`repro.datagen.synthetic_benchmark` derives a lake.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.vocab import Vocabulary, default_vocabulary
from repro.tables.table import Table


@dataclass
class BaseTableSpec:
    """Specification of one base table.

    ``domains`` lists the semantic domains of the base table's columns in
    order; the first domain is the subject attribute (the entity the table is
    about).  Column names are chosen from each domain's aliases when the
    table is materialised.
    """

    name: str
    topic: str
    domains: List[str]

    @property
    def subject_domain(self) -> str:
        """The domain of the subject attribute."""
        return self.domains[0]


@dataclass
class BaseTable:
    """A materialised base table with its generation metadata."""

    table: Table
    spec: BaseTableSpec
    column_domains: Dict[str, str]
    subject_attribute: str


# Topic blocks used to assemble the 32 base specifications.  Each entry is
# (subject domain, supporting domains).
_TOPIC_BLOCKS: List[Tuple[str, str, List[str]]] = [
    ("gp_practices", "health", ["practice_name", "street_address", "city", "postcode", "region", "phone", "opening_hours", "patient_count", "rating"]),
    ("gp_funding", "health", ["practice_name", "city", "postcode", "payment_amount", "year", "health_service", "patient_count"]),
    ("health_services", "health", ["practice_name", "health_service", "city", "region", "opening_hours", "phone", "email", "rating"]),
    ("hospital_activity", "health", ["practice_name", "health_service", "region", "year", "patient_count", "percentage", "payment_amount"]),
    ("dental_practices", "health", ["practice_name", "street_address", "city", "postcode", "phone", "opening_hours", "rating", "patient_count"]),
    ("vaccination_sites", "health", ["practice_name", "street_address", "city", "postcode", "health_service", "weekday", "opening_hours", "latitude", "longitude"]),
    ("schools_directory", "education", ["school_name", "street_address", "city", "postcode", "region", "phone", "person_name", "pupil_count", "rating"]),
    ("school_performance", "education", ["school_name", "city", "region", "year", "school_subject", "percentage", "pupil_count", "rating"]),
    ("school_funding", "education", ["school_name", "city", "postcode", "year", "payment_amount", "pupil_count", "percentage"]),
    ("college_courses", "education", ["school_name", "school_subject", "city", "region", "year", "pupil_count", "price"]),
    ("school_inspections", "education", ["school_name", "city", "postcode", "date", "person_name", "rating", "percentage"]),
    ("business_register", "business", ["business_name", "street_address", "city", "postcode", "region", "business_sector", "employee_count", "year"]),
    ("business_rates", "business", ["business_name", "city", "postcode", "business_sector", "payment_amount", "year", "reference_code"]),
    ("licensed_premises", "business", ["business_name", "street_address", "city", "postcode", "business_sector", "date", "opening_hours", "reference_code"]),
    ("company_contracts", "business", ["business_name", "department", "date", "payment_amount", "reference_code", "city", "year"]),
    ("food_hygiene", "business", ["business_name", "street_address", "city", "postcode", "business_sector", "date", "rating"]),
    ("employer_survey", "business", ["business_name", "business_sector", "region", "employee_count", "percentage", "year"]),
    ("bus_stops", "transport", ["station_name", "street_address", "city", "postcode", "transport_mode", "latitude", "longitude", "reference_code"]),
    ("rail_stations", "transport", ["station_name", "city", "region", "postcode", "transport_mode", "latitude", "longitude", "opening_hours"]),
    ("transport_usage", "transport", ["station_name", "transport_mode", "city", "region", "year", "percentage", "patient_count"]),
    ("cycle_routes", "transport", ["station_name", "city", "region", "transport_mode", "distance_km", "year", "reference_code"]),
    ("park_and_ride", "transport", ["station_name", "street_address", "city", "postcode", "opening_hours", "price", "latitude", "longitude"]),
    ("road_schemes", "transport", ["station_name", "region", "city", "date", "payment_amount", "distance_km", "reference_code"]),
    ("council_staff", "public_service", ["person_name", "job_title", "department", "city", "payment_amount", "year", "email"]),
    ("service_requests", "public_service", ["council_service", "city", "postcode", "date", "department", "reference_code", "percentage"]),
    ("council_spending", "public_service", ["department", "business_name", "date", "payment_amount", "reference_code", "year"]),
    ("council_assets", "public_service", ["business_name", "street_address", "city", "postcode", "department", "payment_amount", "latitude", "longitude"]),
    ("grants_awarded", "public_service", ["business_name", "department", "date", "payment_amount", "year", "city", "reference_code"]),
    ("waste_collection", "environment", ["council_service", "city", "postcode", "weekday", "department", "percentage", "year"]),
    ("air_quality", "environment", ["station_name", "city", "region", "date", "percentage", "latitude", "longitude"]),
    ("recycling_rates", "environment", ["council_service", "city", "region", "year", "percentage", "payment_amount"]),
    ("parks_directory", "environment", ["station_name", "street_address", "city", "postcode", "region", "opening_hours", "rating", "latitude", "longitude"]),
]


def default_base_specs() -> List[BaseTableSpec]:
    """The 32 default base table specifications."""
    return [
        BaseTableSpec(name=name, topic=topic, domains=list(domains))
        for name, topic, domains in _TOPIC_BLOCKS
    ]


def spread_specs_by_topic(specs: Sequence[BaseTableSpec], count: int) -> List[BaseTableSpec]:
    """Pick ``count`` specifications spread round-robin across topics.

    The specification list is grouped by topic; taking a simple prefix of it
    would produce a corpus about a single topic (all health, say), which is
    neither realistic nor a useful discovery benchmark.  Round-robin
    selection keeps small corpora topically diverse while larger corpora
    naturally include several table families about the same entity type.
    """
    by_topic: Dict[str, List[BaseTableSpec]] = {}
    for spec in specs:
        by_topic.setdefault(spec.topic, []).append(spec)
    ordered: List[BaseTableSpec] = []
    queues = list(by_topic.values())
    index = 0
    while len(ordered) < min(count, len(list(specs))):
        queue = queues[index % len(queues)]
        if queue:
            ordered.append(queue.pop(0))
        index += 1
        if all(not queue for queue in queues):
            break
    return ordered


def build_base_table(
    spec: BaseTableSpec,
    vocabulary: Vocabulary,
    rows: int,
    rng: np.random.Generator,
) -> BaseTable:
    """Materialise one base table with ``rows`` rows.

    Column names are domain aliases chosen once per column; a numbered suffix
    disambiguates repeated domains within the same table.
    """
    used_names: Dict[str, int] = {}
    column_names: List[str] = []
    column_domains: Dict[str, str] = {}
    data: Dict[str, List[Optional[str]]] = {}
    for domain_name in spec.domains:
        domain = vocabulary.domain(domain_name)
        alias = domain.aliases[int(rng.integers(0, len(domain.aliases)))]
        if alias in used_names:
            used_names[alias] += 1
            alias = f"{alias} {used_names[alias]}"
        else:
            used_names[alias] = 1
        column_names.append(alias)
        column_domains[alias] = domain_name
        data[alias] = domain.sample(rng, rows)
    table = Table.from_dict(spec.name, data)
    return BaseTable(
        table=table,
        spec=spec,
        column_domains=column_domains,
        subject_attribute=column_names[0],
    )


def build_base_tables(
    specs: Optional[Sequence[BaseTableSpec]] = None,
    vocabulary: Optional[Vocabulary] = None,
    rows: int = 200,
    seed: int = 0,
) -> List[BaseTable]:
    """Materialise every base table specification."""
    specs = list(specs) if specs is not None else default_base_specs()
    vocabulary = vocabulary or default_vocabulary()
    rng = np.random.default_rng(seed)
    return [build_base_table(spec, vocabulary, rows, rng) for spec in specs]
