"""ASCII rendering of result series (the figures, without matplotlib).

The paper's evaluation figures are line charts of a metric against the answer
size k, one series per system or evidence type.  Plotting libraries are not
available offline, so this module renders the same charts as ASCII: good
enough to eyeball the shapes (who is on top, where curves cross) directly in
a terminal or in the benchmark result files.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

#: Characters used to draw the different series, in assignment order.
SERIES_MARKERS = "*o+x#@%&"


def ascii_line_chart(
    rows: Sequence[Mapping[str, object]],
    x: str,
    y: str,
    group_by: str,
    width: int = 60,
    height: int = 16,
    title: Optional[str] = None,
) -> str:
    """Render long-form rows as an ASCII chart of ``y`` against ``x``.

    ``rows`` are dictionaries (the experiment runners' output); one series is
    drawn per distinct ``group_by`` value.  The y-axis is scaled to the data
    range (with a floor at 0 for metric-style values) and each series gets a
    marker character shown in the legend.
    """
    if width < 10 or height < 4:
        raise ValueError("chart dimensions are too small to draw anything useful")
    if not rows:
        return f"{title or 'chart'}: (no data)"

    series: Dict[object, List[tuple]] = {}
    for row in rows:
        if x not in row or y not in row or group_by not in row:
            raise KeyError(f"rows must contain {x!r}, {y!r} and {group_by!r}")
        series.setdefault(row[group_by], []).append((float(row[x]), float(row[y])))
    for points in series.values():
        points.sort(key=lambda point: point[0])

    xs = [point[0] for points in series.values() for point in points]
    ys = [point[1] for points in series.values() for point in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(0.0, min(ys)), max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" " for _ in range(width)] for _ in range(height)]

    def to_column(value: float) -> int:
        return int(round((value - x_low) / (x_high - x_low) * (width - 1)))

    def to_row(value: float) -> int:
        return (height - 1) - int(round((value - y_low) / (y_high - y_low) * (height - 1)))

    legend = []
    for index, (label, points) in enumerate(series.items()):
        marker = SERIES_MARKERS[index % len(SERIES_MARKERS)]
        legend.append(f"{marker} = {label}")
        for x_value, y_value in points:
            row_index = to_row(y_value)
            column_index = to_column(x_value)
            cell = grid[row_index][column_index]
            grid[row_index][column_index] = "+" if cell not in (" ", marker) else marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y} (top={y_high:.3f}, bottom={y_low:.3f})")
    for row_cells in grid:
        lines.append("|" + "".join(row_cells))
    lines.append("+" + "-" * width)
    lines.append(f" {x}: {x_low:g} .. {x_high:g}")
    lines.append("legend: " + "   ".join(legend))
    return "\n".join(lines)


def chart_metric_by_system(
    rows: Sequence[Mapping[str, object]],
    metric: str,
    title: Optional[str] = None,
    group_by: str = "system",
    x: str = "k",
) -> str:
    """Convenience wrapper for the common metric-vs-k, one-series-per-system chart."""
    return ascii_line_chart(rows, x=x, y=metric, group_by=group_by, title=title)
