"""Table I — example attribute distances for the Figure 1 running example.

Regenerates the per-evidence distances between the target T and source S2 of
the paper's introductory example (Table I of the paper).  Absolute values are
computed from the actual set representations rather than the paper's
hypothetical illustration, but the qualitative pattern must match: identical
attribute names give D_N = 0, all three aligned pairs are textual so D_D = 1,
and value/embedding evidence is present (distances below 1).
"""

from conftest import run_once

from repro.evaluation.experiments import experiment_example_distances


def test_table1_example_distances(benchmark, record_rows):
    rows = run_once(benchmark, experiment_example_distances)
    record_rows("table1_example_distances", rows, "Table I: distances between T and S2")

    by_pair = {row["pair"]: row for row in rows}
    city = by_pair.get("(T.City, S2.City)")
    postcode = by_pair.get("(T.Postcode, S2.Postcode)")
    assert city is not None and postcode is not None
    assert city["DN"] == 0.0
    assert postcode["DN"] == 0.0
    assert city["DD"] == 1.0
    assert city["DV"] < 1.0
    assert city["DE"] < 1.0
