"""Saving and loading indexed engines.

Index construction is the expensive part of dataset discovery (Figure 6a of
the paper); a deployment indexes the lake once and answers many queries.
These helpers persist a fully indexed :class:`~repro.core.discovery.D3L`
engine (or just its :class:`~repro.core.indexes.D3LIndexes`) to disk and load
it back, so the indexing cost is paid once per lake snapshot.

Pickle is used deliberately: the persisted objects are plain data (numpy
arrays, dictionaries of set representations, LSH tables) produced by this
library itself.  Files should be treated like any other binary cache — do
not load engines from untrusted sources.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Union

from repro.core.discovery import D3L
from repro.core.indexes import D3LIndexes

PathLike = Union[str, Path]

#: Current on-disk format version; bumped when the persisted layout changes.
#: Version 2: vectorized LSH backend (sorted-array prefix trees, per-evidence
#: signature matrices, cached sorted numeric extents).
FORMAT_VERSION = 2


class PersistenceError(RuntimeError):
    """Raised when a persisted engine cannot be loaded."""


def _write(payload: dict, path: PathLike) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def _read(path: PathLike, expected_kind: str) -> dict:
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"no persisted engine at {path}")
    with path.open("rb") as handle:
        try:
            payload = pickle.load(handle)
        except (pickle.UnpicklingError, EOFError) as error:
            raise PersistenceError(f"cannot unpickle {path}: {error}") from error
    if not isinstance(payload, dict) or payload.get("kind") != expected_kind:
        raise PersistenceError(f"{path} does not contain a persisted {expected_kind}")
    if payload.get("version") != FORMAT_VERSION:
        raise PersistenceError(
            f"{path} uses format version {payload.get('version')}, expected {FORMAT_VERSION}"
        )
    return payload


def save_engine(engine: D3L, path: PathLike) -> Path:
    """Persist a fully indexed engine (indexes, weights, configuration)."""
    payload = {
        "kind": "d3l_engine",
        "version": FORMAT_VERSION,
        "engine": engine,
    }
    return _write(payload, path)


def load_engine(path: PathLike) -> D3L:
    """Load an engine previously saved with :func:`save_engine`."""
    payload = _read(path, "d3l_engine")
    engine = payload["engine"]
    if not isinstance(engine, D3L):
        raise PersistenceError(f"{path} does not contain a D3L engine")
    return engine


def save_indexes(indexes: D3LIndexes, path: PathLike) -> Path:
    """Persist a set of indexes without the surrounding engine."""
    payload = {
        "kind": "d3l_indexes",
        "version": FORMAT_VERSION,
        "indexes": indexes,
    }
    return _write(payload, path)


def load_indexes(path: PathLike) -> D3LIndexes:
    """Load indexes previously saved with :func:`save_indexes`."""
    payload = _read(path, "d3l_indexes")
    indexes = payload["indexes"]
    if not isinstance(indexes, D3LIndexes):
        raise PersistenceError(f"{path} does not contain D3L indexes")
    return indexes
