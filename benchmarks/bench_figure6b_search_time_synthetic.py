"""Figure 6b / Experiment 5 — search time vs answer size on Synthetic.

For D3L and TUS every query is an index-lookup task parameterised by k, so
search time grows with k; Aurum's query model is independent of k and its
average time is reported once (attached to each row).
"""

from conftest import SYNTHETIC_KS, run_once

from repro.evaluation.experiments import experiment_search_time


def test_figure6b_search_time_synthetic(benchmark, record_rows, synthetic_suite):
    rows = run_once(
        benchmark,
        experiment_search_time,
        synthetic_suite,
        ks=SYNTHETIC_KS,
        num_targets=8,
        seed=8,
    )
    record_rows(
        "figure6b_search_time_synthetic",
        rows,
        "Figure 6b: per-query search time vs k (Synthetic)",
    )

    for row in rows:
        assert row["d3l_seconds"] > 0
        assert row["tus_seconds"] > 0
    # Aurum's reported time is constant across k (single graph-based query model).
    aurum_values = {round(row["aurum_seconds"], 9) for row in rows}
    assert len(aurum_values) == 1
    # Search time does not shrink as the requested answer size grows.
    assert rows[-1]["d3l_seconds"] >= rows[0]["d3l_seconds"] * 0.5
