"""Tests for the ASCII chart rendering."""

import pytest

from repro.evaluation.plots import ascii_line_chart, chart_metric_by_system


@pytest.fixture
def rows():
    data = []
    for k, d3l, tus in [(5, 0.9, 0.5), (10, 0.8, 0.45), (20, 0.6, 0.4)]:
        data.append({"system": "d3l", "k": k, "precision": d3l})
        data.append({"system": "tus", "k": k, "precision": tus})
    return data


class TestAsciiLineChart:
    def test_contains_legend_and_axes(self, rows):
        chart = ascii_line_chart(rows, x="k", y="precision", group_by="system", title="Fig")
        assert "Fig" in chart
        assert "legend:" in chart
        assert "d3l" in chart and "tus" in chart
        assert "k: 5 .. 20" in chart

    def test_dimensions(self, rows):
        chart = ascii_line_chart(rows, x="k", y="precision", group_by="system",
                                 width=40, height=10)
        grid_lines = [line for line in chart.splitlines() if line.startswith("|")]
        assert len(grid_lines) == 10
        assert all(len(line) <= 41 for line in grid_lines)

    def test_markers_plotted(self, rows):
        chart = ascii_line_chart(rows, x="k", y="precision", group_by="system")
        body = "\n".join(line for line in chart.splitlines() if line.startswith("|"))
        assert "*" in body
        assert "o" in body

    def test_empty_rows(self):
        assert "(no data)" in ascii_line_chart([], x="k", y="p", group_by="s")

    def test_missing_column_raises(self, rows):
        with pytest.raises(KeyError):
            ascii_line_chart(rows, x="k", y="missing", group_by="system")

    def test_too_small_dimensions_rejected(self, rows):
        with pytest.raises(ValueError):
            ascii_line_chart(rows, x="k", y="precision", group_by="system", width=2)

    def test_constant_series_does_not_crash(self):
        rows = [{"system": "a", "k": 5, "precision": 0.5}, {"system": "a", "k": 5, "precision": 0.5}]
        chart = ascii_line_chart(rows, x="k", y="precision", group_by="system")
        assert "legend" in chart

    def test_wrapper_defaults(self, rows):
        chart = chart_metric_by_system(rows, "precision", title="Precision vs k")
        assert "Precision vs k" in chart
