"""Dirtiness injection for the real-world-style corpora.

The paper stresses that D3L's fine-grained features pay off when "similar
entities are inconsistently represented" — the hallmark of real open data and
the reason D3L beats value-equality approaches on the Smaller Real corpus.
These helpers apply the representational inconsistencies that corpus needs:
abbreviations, case changes, punctuation variation, truncation, typos and
missing values.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Common abbreviations in UK address / organisation data.
ABBREVIATIONS = {
    "street": "St",
    "road": "Rd",
    "avenue": "Ave",
    "lane": "Ln",
    "drive": "Dr",
    "close": "Cl",
    "court": "Ct",
    "place": "Pl",
    "terrace": "Terr",
    "saint": "St",
    "doctor": "Dr",
    "centre": "Ctr",
    "center": "Ctr",
    "limited": "Ltd",
    "primary": "Prim",
    "school": "Sch",
    "medical": "Med",
    "practice": "Prac",
    "station": "Stn",
    "north": "N",
    "south": "S",
    "east": "E",
    "west": "W",
}


def abbreviate(value: str) -> str:
    """Abbreviate known words in ``value`` (case preserved on first letter)."""
    words = value.split(" ")
    result = []
    for word in words:
        key = word.lower().strip(".,")
        replacement = ABBREVIATIONS.get(key)
        if replacement is None:
            result.append(word)
        elif word[:1].isupper():
            result.append(replacement)
        else:
            result.append(replacement.lower())
    return " ".join(result)


def perturb_case(value: str, rng: np.random.Generator) -> str:
    """Change the letter case of the value (upper, lower, or title case)."""
    style = int(rng.integers(0, 3))
    if style == 0:
        return value.upper()
    if style == 1:
        return value.lower()
    return value.title()


def perturb_punctuation(value: str, rng: np.random.Generator) -> str:
    """Alter separators: commas to spaces, spaces to underscores, etc."""
    style = int(rng.integers(0, 3))
    if style == 0:
        return value.replace(",", "")
    if style == 1:
        return value.replace(" ", "_")
    return value.replace("-", " ")


def introduce_typo(value: str, rng: np.random.Generator) -> str:
    """Drop or duplicate one character of the value."""
    if len(value) < 4:
        return value
    position = int(rng.integers(1, len(value) - 1))
    if rng.random() < 0.5:
        return value[:position] + value[position + 1 :]
    return value[:position] + value[position] + value[position:]


def truncate(value: str, rng: np.random.Generator) -> str:
    """Keep only the first one or two words of a multi-word value."""
    words = value.split(" ")
    if len(words) <= 1:
        return value
    keep = max(1, int(rng.integers(1, len(words))))
    return " ".join(words[:keep])


def dirty_value(
    value: str,
    rng: np.random.Generator,
    dirtiness: float = 0.3,
    allow_missing: bool = True,
) -> Optional[str]:
    """Apply a random representational perturbation with probability ``dirtiness``.

    Returns None (a missing cell) with a small probability when
    ``allow_missing`` is set; otherwise returns a perturbed or unchanged
    rendering of the value.
    """
    if not 0.0 <= dirtiness <= 1.0:
        raise ValueError("dirtiness must be in [0, 1]")
    if allow_missing and rng.random() < dirtiness * 0.15:
        return None
    if rng.random() >= dirtiness:
        return value
    choice = int(rng.integers(0, 5))
    if choice == 0:
        return abbreviate(value)
    if choice == 1:
        return perturb_case(value, rng)
    if choice == 2:
        return perturb_punctuation(value, rng)
    if choice == 3:
        return introduce_typo(value, rng)
    return truncate(value, rng)
