"""Property-based tests for MinHash and Jaccard estimation invariants."""

from hypothesis import given, settings, strategies as st

from repro.lsh.minhash import MinHashFactory, exact_jaccard

_FACTORY = MinHashFactory(num_perm=128, seed=42)

tokens = st.sets(st.text(alphabet="abcdefghij0123456789", min_size=1, max_size=8), max_size=40)
non_empty_tokens = st.sets(
    st.text(alphabet="abcdefghij0123456789", min_size=1, max_size=8), min_size=1, max_size=40
)


class TestMinHashProperties:
    @given(non_empty_tokens)
    @settings(max_examples=50, deadline=None)
    def test_identity_has_similarity_one(self, token_set):
        signature = _FACTORY.from_tokens(token_set)
        assert signature.jaccard(signature) == 1.0

    @given(non_empty_tokens, non_empty_tokens)
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, first, second):
        a = _FACTORY.from_tokens(first)
        b = _FACTORY.from_tokens(second)
        assert a.jaccard(b) == b.jaccard(a)

    @given(non_empty_tokens, non_empty_tokens)
    @settings(max_examples=50, deadline=None)
    def test_estimate_within_unit_interval(self, first, second):
        estimate = _FACTORY.from_tokens(first).jaccard(_FACTORY.from_tokens(second))
        assert 0.0 <= estimate <= 1.0

    @given(non_empty_tokens, non_empty_tokens)
    @settings(max_examples=30, deadline=None)
    def test_estimate_tracks_exact_jaccard(self, first, second):
        estimate = _FACTORY.from_tokens(first).jaccard(_FACTORY.from_tokens(second))
        exact = exact_jaccard(first, second)
        # 128 permutations give a standard error below 0.09; allow 4 sigma.
        assert abs(estimate - exact) <= 0.36

    @given(non_empty_tokens, non_empty_tokens)
    @settings(max_examples=50, deadline=None)
    def test_merge_is_union_signature(self, first, second):
        merged = _FACTORY.merge(_FACTORY.from_tokens(first), _FACTORY.from_tokens(second))
        assert merged == _FACTORY.from_tokens(first | second)

    @given(non_empty_tokens)
    @settings(max_examples=50, deadline=None)
    def test_deterministic(self, token_set):
        assert _FACTORY.from_tokens(token_set) == _FACTORY.from_tokens(set(token_set))

    @given(tokens)
    @settings(max_examples=50, deadline=None)
    def test_empty_flag_consistent(self, token_set):
        signature = _FACTORY.from_tokens(token_set)
        assert signature.is_empty() == (len(token_set) == 0)
