"""Tests for the two-sample Kolmogorov-Smirnov statistic."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats.ks import ks_distance, ks_statistic


class TestKsStatistic:
    def test_identical_samples(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        assert ks_statistic(sample, sample) == 0.0

    def test_disjoint_supports_give_one(self):
        assert ks_statistic([1, 2, 3], [10, 11, 12]) == 1.0

    def test_empty_sample_gives_one(self):
        assert ks_statistic([], [1, 2, 3]) == 1.0
        assert ks_statistic([1, 2, 3], []) == 1.0
        assert ks_statistic([], []) == 1.0

    def test_bounded_by_unit_interval(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 100)
        b = rng.normal(0.5, 1, 80)
        assert 0.0 <= ks_statistic(a, b) <= 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, 50)
        b = rng.uniform(-1, 1, 70)
        assert ks_statistic(a, b) == pytest.approx(ks_statistic(b, a))

    def test_matches_scipy(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, 120)
        b = rng.normal(0.3, 1.2, 90)
        expected = scipy_stats.ks_2samp(a, b).statistic
        assert ks_statistic(a, b) == pytest.approx(expected, abs=1e-12)

    def test_similar_distributions_closer_than_different(self):
        rng = np.random.default_rng(3)
        ages_a = rng.uniform(18, 90, 200)
        ages_b = rng.uniform(18, 90, 200)
        weights = rng.uniform(2000, 15000, 200)
        assert ks_statistic(ages_a, ages_b) < ks_statistic(ages_a, weights)

    def test_non_finite_values_ignored(self):
        assert ks_statistic([1.0, float("nan"), 2.0], [1.0, 2.0]) < 0.5

    def test_ks_distance_alias(self):
        a = [1.0, 2.0]
        b = [1.5, 2.5]
        assert ks_distance(a, b) == ks_statistic(a, b)
