"""Tests for the benchmark bundle helpers."""

import pytest

from repro.datagen.corpus import build_embedding_corpus, build_knowledge_base
from repro.datagen.vocab import default_vocabulary


class TestPickTargets:
    def test_requested_count(self, small_synthetic_benchmark):
        targets = small_synthetic_benchmark.pick_targets(5, seed=0)
        assert len(targets) == 5

    def test_targets_have_related_tables(self, small_synthetic_benchmark):
        targets = small_synthetic_benchmark.pick_targets(5, seed=0, min_related=1)
        for target in targets:
            assert small_synthetic_benchmark.ground_truth.answer_size(target.name) >= 1

    def test_count_larger_than_candidates_returns_all(self, small_synthetic_benchmark):
        targets = small_synthetic_benchmark.pick_targets(10_000)
        assert len(targets) == len(small_synthetic_benchmark.lake)

    def test_invalid_count(self, small_synthetic_benchmark):
        with pytest.raises(ValueError):
            small_synthetic_benchmark.pick_targets(0)

    def test_deterministic_given_seed(self, small_synthetic_benchmark):
        first = [t.name for t in small_synthetic_benchmark.pick_targets(4, seed=3)]
        second = [t.name for t in small_synthetic_benchmark.pick_targets(4, seed=3)]
        assert first == second


class TestLabelledSubjects:
    def test_labels_reference_existing_columns(self, small_real_benchmark):
        labelled = small_real_benchmark.labelled_subject_tables()
        assert labelled
        for table, subject in labelled:
            assert subject in table

    def test_describe_includes_answer_size(self, small_real_benchmark):
        stats = small_real_benchmark.describe()
        assert "average_answer_size" in stats
        assert stats["tables"] == len(small_real_benchmark.lake)


class TestEmbeddingCorpus:
    def test_sentences_generated(self):
        sentences = build_embedding_corpus(sentences_per_domain=5)
        assert len(sentences) > 0
        assert all(isinstance(sentence, list) for sentence in sentences)

    def test_sentences_contain_alias_tokens(self):
        sentences = build_embedding_corpus(sentences_per_domain=10, seed=1)
        tokens = {token for sentence in sentences for token in sentence}
        assert "city" in tokens or "town" in tokens

    def test_deterministic(self):
        assert build_embedding_corpus(sentences_per_domain=3, seed=7) == build_embedding_corpus(
            sentences_per_domain=3, seed=7
        )


class TestKnowledgeBase:
    def test_covers_vocabulary_classes(self):
        knowledge_base = build_knowledge_base(samples_per_domain=50, seed=2)
        assert "place" in knowledge_base.classes
        assert "organisation" in knowledge_base.classes

    def test_city_tokens_annotated(self):
        knowledge_base = build_knowledge_base(samples_per_domain=200, seed=2)
        assert "place" in knowledge_base.classes_of_token("manchester")

    def test_vocabulary_argument_respected(self):
        vocabulary = default_vocabulary()
        knowledge_base = build_knowledge_base(vocabulary, samples_per_domain=10, seed=0)
        assert len(knowledge_base) > 0
