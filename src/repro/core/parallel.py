"""Sharded, multi-process index construction.

Figure 6a of the paper shows index construction dominating end-to-end cost:
a deployment indexes the lake once and answers many queries afterwards.
:class:`ParallelIndexBuilder` splits that one expensive pass across worker
processes:

1. the lake's table names are sorted and dealt round-robin into one shard
   per worker (deterministic for a given lake and worker count);
2. each worker process profiles its shard's tables and computes their
   signatures with the table-level batched passes
   (:meth:`~repro.core.indexes.D3LIndexes.table_signatures`);
3. the main process merges the shard results **in globally sorted table
   order** through :meth:`~repro.core.indexes.D3LIndexes.add_profiled_table`,
   i.e. the existing buffered forest inserts and batched signature-matrix
   appends.

Because signature computation is deterministic and the merge order is the
same sorted order a serial ``add_lake`` uses, a sharded build produces
signature matrices, forest contents, and therefore query rankings identical
to a single-process build — which is what ``tests/core/test_parallel_build.py``
locks down.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.lake.datalake import DataLake
from repro.tables.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.indexes import D3LIndexes

#: One shard worker's result: per table, the profile plus the per-attribute
#: signatures (``{attribute name: {evidence: signature or None}}``).
ShardResult = List[Tuple[object, Dict[str, dict]]]


def partition_tables(table_names: Sequence[str], shards: int) -> List[List[str]]:
    """Deal the sorted table names round-robin into ``shards`` groups.

    Sorting first makes the partition a pure function of the name set, so
    rebuilding the same lake — regardless of the order its tables were added
    in — always yields the same shards.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    ordered = sorted(table_names)
    return [ordered[index::shards] for index in range(shards)]


def _profile_and_sign_shard(payload: Tuple["D3LIndexes", List[Table]]) -> ShardResult:
    """Worker entry point: profile and sign every table of one shard.

    ``payload`` carries a fresh (empty) ``D3LIndexes`` so the worker uses
    exactly the same configuration, embedding model, and subject classifier
    as the merging process; nothing is inserted into the carried indexes.
    Signatures are batched across the whole shard, so every worker exploits
    the same cross-table vocabulary sharing a serial ``add_lake`` does.
    """
    indexes, tables = payload
    table_profiles = [indexes.profile_table(table) for table in tables]
    signatures = indexes.batch_signatures(table_profiles)
    return [
        (table_profile, signatures[table_profile.table_name])
        for table_profile in table_profiles
    ]


class ParallelIndexBuilder:
    """Builds a :class:`~repro.core.indexes.D3LIndexes` over process shards.

    The target indexes (and through them the configuration, embedding model,
    and subject classifier) must be picklable, since an empty clone is
    shipped to every worker.  ``workers=1`` degenerates to profiling in the
    main process through the identical code path, which is how the
    determinism tests compare the two.
    """

    def __init__(self, indexes: "D3LIndexes", workers: int) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.indexes = indexes
        self.workers = workers

    def _worker_clone(self) -> "D3LIndexes":
        """A fresh, empty indexes object sharing the target's configuration."""
        from repro.core.indexes import D3LIndexes

        return D3LIndexes(
            config=self.indexes.config,
            embedding_model=self.indexes.embedding_model,
            subject_classifier=self.indexes.subject_classifier,
        )

    def build(self, lake: DataLake) -> "D3LIndexes":
        """Profile and sign ``lake`` across the shards, then merge in order."""
        shards = [
            names for names in partition_tables(lake.table_names, self.workers) if names
        ]
        payloads = [
            (self._worker_clone(), [lake.table(name) for name in names])
            for names in shards
        ]
        if len(payloads) <= 1:
            shard_results = [_profile_and_sign_shard(payload) for payload in payloads]
        else:
            with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
                shard_results = list(pool.map(_profile_and_sign_shard, payloads))

        by_table: Dict[str, Tuple[object, Dict[str, dict]]] = {}
        for result in shard_results:
            for table_profile, signatures in result:
                by_table[table_profile.table_name] = (table_profile, signatures)
        for name in sorted(by_table):
            table_profile, signatures = by_table[name]
            self.indexes.add_profiled_table(table_profile, signatures)
        return self.indexes
