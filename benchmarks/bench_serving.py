"""Load benchmark for the ``repro serve`` discovery service.

Stands a real :class:`~repro.core.server.DiscoveryServer` up over an indexed
lake (the same mixed numeric/text workload the hot-path benchmarks use) and
drives it over HTTP with concurrent clients under two traffic models:

* **closed loop** — ``CLIENT_WORKERS`` clients each issue requests
  back-to-back over a keep-alive connection; measures the server's saturated
  throughput and the per-request service latency, and
* **open loop** — requests arrive on a fixed schedule at ``OPEN_LOOP_QPS``
  regardless of how fast earlier ones complete; latency is measured from the
  *scheduled* arrival time, so queueing delay (the number a client actually
  experiences under load) is included rather than hidden by client
  back-pressure.

Before any traffic is timed, every distinct target is served once and the
payload checked byte-for-byte against an in-process
:class:`~repro.core.api.DiscoverySession` answering the identical request —
and round-tripped through ``QueryResponse.from_dict`` — so the recorded
throughput belongs to a server that provably answers correctly
(``responses_identical`` in the output).  The warmup doubles as cache
priming: the timed sweeps run against warm session profile caches, which is
the steady state a serving tier lives in.

Both serving backends are measured side by side over the same engine: the
thread backend (session pool, GIL-bound) remains the top-level record, and a
``"process_backend"`` sub-section records the same sweeps against ``repro
serve --backend process`` — worker processes attached read-only to the
shared index snapshot.  ``"process_speedup"`` is the closed-loop throughput
ratio; on a host with at least ``SERVER_WORKERS`` CPUs it must clear
``SERVING_PROCESS_SPEEDUP_FLOOR``, while on smaller hosts (where there is
nothing to parallelise) the ``SERVING_PROCESS_SINGLE_CORE_RATIO`` degradation
guard applies instead — ``"available_cpus"`` in the payload records which
regime the numbers were taken in.

Results land in a top-level ``"serving"`` section of the repository's
``BENCH_hot_paths.json`` — the rest of the payload is preserved, and
``bench_perf_hot_paths.py`` preserves this section symmetrically — with
p50/p90/p99 latency (milliseconds) and queries/second per traffic model.
The warm-cache closed-loop throughput is a tracked floor
(``SERVING_WARM_QPS_FLOOR``), guarded at tier-1 speed by
``bench_smoke.py --quick`` against the committed record.

Run directly (updates ``BENCH_hot_paths.json`` at the repository root)::

    PYTHONPATH=src python benchmarks/bench_serving.py
"""

from __future__ import annotations

import http.client
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_perf_hot_paths import (  # noqa: E402
    BATCH_QUERY_MIN_CANDIDATES,
    NUM_HASHES,
    NUM_TREES,
    _mixed_query_lake,
    _serving_targets,
)

RESULT_PATH = REPO_ROOT / "BENCH_hot_paths.json"

#: Attributes in the served lake (the hot-path benchmarks' middle size —
#: large enough for real candidate pools, small enough to index in seconds).
SERVING_LAKE_ATTRIBUTES = 500
#: Distinct serving targets cycled by the clients (each warms one
#: profile-cache entry; the steady state re-serves known targets).
NUM_TARGETS = 6
#: Sessions in the server's pool — the bound on concurrent query execution.
SERVER_WORKERS = 4
#: Concurrent client threads (closed loop keeps all of them busy, so the
#: server's session pool saturates and the measured qps is a ceiling).
CLIENT_WORKERS = 8
#: Back-to-back requests per closed-loop client.
CLOSED_LOOP_REQUESTS_PER_CLIENT = 25
#: Offered load and duration of the open-loop schedule.  Kept below the
#: measured closed-loop ceiling so the open loop records latency under a
#: feasible load rather than unbounded backlog growth.
OPEN_LOOP_QPS = 8.0
OPEN_LOOP_SECONDS = 5.0
#: Answer size requested per query.
TOP_K = 10
#: Tracked floor: warm-cache closed-loop throughput of the served engine.
#: Deliberately conservative — the floor guards against the serving tier
#: losing an order of magnitude (a forgotten cache, a per-request re-profile,
#: accidental connection-per-request), not against machine-to-machine noise.
#: Serving-sized targets (2000 rows) are parsed off the wire and queried per
#: request; the GIL serialises the CPU-bound work across the session pool,
#: so the ceiling is single-core query throughput, ~10 qps on the recording
#: machine.
SERVING_WARM_QPS_FLOOR = 5.0
#: Tracked floor for ``--backend process``: with a worker process per session
#: the GIL ceiling is lifted, so on a host with at least ``SERVER_WORKERS``
#: CPUs the process backend must beat the thread backend's closed-loop
#: throughput by this factor.  The floor only binds when the recording host
#: actually has the CPUs (``available_cpus >= SERVER_WORKERS``); on smaller
#: hosts process serving cannot parallelise and the guard below applies
#: instead.
SERVING_PROCESS_SPEEDUP_FLOOR = 3.0
#: Single-core degradation guard: even with nothing to parallelise, process
#: serving (descriptor attach + pipe round-trips) must retain at least this
#: fraction of the thread backend's closed-loop throughput.
SERVING_PROCESS_SINGLE_CORE_RATIO = 0.4


def _percentiles_ms(latencies: List[float]) -> Dict[str, float]:
    values = np.asarray(latencies) * 1000.0
    return {
        "p50": float(np.percentile(values, 50)),
        "p90": float(np.percentile(values, 90)),
        "p99": float(np.percentile(values, 99)),
    }


def _post_query(
    connection: http.client.HTTPConnection, body: bytes
) -> Dict[str, object]:
    connection.request(
        "POST", "/query", body=body, headers={"Content-Type": "application/json"}
    )
    response = connection.getresponse()
    payload = json.loads(response.read())
    if response.status != 200:
        raise RuntimeError(f"server answered {response.status}: {payload}")
    return payload


def _verify_served_responses(server, requests) -> Tuple[bool, List[str]]:
    """Every target's served payload equals the in-process session's, exactly.

    Also primes the server's session caches: after this pass each session in
    the pool has seen every target at least once under round-robin checkout,
    so the timed sweeps measure warm-cache serving.
    """
    from repro.core.api import (
        DiscoverySession,
        QueryResponse,
        query_request_to_wire,
    )

    problems: List[str] = []
    with DiscoverySession(server.engine) as oracle:
        expected = [
            oracle.submit(request).truncated().to_dict() for request in requests
        ]
    connection = http.client.HTTPConnection(server.host, server.port, timeout=60)
    try:
        # One pass per serving worker (session or worker process): round-robin
        # checkout lands every target in every worker's cache, whatever the
        # interleaving.
        for _ in range(server.worker_count):
            for index, request in enumerate(requests):
                body = json.dumps(query_request_to_wire(request)).encode("utf-8")
                payload = _post_query(connection, body)
                if payload != expected[index]:
                    problems.append(
                        f"served response for target {index} diverges from the "
                        "in-process session"
                    )
                restored = QueryResponse.from_dict(payload)
                if restored.to_dict() != payload:
                    problems.append(
                        f"served response for target {index} does not round-trip "
                        "from_dict losslessly"
                    )
    finally:
        connection.close()
    return not problems, problems


def _closed_loop(server, bodies: List[bytes]) -> Dict[str, object]:
    """``CLIENT_WORKERS`` clients hammer the server back-to-back."""
    latencies: List[List[float]] = [[] for _ in range(CLIENT_WORKERS)]
    errors: List[str] = []
    barrier = threading.Barrier(CLIENT_WORKERS + 1)

    def client(worker: int) -> None:
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=60
        )
        try:
            barrier.wait()
            for index in range(CLOSED_LOOP_REQUESTS_PER_CLIENT):
                body = bodies[(worker + index) % len(bodies)]
                start = time.perf_counter()
                _post_query(connection, body)
                latencies[worker].append(time.perf_counter() - start)
        except Exception as error:  # noqa: BLE001 - surfaced in the payload
            errors.append(f"closed-loop client {worker}: {error}")
        finally:
            connection.close()

    threads = [
        threading.Thread(target=client, args=(worker,))
        for worker in range(CLIENT_WORKERS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    flat = [latency for per_client in latencies for latency in per_client]
    return {
        "client_workers": CLIENT_WORKERS,
        "requests": len(flat),
        "seconds": elapsed,
        "qps": len(flat) / max(elapsed, 1e-12),
        "latency_ms": _percentiles_ms(flat),
        "errors": errors,
    }


def _open_loop(server, bodies: List[bytes]) -> Dict[str, object]:
    """Requests arrive on a fixed schedule; latency includes queueing delay.

    Each scheduled arrival is pre-assigned round-robin to a client thread;
    the thread sleeps until the arrival time, fires, and measures from the
    *schedule*, not from when it got around to sending — so a slow server
    shows up as growing latency instead of silently thinning the load
    (coordinated omission).
    """
    total = int(OPEN_LOOP_QPS * OPEN_LOOP_SECONDS)
    interval = 1.0 / OPEN_LOOP_QPS
    latencies: List[List[float]] = [[] for _ in range(CLIENT_WORKERS)]
    errors: List[str] = []
    barrier = threading.Barrier(CLIENT_WORKERS + 1)
    epoch: List[float] = []

    def client(worker: int) -> None:
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=60
        )
        try:
            barrier.wait()
            for index in range(worker, total, CLIENT_WORKERS):
                scheduled = epoch[0] + index * interval
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                _post_query(connection, bodies[index % len(bodies)])
                latencies[worker].append(time.perf_counter() - scheduled)
        except Exception as error:  # noqa: BLE001 - surfaced in the payload
            errors.append(f"open-loop client {worker}: {error}")
        finally:
            connection.close()

    threads = [
        threading.Thread(target=client, args=(worker,))
        for worker in range(CLIENT_WORKERS)
    ]
    for thread in threads:
        thread.start()
    epoch.append(time.perf_counter() + 0.05)  # let every client reach the gate
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    flat = [latency for per_client in latencies for latency in per_client]
    return {
        "client_workers": CLIENT_WORKERS,
        "offered_qps": OPEN_LOOP_QPS,
        "requests": len(flat),
        "seconds": elapsed,
        "achieved_qps": len(flat) / max(elapsed, 1e-12),
        "latency_ms": _percentiles_ms(flat),
        "errors": errors,
    }


def run(seed: int = 11) -> Dict[str, object]:
    """Index a lake, serve it, drive it, and return the ``serving`` section."""
    from repro.core.api import QueryRequest, query_request_to_wire
    from repro.core.config import D3LConfig
    from repro.core.discovery import D3L
    from repro.core.server import DiscoveryServer

    lake = _mixed_query_lake(SERVING_LAKE_ATTRIBUTES, seed)
    config = D3LConfig(
        num_hashes=NUM_HASHES,
        num_trees=NUM_TREES,
        embedding_dimension=32,
        min_candidates=BATCH_QUERY_MIN_CANDIDATES,
    )
    engine = D3L(config=config)
    index_start = time.perf_counter()
    engine.index_lake(lake)
    index_seconds = time.perf_counter() - index_start

    targets = _serving_targets(NUM_TARGETS, seed + 1)
    requests = [QueryRequest(target=target, k=TOP_K) for target in targets]
    bodies = [
        json.dumps(query_request_to_wire(request)).encode("utf-8")
        for request in requests
    ]

    with DiscoveryServer(engine, port=0, workers=SERVER_WORKERS) as server:
        identical, problems = _verify_served_responses(server, requests)
        closed = _closed_loop(server, bodies)
        open_ = _open_loop(server, bodies)

    # Same engine, same requests, process-backed serving: N worker processes
    # each attach the shared snapshot read-only, so CPU-bound query work runs
    # outside the GIL.  Recorded side by side with the thread backend (which
    # stays the top-level record, for continuity with older payloads).
    with DiscoveryServer(
        engine, port=0, workers=SERVER_WORKERS, backend="process"
    ) as server:
        process_identical, process_problems = _verify_served_responses(
            server, requests
        )
        process_closed = _closed_loop(server, bodies)
        process_open = _open_loop(server, bodies)

    return {
        "generated_by": "benchmarks/bench_serving.py",
        "num_attributes": engine.indexes.attribute_count,
        "num_tables": len(lake),
        "index_seconds": index_seconds,
        "num_targets": NUM_TARGETS,
        "top_k": TOP_K,
        "server_workers": SERVER_WORKERS,
        "available_cpus": os.cpu_count() or 1,
        "responses_identical": identical,
        "verification_problems": problems,
        "closed_loop": closed,
        "open_loop": open_,
        "process_backend": {
            "responses_identical": process_identical,
            "verification_problems": process_problems,
            "closed_loop": process_closed,
            "open_loop": process_open,
        },
        "process_speedup": process_closed["qps"] / max(closed["qps"], 1e-12),
    }


def merge_into_result_file(serving: Dict[str, object]) -> None:
    """Write the ``serving`` section into ``BENCH_hot_paths.json`` in place.

    The rest of the payload — the hot-path sweeps written by
    ``bench_perf_hot_paths.py`` — is preserved untouched, so the two
    benchmarks can be re-run independently in any order.
    """
    payload: Dict[str, object] = {}
    if RESULT_PATH.exists():
        try:
            payload = json.loads(RESULT_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            payload = {}
    payload["serving"] = serving
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def main() -> int:
    serving = run()
    merge_into_result_file(serving)
    closed = serving["closed_loop"]
    open_ = serving["open_loop"]
    print(
        f"served n={serving['num_attributes']} attrs, "
        f"{serving['server_workers']} server workers"
    )
    print(
        f"closed loop: {closed['qps']:.1f} qps over {closed['requests']} requests  "
        f"p50={closed['latency_ms']['p50']:.1f}ms "
        f"p90={closed['latency_ms']['p90']:.1f}ms "
        f"p99={closed['latency_ms']['p99']:.1f}ms"
    )
    print(
        f"open loop @ {open_['offered_qps']:.0f} qps offered: "
        f"{open_['achieved_qps']:.1f} qps achieved  "
        f"p50={open_['latency_ms']['p50']:.1f}ms "
        f"p90={open_['latency_ms']['p90']:.1f}ms "
        f"p99={open_['latency_ms']['p99']:.1f}ms"
    )
    process = serving["process_backend"]
    process_closed = process["closed_loop"]
    print(
        f"process backend: {process_closed['qps']:.1f} qps closed loop "
        f"({serving['process_speedup']:.2f}x thread, "
        f"{serving['available_cpus']} CPUs available)"
    )
    print(f"responses identical to in-process session: {serving['responses_identical']}")
    print(f"wrote {RESULT_PATH}")
    failures = list(serving["verification_problems"])
    failures += list(process["verification_problems"])
    failures += closed["errors"] + open_["errors"]
    failures += process_closed["errors"] + process["open_loop"]["errors"]
    if closed["qps"] < SERVING_WARM_QPS_FLOOR:
        message = (
            f"FLOOR VIOLATION: warm closed-loop throughput {closed['qps']:.1f} qps "
            f"< {SERVING_WARM_QPS_FLOOR} qps"
        )
        print(message)
        failures.append(message)
    if serving["available_cpus"] >= SERVER_WORKERS:
        if serving["process_speedup"] < SERVING_PROCESS_SPEEDUP_FLOOR:
            message = (
                f"FLOOR VIOLATION: process-backend speedup "
                f"{serving['process_speedup']:.2f}x < "
                f"{SERVING_PROCESS_SPEEDUP_FLOOR}x with "
                f"{serving['available_cpus']} CPUs"
            )
            print(message)
            failures.append(message)
    elif serving["process_speedup"] < SERVING_PROCESS_SINGLE_CORE_RATIO:
        message = (
            f"FLOOR VIOLATION: process backend retains only "
            f"{serving['process_speedup']:.2f}x of thread throughput "
            f"(guard: {SERVING_PROCESS_SINGLE_CORE_RATIO}x on a "
            f"{serving['available_cpus']}-CPU host)"
        )
        print(message)
        failures.append(message)
    for problem in serving["verification_problems"]:
        print(f"VERIFICATION FAILURE: {problem}")
    for problem in process["verification_problems"]:
        print(f"VERIFICATION FAILURE (process backend): {problem}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
