"""Tests for incremental index maintenance and attribute-level search."""

import pytest

from repro.core.discovery import D3L
from repro.core.evidence import EvidenceType
from repro.lake.datalake import AttributeRef, DataLake
from repro.tables.table import Table


@pytest.fixture
def engine(figure1_tables, fast_config):
    engine = D3L(config=fast_config)
    engine.index_lake(figure1_tables["lake"])
    return engine


class TestRemoveTable:
    def test_remove_known_table(self, engine, figure1_tables):
        assert engine.remove_table("gp_funding_s2") is True
        assert "gp_funding_s2" not in engine.indexes.table_names
        answer = engine.query(figure1_tables["target"], k=3)
        assert "gp_funding_s2" not in answer.candidate_tables()

    def test_remove_unknown_table(self, engine):
        assert engine.remove_table("not_there") is False

    def test_remove_clears_all_indexes(self, engine):
        removed_refs = [
            ref for ref in engine.indexes.profiles if ref.table == "local_gps_s3"
        ]
        assert removed_refs
        engine.remove_table("local_gps_s3")
        for ref in removed_refs:
            assert ref not in engine.indexes.profiles
            for evidence in EvidenceType.indexed():
                assert engine.indexes.signature(evidence, ref) is None

    def test_reinsert_after_removal(self, engine, figure1_tables):
        engine.remove_table("gp_funding_s2")
        engine.index_table(figure1_tables["sources"][1])
        answer = engine.query(figure1_tables["target"], k=3)
        assert "gp_funding_s2" in answer.candidate_tables()

    def test_remove_invalidates_join_graph(self, engine):
        graph_before = engine.join_graph
        engine.remove_table("gp_practices_s1")
        assert engine.join_graph is not graph_before
        assert "gp_practices_s1" not in engine.join_graph.table_names or not list(
            engine.join_graph.graph.edges("gp_practices_s1")
        )

    def test_attribute_count_shrinks(self, engine):
        before = engine.indexes.attribute_count
        engine.remove_table("gp_practices_s1")
        assert engine.indexes.attribute_count < before


class TestReindexUpsert:
    """Re-indexing an existing table name replaces its previous attributes.

    Regression: add_profiled_table used to overwrite table_profiles without
    removing the previous attributes' forest and signature-matrix rows, so a
    re-added table with a changed column set left ghost candidates in every
    evidence index.
    """

    def test_reindex_with_changed_columns_leaves_no_ghosts(self, engine):
        name = "gp_practices_s1"
        old_refs = [ref for ref in engine.indexes.profiles if ref.table == name]
        assert old_refs
        replacement = Table.from_dict(
            name, {"completely_new_column": ["alpha", "beta", "gamma"]}
        )
        engine.index_table(replacement)

        new_ref = AttributeRef(name, "completely_new_column")
        assert new_ref in engine.indexes.profiles
        surviving = {ref for ref in engine.indexes.profiles if ref.table == name}
        assert surviving == {new_ref}
        for ref in old_refs:
            for evidence in EvidenceType.indexed():
                assert engine.indexes.signature(evidence, ref) is None
                assert ref not in engine.indexes._matrices[evidence]
                assert ref not in engine.indexes._forests[evidence]

    def test_reindex_equals_fresh_build(self, engine, figure1_tables, fast_config):
        # Upserting a mutated table and then restoring the original content
        # must converge to exactly the state a from-scratch build produces.
        name = "gp_practices_s1"
        original = next(
            table for table in figure1_tables["sources"] if table.name == name
        )
        engine.index_table(Table.from_dict(name, {"other": ["x", "y"]}))
        engine.index_table(original)

        oracle = D3L(config=fast_config)
        oracle.index_lake(figure1_tables["lake"])
        assert set(engine.indexes.profiles) == set(oracle.indexes.profiles)
        answer = engine.query_batch(figure1_tables["target"], k=3)
        expected = oracle.query_batch(figure1_tables["target"], k=3)
        assert [(r.table_name, r.distance) for r in answer.results] == [
            (r.table_name, r.distance) for r in expected.results
        ]

    def test_matrix_row_registry_stays_packed(self, engine):
        name = "local_gps_s3"
        engine.index_table(Table.from_dict(name, {"col": ["1", "2", "3"]}))
        for evidence in EvidenceType.indexed():
            matrix = engine.indexes._matrices[evidence]
            refs = matrix.refs
            assert len(refs) == len(set(refs))
            for ref in refs:
                row = matrix.row(ref)
                assert row is not None and 0 <= row < len(refs)
                assert refs[row] == ref


class TestRelatedAttributes:
    def test_returns_ranked_attributes(self, engine, figure1_tables):
        results = engine.related_attributes(figure1_tables["target"], "Postcode", k=5)
        assert results
        refs = [result.ref for result in results]
        assert AttributeRef("gp_funding_s2", "Postcode") in refs
        distances = [result.distance for result in results]
        assert distances == sorted(distances)

    def test_respects_k(self, engine, figure1_tables):
        assert len(engine.related_attributes(figure1_tables["target"], "City", k=1)) == 1

    def test_distances_complete_and_bounded(self, engine, figure1_tables):
        results = engine.related_attributes(figure1_tables["target"], "City", k=5)
        for result in results:
            assert set(result.distances) == set(EvidenceType.all())
            assert all(0.0 <= value <= 1.0 for value in result.distances.values())
            assert 0.0 <= result.distance <= 1.0

    def test_unknown_attribute_raises(self, engine, figure1_tables):
        with pytest.raises(KeyError):
            engine.related_attributes(figure1_tables["target"], "NotAColumn", k=3)

    def test_invalid_k_raises(self, engine, figure1_tables):
        with pytest.raises(ValueError):
            engine.related_attributes(figure1_tables["target"], "City", k=0)

    def test_exclude_self(self, engine, figure1_tables):
        source = figure1_tables["sources"][1]
        included = engine.related_attributes(source, "City", k=10, exclude_self=False)
        excluded = engine.related_attributes(source, "City", k=10, exclude_self=True)
        assert any(result.ref.table == source.name for result in included)
        assert all(result.ref.table != source.name for result in excluded)

    def test_numeric_attribute_search(self, engine, figure1_tables):
        results = engine.related_attributes(figure1_tables["sources"][0], "Patients", k=5)
        # Numeric attributes are indexed by name and format, so candidates
        # exist; the distribution distance must be defined for numeric pairs.
        assert results
        for result in results:
            assert 0.0 <= result.distances[EvidenceType.DISTRIBUTION] <= 1.0
