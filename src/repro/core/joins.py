"""Join-path discovery (section IV): SA-joinability and Algorithm 3.

Two datasets are *SA-joinable* when there is value-index evidence that the
token sets of a pair of their attributes overlap and at least one attribute
of the pair is its table's subject attribute.  The SA-join graph connects
SA-joinable tables; Algorithm 3 walks it depth-first from every top-k table,
collecting acyclic paths whose intermediate tables are outside the top-k but
still related to the target by at least one index.  Tables reached this way
can contribute values to target attributes the top-k left uncovered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core.config import D3LConfig
from repro.core.evidence import EvidenceType
from repro.core.indexes import D3LIndexes
from repro.lake.datalake import AttributeRef
from repro.lsh.lsh_ensemble import LSHEnsemble
from repro.lsh.minhash import MinHashFactory


@dataclass(frozen=True)
class JoinEdge:
    """An SA-join opportunity between two attributes of different tables."""

    left: AttributeRef
    right: AttributeRef
    overlap: float

    def tables(self) -> Tuple[str, str]:
        """The two table names connected by this edge."""
        return self.left.table, self.right.table


@dataclass
class JoinPath:
    """A path of SA-joinable tables starting from a top-k table."""

    tables: List[str]
    edges: List[JoinEdge]

    @property
    def start(self) -> str:
        """The top-k table the path starts from."""
        return self.tables[0]

    @property
    def reached(self) -> List[str]:
        """Tables reached beyond the starting table."""
        return self.tables[1:]

    def __len__(self) -> int:
        return len(self.tables)


def estimated_overlap(jaccard: float, size_a: int, size_b: int) -> float:
    """Overlap coefficient estimated from a Jaccard estimate and set sizes.

    Uses the inclusion–exclusion identity from section IV:
    ``ov = J * (|A| + |B|) / ((1 + J) * min(|A|, |B|))``, clipped to [0, 1].
    """
    smaller = min(size_a, size_b)
    if smaller <= 0 or jaccard <= 0.0:
        return 0.0
    value = jaccard * (size_a + size_b) / ((1.0 + jaccard) * smaller)
    return min(1.0, value)


class SAJoinGraph:
    """The SA-join graph G_S = (S, I) over an indexed data lake."""

    def __init__(self, graph: nx.Graph) -> None:
        self._graph = graph

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (nodes: table names)."""
        return self._graph

    @property
    def table_names(self) -> List[str]:
        """All nodes of the graph."""
        return list(self._graph.nodes)

    def neighbours(self, table_name: str) -> List[str]:
        """Tables SA-joinable with ``table_name`` (empty when unknown)."""
        if table_name not in self._graph:
            return []
        return sorted(self._graph.neighbors(table_name))

    def edge(self, first: str, second: str) -> Optional[JoinEdge]:
        """The join edge between two tables, when one exists."""
        data = self._graph.get_edge_data(first, second)
        if not data:
            return None
        return data["join"]

    def edge_count(self) -> int:
        """Number of SA-join edges in the graph."""
        return self._graph.number_of_edges()

    def connected_component(self, table_name: str) -> Set[str]:
        """Tables reachable from ``table_name`` through SA-join edges."""
        if table_name not in self._graph:
            return set()
        return set(nx.node_connected_component(self._graph, table_name))

    @classmethod
    def build(cls, indexes: D3LIndexes, config: Optional[D3LConfig] = None) -> "SAJoinGraph":
        """Build the SA-join graph from an indexed lake.

        For every table's subject attribute the value index is queried as a
        blocking step; each candidate pair is then verified against the
        postulated inclusion dependency by computing the overlap coefficient
        of the two attributes' distinct-value samples, and pairs clearing the
        configured threshold become edges.  Because the probe attribute is
        always a subject attribute, the SA-joinability condition (at least
        one side is a subject attribute) holds by construction.
        """
        config = config or indexes.config
        graph = nx.Graph()
        graph.add_nodes_from(indexes.table_names)

        pool = max(config.min_candidates, 2 * len(indexes.table_names))
        for table_name, table_profile in indexes.table_profiles.items():
            subject = table_profile.subject_profile()
            if subject is None or not subject.tokens:
                continue
            candidates = indexes.lookup(
                EvidenceType.VALUE, subject, k=pool, exclude_table=table_name
            )
            for ref, _distance in candidates:
                other_profile = indexes.profiles.get(ref)
                if other_profile is None or not other_profile.tokens:
                    continue
                overlap = subject.value_overlap(other_profile)
                if overlap < config.overlap_threshold:
                    continue
                existing = graph.get_edge_data(table_name, ref.table)
                edge = JoinEdge(left=subject.ref, right=ref, overlap=overlap)
                if existing is None or existing["join"].overlap < overlap:
                    graph.add_edge(table_name, ref.table, join=edge)
        return cls(graph)

    @classmethod
    def build_with_ensemble(
        cls, indexes: D3LIndexes, config: Optional[D3LConfig] = None
    ) -> "SAJoinGraph":
        """Alternative construction using LSH Ensemble containment blocking.

        The paper notes LSH Ensemble (Zhu et al. 2016) as an improvement
        compatible with its value index: MinHash-based Jaccard blocking
        under-retrieves containment pairs whose set sizes are skewed, which
        is exactly the shape of inclusion dependencies.  This variant indexes
        every textual attribute's token set in an LSH Ensemble, probes it
        with each table's subject attribute at the configured containment
        threshold, and then applies the same value-sample verification as
        :meth:`build`.
        """
        config = config or indexes.config
        graph = nx.Graph()
        graph.add_nodes_from(indexes.table_names)

        factory = MinHashFactory(num_perm=config.num_hashes, seed=config.seed + 50)
        ensemble = LSHEnsemble(
            threshold=config.overlap_threshold,
            num_hashes=config.num_hashes,
            seed=config.seed + 51,
        )
        signatures: Dict[AttributeRef, Tuple[object, int]] = {}
        for ref, profile in indexes.profiles.items():
            if not profile.tokens:
                continue
            signature = factory.from_tokens(profile.tokens)
            signatures[ref] = (signature, len(profile.tokens))
            ensemble.insert(ref, signature, len(profile.tokens))
        ensemble.index()

        for table_name, table_profile in indexes.table_profiles.items():
            subject = table_profile.subject_profile()
            if subject is None or not subject.tokens:
                continue
            probe = factory.from_tokens(subject.tokens)
            candidates = ensemble.query(probe, len(subject.tokens))
            for ref in candidates:
                if ref.table == table_name:
                    continue
                other_profile = indexes.profiles.get(ref)
                if other_profile is None:
                    continue
                overlap = subject.value_overlap(other_profile)
                if overlap < config.overlap_threshold:
                    continue
                existing = graph.get_edge_data(table_name, ref.table)
                edge = JoinEdge(left=subject.ref, right=ref, overlap=overlap)
                if existing is None or existing["join"].overlap < overlap:
                    graph.add_edge(table_name, ref.table, join=edge)
        return cls(graph)


def find_join_paths(
    graph: SAJoinGraph,
    top_k_tables: Sequence[str],
    related_tables: Iterable[str],
    max_length: int = 3,
    max_paths: Optional[int] = None,
) -> List[JoinPath]:
    """Algorithm 3: SA-join paths from every top-k table into the rest of the lake.

    ``related_tables`` is the set of tables for which at least one index
    provides evidence of relatedness to the target (the ``I*.lookup(T)``
    condition); only such tables may appear on a path.  Paths are acyclic, do
    not revisit top-k tables, and are truncated at ``max_length`` hops.

    ``max_paths`` bounds the enumeration: dense join graphs have
    combinatorially many acyclic paths, and the coverage computation only
    needs the reachable tables, so the walk stops once the cap is reached.
    """
    top_k_set = set(top_k_tables)
    related = set(related_tables)
    paths: List[JoinPath] = []

    def _walk(current: str, path_tables: List[str], path_edges: List[JoinEdge]) -> bool:
        if len(path_tables) - 1 >= max_length:
            return True
        for neighbour in graph.neighbours(current):
            if max_paths is not None and len(paths) >= max_paths:
                return False
            if neighbour in top_k_set or neighbour in path_tables:
                continue
            if neighbour not in related:
                continue
            edge = graph.edge(current, neighbour)
            if edge is None:
                continue
            new_tables = path_tables + [neighbour]
            new_edges = path_edges + [edge]
            paths.append(JoinPath(tables=list(new_tables), edges=list(new_edges)))
            if not _walk(neighbour, new_tables, new_edges):
                return False
        return True

    for start in top_k_tables:
        if not _walk(start, [start], []):
            break
    return paths


def tables_reached(paths: Sequence[JoinPath]) -> Set[str]:
    """All tables reached by at least one join path (excluding starts)."""
    reached: Set[str] = set()
    for path in paths:
        reached.update(path.reached)
    return reached


def paths_from(paths: Sequence[JoinPath], start: str) -> List[JoinPath]:
    """The join paths starting from a given top-k table."""
    return [path for path in paths if path.start == start]
