"""Backend-equivalence sweeps for the pluggable execution layer.

Every :class:`~repro.core.execution.ExecutionBackend` must be an
interchangeable strategy: for a fixed request, ``serial``, ``thread`` and
``process`` runs — at any worker count, including after lake mutations —
must produce indistinguishable answers.  The serial backend is the oracle;
the sweeps here pin the other two to it through the public request
protocol, the SA-join verification kernel, and the raw ``map_shards``
surface.
"""

import itertools

import pytest

from repro.core.api import (
    DiscoverySession,
    QueryRequest,
    query_request_from_wire,
    query_request_to_wire,
)
from repro.core.config import D3LConfig
from repro.core.discovery import D3L
from repro.core.execution import BACKENDS, create_backend
from repro.datagen.synthetic_benchmark import (
    SyntheticBenchmarkConfig,
    generate_synthetic_benchmark,
)

POOLED_BACKENDS = ("thread", "process")


def _double_shard(indexes, payload):
    """Module-level shard fn so process workers can unpickle it."""
    return [value * 2 for value in payload]


def _tiny_config():
    return D3LConfig(
        num_hashes=64, num_trees=8, min_candidates=20, embedding_dimension=16
    )


@pytest.fixture(scope="module")
def corpus():
    return generate_synthetic_benchmark(
        SyntheticBenchmarkConfig(
            num_base_tables=3,
            tables_per_base=3,
            base_rows=40,
            min_rows=20,
            max_rows=35,
            seed=23,
        )
    )


@pytest.fixture(scope="module")
def engine(corpus):
    engine = D3L(config=_tiny_config())
    engine.index_lake(corpus.lake)
    yield engine
    engine.close()


def _submit(engine, target, *, backend, workers, **kwargs):
    with DiscoverySession(engine) as session:
        request = QueryRequest(
            target=target, k=4, workers=workers, backend=backend, **kwargs
        )
        return session.submit(request).to_dict()


class TestCreateBackend:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            create_backend("quantum", None, 2)

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_invalid_workers_rejected(self, kind):
        with pytest.raises(ValueError, match="workers must be positive"):
            create_backend(kind, None, 0)

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_map_shards_matches_inline(self, kind, engine):
        payloads = [[1, 2], [3], [4, 5, 6]]
        expected = [_double_shard(None, payload) for payload in payloads]
        with create_backend(kind, engine.indexes, 3) as backend:
            assert list(backend.map_shards(_double_shard, payloads)) == expected

    def test_close_is_idempotent(self, engine):
        backend = create_backend("thread", engine.indexes, 2)
        backend.map_shards(_double_shard, [[1], [2]])
        backend.close()
        backend.close()


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_workers_1_vs_4_identical(self, corpus, engine, backend):
        target = corpus.lake.tables[0]
        assert _submit(engine, target, backend=backend, workers=1) == _submit(
            engine, target, backend=backend, workers=4
        )

    @pytest.mark.parametrize("backend", POOLED_BACKENDS)
    def test_pooled_backends_match_serial_oracle(self, corpus, engine, backend):
        for target in (corpus.lake.tables[1], corpus.lake.tables[4]):
            oracle = _submit(engine, target, backend="serial", workers=1)
            assert _submit(engine, target, backend=backend, workers=3) == oracle

    def test_backends_agree_after_mutation_deltas(self, corpus):
        engine = D3L(config=_tiny_config())
        engine.index_lake(corpus.lake)
        try:
            target = corpus.lake.tables[2]
            # Warm a pool per backend so the mutations below refresh live
            # workers via deltas instead of building fresh pools.
            for backend in POOLED_BACKENDS:
                _submit(engine, target, backend=backend, workers=2)
            extra = corpus.lake.tables[0].with_name("zz_delta_table")
            engine.index_table(extra)
            engine.remove_table(corpus.lake.table_names[-1])
            for probe in (target, extra):
                oracle = _submit(
                    engine, probe, backend="serial", workers=1, exclude_self=False
                )
                for backend in POOLED_BACKENDS:
                    assert (
                        _submit(
                            engine,
                            probe,
                            backend=backend,
                            workers=2,
                            exclude_self=False,
                        )
                        == oracle
                    )
        finally:
            engine.close()


class TestJoinVerificationBackends:
    def test_verify_overlaps_identical_across_backends(self, engine):
        refs = sorted(engine.indexes.profiles)[:6]
        pairs = list(itertools.combinations(refs, 2))
        with create_backend("serial", engine.indexes, 1) as oracle:
            expected = oracle.verify_overlaps(pairs)
        for kind in POOLED_BACKENDS:
            with create_backend(kind, engine.indexes, 3) as backend:
                assert backend.verify_overlaps(pairs) == expected

    @pytest.mark.parametrize("backend", POOLED_BACKENDS)
    def test_join_graph_identical_across_backends(self, corpus, backend):
        serial = D3L(config=_tiny_config())
        serial.index_lake(corpus.lake)
        pooled = D3L(config=_tiny_config())
        pooled.index_lake(corpus.lake)
        try:
            oracle = serial.build_join_graph(workers=1)
            graph = pooled.build_join_graph(workers=3, backend=backend)
            assert [
                (edge.left, edge.right, edge.overlap) for edge in oracle.edges()
            ] == [(edge.left, edge.right, edge.overlap) for edge in graph.edges()]
        finally:
            serial.close()
            pooled.close()


class TestRequestBackendField:
    def test_unknown_backend_rejected(self, corpus):
        with pytest.raises(ValueError, match="unknown backend"):
            QueryRequest(target=corpus.lake.tables[0], backend="quantum")

    def test_wire_round_trip_preserves_backend(self, corpus):
        request = QueryRequest(
            target=corpus.lake.tables[0], k=3, workers=2, backend="thread"
        )
        payload = query_request_to_wire(request)
        assert payload["backend"] == "thread"
        restored = query_request_from_wire(payload)
        assert restored.backend == "thread"
