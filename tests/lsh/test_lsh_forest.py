"""Tests for the LSH Forest top-k index."""

import numpy as np
import pytest

from repro.lsh.lsh_forest import LSHForest
from repro.lsh.minhash import MinHashFactory


@pytest.fixture
def factory():
    return MinHashFactory(num_perm=128, seed=7)


@pytest.fixture
def forest():
    return LSHForest(num_hashes=128, num_trees=8)


def _tokens(prefix, count):
    return {f"{prefix}{i}" for i in range(count)}


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LSHForest(num_hashes=0)
        with pytest.raises(ValueError):
            LSHForest(num_hashes=16, num_trees=0)
        with pytest.raises(ValueError):
            LSHForest(num_hashes=4, num_trees=8)

    def test_key_length(self):
        assert LSHForest(num_hashes=128, num_trees=8).key_length == 16


class TestInsertQuery:
    def test_insert_and_len(self, forest, factory):
        forest.insert("a", factory.from_tokens(_tokens("a", 10)).hashvalues)
        assert len(forest) == 1
        assert "a" in forest

    def test_short_signature_rejected(self, forest):
        with pytest.raises(ValueError):
            forest.insert("bad", np.zeros(8, dtype=np.uint64))

    def test_query_finds_identical_item(self, forest, factory):
        signature = factory.from_tokens(_tokens("x", 25))
        forest.insert("x", signature.hashvalues)
        assert forest.query(signature.hashvalues, k=5) == ["x"]

    def test_query_excludes_requested_key(self, forest, factory):
        signature = factory.from_tokens(_tokens("x", 25))
        forest.insert("x", signature.hashvalues)
        assert forest.query(signature.hashvalues, k=5, exclude="x") == []

    def test_query_zero_k_returns_nothing(self, forest, factory):
        signature = factory.from_tokens(_tokens("x", 25))
        forest.insert("x", signature.hashvalues)
        assert forest.query(signature.hashvalues, k=0) == []

    def test_similar_ranked_before_dissimilar(self, forest, factory):
        base = _tokens("tok", 60)
        forest.insert("near", factory.from_tokens(base | {"one-extra"}).hashvalues)
        forest.insert("far", factory.from_tokens(_tokens("other", 60)).hashvalues)
        results = forest.query(factory.from_tokens(base).hashvalues, k=1)
        assert results and results[0] == "near"

    def test_remove(self, forest, factory):
        signature = factory.from_tokens(_tokens("x", 25))
        forest.insert("x", signature.hashvalues)
        forest.remove("x")
        assert len(forest) == 0
        assert forest.query(signature.hashvalues, k=5) == []

    def test_remove_missing_is_noop(self, forest):
        forest.remove("missing")
        assert len(forest) == 0

    def test_reinsert_replaces(self, forest, factory):
        first = factory.from_tokens(_tokens("a", 25))
        second = factory.from_tokens(_tokens("b", 25))
        forest.insert("item", first.hashvalues)
        forest.insert("item", second.hashvalues)
        assert len(forest) == 1
        assert forest.query(second.hashvalues, k=3) == ["item"]

    def test_signature_accessor(self, forest, factory):
        signature = factory.from_tokens(_tokens("x", 25))
        forest.insert("x", signature.hashvalues)
        assert np.array_equal(forest.signature("x"), signature.hashvalues)

    def test_keys(self, forest, factory):
        forest.insert("a", factory.from_tokens(_tokens("a", 5)).hashvalues)
        forest.insert("b", factory.from_tokens(_tokens("b", 5)).hashvalues)
        assert set(forest.keys()) == {"a", "b"}


class TestTopKBehaviour:
    def test_returns_at_most_total_items(self, forest, factory):
        for i in range(5):
            forest.insert(f"item{i}", factory.from_tokens(_tokens(f"g{i}", 20)).hashvalues)
        query = factory.from_tokens(_tokens("g0", 20))
        assert len(forest.query(query.hashvalues, k=50)) <= 5

    def test_query_all_returns_related_items(self, forest, factory):
        base = _tokens("shared", 40)
        for i in range(4):
            forest.insert(
                f"item{i}",
                factory.from_tokens(base | {f"delta{i}"}).hashvalues,
            )
        results = forest.query_all(factory.from_tokens(base).hashvalues)
        assert set(results) == {f"item{i}" for i in range(4)}

    def test_estimated_bytes_grow(self, forest, factory):
        before = forest.estimated_bytes()
        forest.insert("a", factory.from_tokens(_tokens("a", 5)).hashvalues)
        assert forest.estimated_bytes() > before

    def test_recall_of_highly_similar_items(self, factory):
        forest = LSHForest(num_hashes=128, num_trees=16)
        base = _tokens("val", 100)
        forest.insert("stored", factory.from_tokens(base).hashvalues)
        # Insert distractors.
        for i in range(20):
            forest.insert(f"noise{i}", factory.from_tokens(_tokens(f"n{i}", 100)).hashvalues)
        query = factory.from_tokens(set(list(base)[:90]) | _tokens("q", 10))
        results = forest.query(query.hashvalues, k=5)
        assert "stored" in results
