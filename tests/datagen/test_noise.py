"""Tests for dirtiness injection."""

import numpy as np
import pytest

from repro.datagen.noise import (
    abbreviate,
    dirty_value,
    introduce_typo,
    perturb_case,
    perturb_punctuation,
    truncate,
)


class TestAbbreviate:
    def test_street_abbreviated(self):
        assert abbreviate("18 Portland Street") == "18 Portland St"

    def test_lowercase_word_abbreviated_in_lowercase(self):
        assert abbreviate("portland street") == "portland st"

    def test_unknown_words_untouched(self):
        assert abbreviate("Blackfriars Surgery") == "Blackfriars Surgery"

    def test_multiple_abbreviations(self):
        assert abbreviate("North Medical Centre") == "N Med Ctr"


class TestPerturbations:
    def test_perturb_case_changes_case_only(self):
        rng = np.random.default_rng(0)
        value = "Portland Street"
        result = perturb_case(value, rng)
        assert result.lower() == value.lower()

    def test_perturb_punctuation_keeps_letters(self):
        rng = np.random.default_rng(1)
        result = perturb_punctuation("a, b-c", rng)
        assert set("abc") <= set(result)

    def test_introduce_typo_changes_length_by_at_most_one(self):
        rng = np.random.default_rng(2)
        value = "Manchester"
        result = introduce_typo(value, rng)
        assert abs(len(result) - len(value)) == 1

    def test_introduce_typo_short_values_untouched(self):
        rng = np.random.default_rng(3)
        assert introduce_typo("ab", rng) == "ab"

    def test_truncate_keeps_prefix_words(self):
        rng = np.random.default_rng(4)
        result = truncate("Bolton Medical Centre", rng)
        assert "Bolton" in result
        assert len(result.split()) < 3

    def test_truncate_single_word_untouched(self):
        rng = np.random.default_rng(5)
        assert truncate("Bolton", rng) == "Bolton"


class TestDirtyValue:
    def test_zero_dirtiness_returns_value(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert dirty_value("Salford Road", rng, dirtiness=0.0) == "Salford Road"

    def test_invalid_dirtiness_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            dirty_value("x", rng, dirtiness=1.5)

    def test_full_dirtiness_usually_changes_value(self):
        rng = np.random.default_rng(1)
        values = [dirty_value("18 Portland Street Manchester", rng, dirtiness=1.0) for _ in range(50)]
        changed = sum(1 for value in values if value != "18 Portland Street Manchester")
        assert changed > 25

    def test_missing_values_possible_when_allowed(self):
        rng = np.random.default_rng(2)
        values = [dirty_value("x y z", rng, dirtiness=1.0, allow_missing=True) for _ in range(200)]
        assert any(value is None for value in values)

    def test_missing_values_suppressed_when_disallowed(self):
        rng = np.random.default_rng(3)
        values = [dirty_value("x y z", rng, dirtiness=1.0, allow_missing=False) for _ in range(200)]
        assert all(value is not None for value in values)
