"""Tests for the shared baseline result types."""

from repro.baselines.base import Alignment, RankedAnswer, RankedTable
from repro.lake.datalake import AttributeRef


def _answer():
    results = [
        RankedTable(
            table_name="a",
            score=0.9,
            alignments=[Alignment("City", AttributeRef("a", "Town"), 0.9)],
        ),
        RankedTable(
            table_name="b",
            score=0.5,
            alignments=[
                Alignment("City", AttributeRef("b", "City"), 0.5),
                Alignment("Postcode", AttributeRef("b", "PostCode"), 0.4),
            ],
        ),
        RankedTable(table_name="c", score=0.1),
    ]
    return RankedAnswer(target_name="t", requested_k=2, results=results)


class TestRankedTable:
    def test_matches_alias(self):
        table = _answer().results[1]
        assert table.matches is table.alignments

    def test_covered_target_attributes(self):
        table = _answer().results[1]
        assert table.covered_target_attributes() == {"City", "Postcode"}

    def test_empty_alignments(self):
        table = _answer().results[2]
        assert table.covered_target_attributes() == set()


class TestRankedAnswer:
    def test_top_defaults_to_requested_k(self):
        assert [r.table_name for r in _answer().top()] == ["a", "b"]

    def test_top_with_explicit_k(self):
        assert [r.table_name for r in _answer().top(1)] == ["a"]

    def test_table_names(self):
        assert _answer().table_names(3) == ["a", "b", "c"]

    def test_candidate_tables(self):
        assert _answer().candidate_tables() == {"a", "b", "c"}

    def test_result_for(self):
        answer = _answer()
        assert answer.result_for("b").score == 0.5
        assert answer.result_for("zz") is None
