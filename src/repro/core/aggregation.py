"""Aggregation of attribute distances into table relatedness (section III-D).

The flow mirrors the paper exactly:

1. per (target, source-table) pair, the aligned attribute matches form a
   Table-I-style distance table (:func:`build_distance_table`);
2. each column of that table is aggregated with the Equation 1 weighted
   average, using the Equation 2 CCDF weights carried by each match
   (:func:`aggregate_column`, :func:`evidence_vector`);
3. the resulting 5-dimensional vector is reduced to a scalar relatedness
   distance with the Equation 3 weighted l2-norm (:func:`combined_distance`).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence

from repro.core.evidence import EvidenceType
from repro.core.profiles import AttributeMatch


def build_distance_table(matches: Sequence[AttributeMatch]) -> List[Dict[str, object]]:
    """Render matches as rows of a Table-I-style distance table.

    Mostly useful for reporting/examples: each row names the aligned pair and
    lists the five distances.
    """
    rows = []
    for match in matches:
        row: Dict[str, object] = {
            "pair": (match.target_attribute, str(match.source)),
        }
        for evidence in EvidenceType.all():
            row[f"D{evidence.value}"] = match.distances[evidence]
        rows.append(row)
    return rows


def aggregate_column(matches: Sequence[AttributeMatch], evidence: EvidenceType) -> float:
    """Equation 1: weighted average of one evidence type across matches.

    Each match contributes its distance of the given type weighted by its
    Equation 2 weight.  When every weight is zero (all matches are the worst
    of their populations) the unweighted mean is used so the value remains
    defined; an empty match list aggregates to the maximal distance 1.0.
    """
    if not matches:
        return 1.0
    weighted_sum = 0.0
    weight_sum = 0.0
    for match in matches:
        distance = match.distances[evidence]
        weight = match.weights.get(evidence, 1.0)
        weighted_sum += weight * distance
        weight_sum += weight
    if weight_sum <= 0.0:
        return float(sum(match.distances[evidence] for match in matches) / len(matches))
    return float(weighted_sum / weight_sum)


def evidence_vector(matches: Sequence[AttributeMatch]) -> Dict[EvidenceType, float]:
    """The 5-dimensional relatedness vector of a (target, source) pair."""
    return {evidence: aggregate_column(matches, evidence) for evidence in EvidenceType.all()}


def combined_distance(
    vector: Mapping[EvidenceType, float],
    weights: Mapping[EvidenceType, float],
) -> float:
    """Equation 3: weighted l2-norm of the relatedness vector.

    The source table is treated as a point in a 5-dimensional space in which
    the target sits at the origin; the weights express the relative
    importance of the evidence types (learned by logistic regression or
    supplied by an ablation).

    Weights are rescaled so the largest is 1 before applying the formula.
    This is a monotone transformation (it never changes the ranking the
    paper's Equation 3 induces) and it keeps the combined distance inside
    [0, 1] for any non-negative weight vector, which the rest of the
    framework assumes of every distance.
    """
    raw_weights = {
        evidence: max(float(weights.get(evidence, 0.0)), 0.0)
        for evidence in EvidenceType.all()
    }
    largest = max(raw_weights.values(), default=0.0)
    if largest > 0.0:
        raw_weights = {evidence: weight / largest for evidence, weight in raw_weights.items()}

    numerator = 0.0
    denominator = 0.0
    for evidence in EvidenceType.all():
        weight = raw_weights[evidence]
        value = float(vector.get(evidence, 1.0))
        numerator += (weight * value) ** 2
        denominator += weight
    if denominator <= 0.0:
        # Degenerate weighting: fall back to the unweighted Euclidean norm,
        # normalised to stay within [0, 1].
        values = [float(vector.get(evidence, 1.0)) for evidence in EvidenceType.all()]
        return math.sqrt(sum(value ** 2 for value in values) / len(values))
    return math.sqrt(numerator / denominator)
