"""Tests for the numeric special case (Algorithm 2)."""

import pytest

from repro.core.config import D3LConfig
from repro.core.indexes import D3LIndexes
from repro.core.numeric import (
    compute_d_relatedness,
    numeric_distance_matrix,
    subject_attributes_related,
)
from repro.lake.datalake import AttributeRef, DataLake
from repro.tables.table import Table


@pytest.fixture(scope="module")
def numeric_lake():
    practices_a = Table.from_dict(
        "practices_a",
        {
            "Practice": ["Blackfriars", "Radclife Care", "Bolton Medical", "Dr E Cullen"],
            "City": ["Salford", "Manchester", "Bolton", "Belfast"],
            "Patients": ["1202", "3572", "2209", "1840"],
        },
    )
    practices_b = Table.from_dict(
        "practices_b",
        {
            "Practice": ["Blackfriars", "Radclife Care", "The London Clinic", "Dr E Cullen"],
            "Patients": ["1250", "3500", "2300", "1800"],
            "Payment": ["15530", "73648", "20981", "17764"],
        },
    )
    unrelated = Table.from_dict(
        "road_lengths",
        {
            "Route": ["A56", "A6", "M60", "A34"],
            "Distance": ["12.5", "30.1", "57.8", "22.0"],
        },
    )
    return DataLake("numeric_lake", [practices_a, practices_b, unrelated])


@pytest.fixture(scope="module")
def numeric_indexes(numeric_lake):
    indexes = D3LIndexes(config=D3LConfig(num_hashes=128, embedding_dimension=16))
    indexes.add_lake(numeric_lake)
    return indexes


class TestSubjectGuard:
    def test_related_subject_attributes_detected(self, numeric_indexes, numeric_lake):
        target_profile = numeric_indexes.profile_table(numeric_lake.table("practices_a"))
        assert subject_attributes_related(
            numeric_indexes, target_profile, "practices_b", exclude_table="practices_a"
        )

    def test_unrelated_subject_attributes_not_detected(self, numeric_indexes, numeric_lake):
        target_profile = numeric_indexes.profile_table(numeric_lake.table("practices_a"))
        assert not subject_attributes_related(
            numeric_indexes, target_profile, "road_lengths", exclude_table="practices_a"
        )


class TestComputeDRelatedness:
    def test_numeric_pair_with_related_subjects_gets_ks(self, numeric_indexes, numeric_lake):
        target_profile = numeric_indexes.profile_table(numeric_lake.table("practices_a"))
        patients = target_profile.profile("Patients")
        distance = compute_d_relatedness(
            numeric_indexes,
            target_profile,
            patients,
            AttributeRef("practices_b", "Patients"),
            exclude_table="practices_a",
        )
        # Same underlying distribution of list sizes: small KS distance.
        assert distance < 0.5

    def test_same_name_guard_applies_even_without_subject_link(
        self, numeric_indexes, numeric_lake
    ):
        target_profile = numeric_indexes.profile_table(numeric_lake.table("practices_a"))
        patients = target_profile.profile("Patients")
        distance = compute_d_relatedness(
            numeric_indexes,
            target_profile,
            patients,
            AttributeRef("practices_b", "Patients"),
            subject_guard=False,
            exclude_table="practices_a",
        )
        assert distance < 1.0

    def test_unguarded_pair_gets_maximal_distance(self, numeric_indexes, numeric_lake):
        target_profile = numeric_indexes.profile_table(numeric_lake.table("practices_a"))
        patients = target_profile.profile("Patients")
        distance = compute_d_relatedness(
            numeric_indexes,
            target_profile,
            patients,
            AttributeRef("road_lengths", "Distance"),
            subject_guard=False,
            exclude_table="practices_a",
        )
        assert distance == 1.0

    def test_textual_attribute_gets_maximal_distance(self, numeric_indexes, numeric_lake):
        target_profile = numeric_indexes.profile_table(numeric_lake.table("practices_a"))
        city = target_profile.profile("City")
        distance = compute_d_relatedness(
            numeric_indexes,
            target_profile,
            city,
            AttributeRef("practices_b", "Patients"),
            exclude_table="practices_a",
        )
        assert distance == 1.0

    def test_unknown_reference_gets_maximal_distance(self, numeric_indexes, numeric_lake):
        target_profile = numeric_indexes.profile_table(numeric_lake.table("practices_a"))
        patients = target_profile.profile("Patients")
        distance = compute_d_relatedness(
            numeric_indexes,
            target_profile,
            patients,
            AttributeRef("missing_table", "missing_column"),
        )
        assert distance == 1.0


class TestDistanceMatrix:
    def test_matrix_covers_numeric_target_attributes(self, numeric_indexes, numeric_lake):
        target_profile = numeric_indexes.profile_table(numeric_lake.table("practices_a"))
        matrix = numeric_distance_matrix(
            numeric_indexes, target_profile, exclude_table="practices_a"
        )
        assert "Patients" in matrix
        assert "City" not in matrix

    def test_matrix_entries_bounded_and_guarded(self, numeric_indexes, numeric_lake):
        target_profile = numeric_indexes.profile_table(numeric_lake.table("practices_a"))
        matrix = numeric_distance_matrix(
            numeric_indexes, target_profile, exclude_table="practices_a"
        )
        for row in matrix.values():
            for ref, distance in row.items():
                assert 0.0 <= distance < 1.0
                assert ref.table != "practices_a"
