"""Tests for attribute and table profiling (Algorithm 1 feature extraction)."""

import numpy as np
import pytest

from repro.core.config import D3LConfig
from repro.core.evidence import EvidenceType
from repro.core.profiles import AttributeMatch, AttributeProfile
from repro.lake.datalake import AttributeRef
from repro.tables.column import Column
from repro.text.embeddings import HashingSubwordEmbedding


@pytest.fixture(scope="module")
def config():
    return D3LConfig(num_hashes=128, embedding_dimension=16)


@pytest.fixture(scope="module")
def embedding_model(config):
    return HashingSubwordEmbedding(dimension=config.embedding_dimension)


def _profile(column, config, embedding_model, table_name="t"):
    return AttributeProfile.build(table_name, column, embedding_model, config)


class TestTextualProfile:
    @pytest.fixture(scope="class")
    def address_profile(self, config, embedding_model):
        column = Column(
            "Address",
            ["18 Portland Street, M1 3BE", "41 Oxford Road, M13 9PL", "9 Mirabel Street, M3 1NN"],
        )
        return _profile(column, config, embedding_model)

    def test_ref(self, address_profile):
        assert address_profile.ref == AttributeRef("t", "Address")

    def test_not_numeric(self, address_profile):
        assert not address_profile.is_numeric

    def test_qgrams_from_name(self, address_profile):
        assert "addr" in address_profile.qgrams

    def test_tokens_informative(self, address_profile):
        assert "portland" in address_profile.tokens
        assert "street" not in address_profile.tokens

    def test_formats_extracted(self, address_profile):
        assert address_profile.formats

    def test_embedding_nonzero(self, address_profile):
        assert address_profile.has_embedding()
        assert address_profile.embedding.shape == (16,)

    def test_no_numeric_values(self, address_profile):
        assert address_profile.numeric_values == []

    def test_cardinality_and_distinct(self, address_profile):
        assert address_profile.cardinality == 3
        assert address_profile.distinct_count == 3

    def test_set_representation_lookup(self, address_profile):
        assert address_profile.set_representation(EvidenceType.NAME) == address_profile.qgrams
        assert address_profile.set_representation(EvidenceType.VALUE) == address_profile.tokens
        assert address_profile.set_representation(EvidenceType.FORMAT) == address_profile.formats

    def test_set_representation_rejects_non_jaccard_evidence(self, address_profile):
        with pytest.raises(ValueError):
            address_profile.set_representation(EvidenceType.EMBEDDING)

    def test_estimated_bytes_positive(self, address_profile):
        assert address_profile.estimated_bytes() > 0


class TestNumericProfile:
    @pytest.fixture(scope="class")
    def patients_profile(self, config, embedding_model):
        column = Column("Patients", ["1202", "3572", "2209", "1840"])
        return _profile(column, config, embedding_model)

    def test_numeric_flag(self, patients_profile):
        assert patients_profile.is_numeric

    def test_numeric_values_preserved(self, patients_profile):
        assert patients_profile.numeric_values == [1202.0, 3572.0, 2209.0, 1840.0]

    def test_no_tokens(self, patients_profile):
        assert patients_profile.tokens == set()

    def test_no_embedding(self, patients_profile):
        assert not patients_profile.has_embedding()

    def test_name_and_format_still_available(self, patients_profile):
        assert patients_profile.qgrams
        assert patients_profile.formats


class TestTableProfile:
    def test_profiles_and_subject(self, figure1_engine, figure1_tables):
        table_profile = figure1_engine.indexes.profile_table(figure1_tables["sources"][0])
        assert set(table_profile.attributes) == set(
            figure1_tables["sources"][0].column_names
        )
        assert table_profile.subject_attribute == "Practice Name"
        assert table_profile.subject_profile().ref.column == "Practice Name"
        assert table_profile.arity == 5

    def test_attribute_refs(self, figure1_engine, figure1_tables):
        table_profile = figure1_engine.indexes.profile_table(figure1_tables["sources"][2])
        refs = table_profile.attribute_refs
        assert AttributeRef("local_gps_s3", "GP") in refs

    def test_estimated_bytes(self, figure1_engine, figure1_tables):
        table_profile = figure1_engine.indexes.profile_table(figure1_tables["sources"][0])
        assert table_profile.estimated_bytes() > 0


class TestAttributeMatch:
    def _match(self, distances):
        return AttributeMatch(
            target_attribute="City",
            source=AttributeRef("s", "Town"),
            distances=distances,
        )

    def test_mean_distance(self):
        distances = {evidence: 0.5 for evidence in EvidenceType.all()}
        assert self._match(distances).mean_distance() == pytest.approx(0.5)

    def test_best_evidence(self):
        distances = {evidence: 1.0 for evidence in EvidenceType.all()}
        distances[EvidenceType.VALUE] = 0.1
        assert self._match(distances).best_evidence() is EvidenceType.VALUE
