"""End-to-end equivalence of the vectorized index backend on a generated lake.

``D3LIndexes.lookup`` and ``batch_attribute_distances`` run over the
signature matrices; these tests recompute their outputs through the scalar
reference paths (``ScalarLSHForest`` + one-pair-at-a-time distances) and
assert identical ``(ref, distance)`` rankings, as the tentpole requires.
"""

import numpy as np
import pytest

from repro.core.config import D3LConfig
from repro.core.evidence import EvidenceType
from repro.core.indexes import D3LIndexes
from repro.datagen.synthetic_benchmark import (
    SyntheticBenchmarkConfig,
    generate_synthetic_benchmark,
)
from repro.lsh.reference import ScalarLSHForest, scalar_signature_distance


@pytest.fixture(scope="module")
def indexed():
    corpus = generate_synthetic_benchmark(
        SyntheticBenchmarkConfig(
            num_base_tables=4,
            tables_per_base=4,
            base_rows=60,
            min_rows=20,
            max_rows=50,
            seed=41,
        )
    )
    indexes = D3LIndexes(
        config=D3LConfig(num_hashes=128, num_trees=8, embedding_dimension=24)
    )
    indexes.add_lake(corpus.lake)
    return indexes


def _scalar_lookup(indexes, evidence, profile, k, exclude_table=None):
    """Recompute a lookup through the scalar reference paths."""
    forest = indexes.forest(evidence)
    scalar_forest = ScalarLSHForest(
        num_hashes=forest.num_hashes, num_trees=forest.num_trees, seed=forest.seed
    )
    for key in forest.keys():
        scalar_forest.insert(key, forest.signature(key))
    signature = indexes.signatures_for(profile)[evidence]
    if signature is None:
        return []
    candidates = scalar_forest.query(forest.signature(profile.ref), k)
    results = []
    for ref in candidates:
        if exclude_table is not None and ref.table == exclude_table:
            continue
        stored = indexes.signature(evidence, ref)
        if stored is None:
            continue
        results.append((ref, scalar_signature_distance(signature, stored)))
    results.sort(key=lambda pair: (pair[1], pair[0]))
    return results[:k]


class TestLookupEquivalence:
    @pytest.mark.parametrize("evidence", list(EvidenceType.indexed()))
    def test_rankings_match_scalar_reference(self, indexed, evidence):
        checked = 0
        for ref, profile in list(indexed.profiles.items())[::7]:
            if indexed.signature(evidence, ref) is None:
                continue
            vectorized = indexed.lookup(evidence, profile, k=15)
            reference = _scalar_lookup(indexed, evidence, profile, k=15)
            assert vectorized == reference
            checked += 1
        assert checked > 0

    @pytest.mark.parametrize("evidence", list(EvidenceType.indexed()))
    def test_rankings_match_with_exclusion(self, indexed, evidence):
        for ref, profile in list(indexed.profiles.items())[::11]:
            if indexed.signature(evidence, ref) is None:
                continue
            vectorized = indexed.lookup(evidence, profile, k=10, exclude_table=ref.table)
            reference = _scalar_lookup(
                indexed, evidence, profile, k=10, exclude_table=ref.table
            )
            assert vectorized == reference


class TestBatchDistanceEquivalence:
    @pytest.mark.parametrize("evidence", list(EvidenceType.all()))
    def test_batch_matches_scalar_attribute_distance(self, indexed, evidence):
        refs = sorted(indexed.profiles)
        some_profile = next(iter(indexed.profiles.values()))
        batched = indexed.batch_attribute_distances(evidence, some_profile, refs)
        for position, ref in enumerate(refs):
            scalar = indexed.attribute_distance(evidence, some_profile, ref)
            assert batched[position] == scalar

    def test_batch_with_unindexed_refs_is_maximal(self, indexed):
        from repro.lake.datalake import AttributeRef

        profile = next(iter(indexed.profiles.values()))
        ghost = AttributeRef("no_such_table", "no_such_column")
        distances = indexed.batch_attribute_distances(
            EvidenceType.NAME, profile, [ghost]
        )
        assert distances.tolist() == [1.0]


class TestIncrementalMaintenance:
    def test_remove_table_clears_matrices_and_lookup(self, indexed):
        table_name = indexed.table_names[0]
        victim_refs = [ref for ref in indexed.profiles if ref.table == table_name]
        assert victim_refs
        assert indexed.remove_table(table_name)
        for evidence in EvidenceType.indexed():
            for ref in victim_refs:
                assert indexed.signature(evidence, ref) is None
        remaining_profile = next(iter(indexed.profiles.values()))
        for evidence in EvidenceType.indexed():
            for ref, _ in indexed.lookup(evidence, remaining_profile, k=50):
                assert ref.table != table_name
