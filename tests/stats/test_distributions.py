"""Tests for empirical distributions and the Equation 2 CCDF weights."""

import pytest

from repro.stats.distributions import (
    EmpiricalDistribution,
    ccdf_weight,
    ccdf_weights_many,
)


class TestEmpiricalDistribution:
    def test_cdf_monotone(self):
        distribution = EmpiricalDistribution([0.1, 0.4, 0.4, 0.9])
        assert distribution.cdf(0.0) <= distribution.cdf(0.5) <= distribution.cdf(1.0)

    def test_cdf_values(self):
        distribution = EmpiricalDistribution([0.2, 0.4, 0.6, 0.8])
        assert distribution.cdf(0.4) == pytest.approx(0.5)
        assert distribution.cdf(1.0) == 1.0
        assert distribution.cdf(0.1) == 0.0

    def test_ccdf_complement(self):
        distribution = EmpiricalDistribution([0.2, 0.4, 0.6, 0.8])
        assert distribution.ccdf(0.4) == pytest.approx(0.5)

    def test_empty_distribution(self):
        distribution = EmpiricalDistribution([])
        assert distribution.cdf(0.5) == 0.0
        assert distribution.ccdf(0.5) == 1.0
        assert distribution.mean() == 0.0
        assert len(distribution) == 0

    def test_quantile(self):
        distribution = EmpiricalDistribution([0.0, 0.5, 1.0])
        assert distribution.quantile(0.5) == pytest.approx(0.5)

    def test_quantile_validation(self):
        distribution = EmpiricalDistribution([0.5])
        with pytest.raises(ValueError):
            distribution.quantile(1.5)
        with pytest.raises(ValueError):
            EmpiricalDistribution([]).quantile(0.5)

    def test_values_are_sorted_copy(self):
        distribution = EmpiricalDistribution([0.9, 0.1])
        assert distribution.values == [0.1, 0.9]

    def test_mean(self):
        assert EmpiricalDistribution([0.0, 1.0]).mean() == pytest.approx(0.5)


class TestCcdfWeight:
    def test_smallest_distance_gets_largest_weight(self):
        population = [0.1, 0.5, 0.9]
        assert ccdf_weight(0.1, population) > ccdf_weight(0.9, population)

    def test_largest_distance_gets_zero_weight(self):
        population = [0.1, 0.5, 0.9]
        assert ccdf_weight(0.9, population) == 0.0

    def test_weight_is_fraction_of_larger_values(self):
        population = [0.2, 0.4, 0.6, 0.8]
        assert ccdf_weight(0.4, population) == pytest.approx(0.5)

    def test_empty_population_defaults_to_one(self):
        assert ccdf_weight(0.3, []) == 1.0

    def test_singleton_population_defaults_to_one(self):
        assert ccdf_weight(0.3, [0.3]) == 1.0

    def test_weight_in_unit_interval(self):
        population = [0.1, 0.2, 0.3, 0.7, 0.95]
        for distance in population:
            assert 0.0 <= ccdf_weight(distance, population) <= 1.0


class TestCcdfWeightsMany:
    """The batched Equation 2 weights must be bit-identical to the scalar loop."""

    def _oracle(self, distances, population):
        return [ccdf_weight(distance, population) for distance in distances]

    def test_randomized_batches_identical(self):
        import random

        rng = random.Random(17)
        for _ in range(60):
            population = [round(rng.random(), 3) for _ in range(rng.randrange(0, 40))]
            distances = [round(rng.random(), 3) for _ in range(rng.randrange(0, 25))]
            # Mix members of the population into the queried distances, as the
            # discovery engine does (every observed distance is a member).
            distances += rng.sample(population, k=min(5, len(population)))
            batched = ccdf_weights_many(distances, population)
            assert batched.tolist() == self._oracle(distances, population)

    def test_empty_population_yields_ones(self):
        assert ccdf_weights_many([0.1, 0.9], []).tolist() == [1.0, 1.0]

    def test_singleton_population_yields_ones(self):
        assert ccdf_weights_many([0.1, 0.9], [0.5]).tolist() == [1.0, 1.0]

    def test_empty_distances(self):
        assert ccdf_weights_many([], [0.1, 0.2]).shape == (0,)

    def test_duplicates_and_extremes(self):
        population = [0.2, 0.2, 0.2, 0.8]
        distances = [0.0, 0.2, 0.5, 0.8, 1.0]
        assert ccdf_weights_many(distances, population).tolist() == self._oracle(
            distances, population
        )
