"""Tests for the evidence-type enumeration."""

from repro.core.evidence import EvidenceType


class TestEvidenceType:
    def test_five_types(self):
        assert len(EvidenceType.all()) == 5

    def test_indexed_excludes_distribution(self):
        assert EvidenceType.DISTRIBUTION not in EvidenceType.indexed()
        assert len(EvidenceType.indexed()) == 4

    def test_paper_symbols(self):
        assert EvidenceType.NAME.value == "N"
        assert EvidenceType.VALUE.value == "V"
        assert EvidenceType.FORMAT.value == "F"
        assert EvidenceType.EMBEDDING.value == "E"
        assert EvidenceType.DISTRIBUTION.value == "D"

    def test_is_indexed_flag(self):
        assert EvidenceType.NAME.is_indexed
        assert not EvidenceType.DISTRIBUTION.is_indexed

    def test_string_rendering(self):
        assert str(EvidenceType.VALUE) == "V"

    def test_order_matches_paper(self):
        assert list(EvidenceType.all()) == [
            EvidenceType.NAME,
            EvidenceType.VALUE,
            EvidenceType.FORMAT,
            EvidenceType.EMBEDDING,
            EvidenceType.DISTRIBUTION,
        ]
