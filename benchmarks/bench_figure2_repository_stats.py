"""Figure 2 — repository statistics (arity, cardinality, data-type mix).

The paper characterises its two effectiveness corpora by attribute counts,
row counts and the fraction of numerical attributes; this benchmark reports
the same statistics for the generated stand-ins, plus the average answer size
each corpus exhibits (the paper quotes 260 for Synthetic and 110 for Smaller
Real at their original scale).
"""

from conftest import run_once

from repro.evaluation.experiments import experiment_repository_stats


def test_figure2_repository_statistics(benchmark, record_rows, synthetic_corpus, real_corpus):
    rows = run_once(
        benchmark,
        experiment_repository_stats,
        {"synthetic": synthetic_corpus, "smaller_real": real_corpus},
    )
    record_rows("figure2_repository_stats", rows, "Figure 2: repository statistics")

    by_name = {row["repository"]: row for row in rows}
    assert by_name["synthetic"]["tables"] > 0
    assert by_name["smaller_real"]["tables"] > 0
    # Both corpora mix textual and numerical attributes (Figure 2c).
    for row in rows:
        assert 0.0 < row["numeric_attribute_ratio"] < 1.0
        assert row["average_answer_size"] >= 1.0
