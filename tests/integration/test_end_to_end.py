"""End-to-end integration tests: generate a corpus, index it, discover, join.

These tests exercise the public API the way the examples and benchmarks do,
and assert the qualitative behaviours the paper reports (related tables rank
high, join paths increase coverage, D3L beats the value-equality baselines on
dirty data).
"""

import pytest

from repro.baselines.aurum import Aurum
from repro.baselines.tus import TableUnionSearch
from repro.core.discovery import D3L
from repro.core.evidence import EvidenceType
from repro.datagen.corpus import build_knowledge_base
from repro.evaluation.coverage import target_coverage_at_k, target_coverage_with_joins
from repro.evaluation.metrics import precision_recall_at_k


class TestDiscoveryOnSyntheticCorpus:
    def test_average_precision_above_chance(self, indexed_d3l, small_synthetic_benchmark):
        benchmark = small_synthetic_benchmark
        targets = benchmark.pick_targets(6, seed=1)
        k = 4
        precisions = []
        chance = benchmark.average_answer_size() / max(len(benchmark.lake) - 1, 1)
        for target in targets:
            answer = indexed_d3l.query(target, k=k)
            precision, _ = precision_recall_at_k(
                answer, benchmark.ground_truth, target.name, k
            )
            precisions.append(precision)
        assert sum(precisions) / len(precisions) > 2 * chance

    def test_recall_grows_with_k(self, indexed_d3l, small_synthetic_benchmark):
        benchmark = small_synthetic_benchmark
        target = benchmark.pick_targets(1, seed=3)[0]
        answer = indexed_d3l.query(target, k=12)
        _, recall_small = precision_recall_at_k(answer, benchmark.ground_truth, target.name, 2)
        _, recall_large = precision_recall_at_k(answer, benchmark.ground_truth, target.name, 12)
        assert recall_large >= recall_small

    def test_matches_point_at_same_domain_attributes(
        self, indexed_d3l, small_synthetic_benchmark
    ):
        benchmark = small_synthetic_benchmark
        target = benchmark.pick_targets(1, seed=5)[0]
        answer = indexed_d3l.query(target, k=3)
        correct = 0
        total = 0
        for result in answer.top(3):
            if not benchmark.ground_truth.is_related(target.name, result.table_name):
                continue
            for match in result.matches:
                total += 1
                if benchmark.ground_truth.are_attributes_related(
                    type(match.source)(target.name, match.target_attribute), match.source
                ):
                    correct += 1
        if total:
            assert correct / total > 0.5


class TestJoinPathsIncreaseCoverage:
    def test_coverage_with_joins_never_lower(self, indexed_d3l, small_synthetic_benchmark):
        benchmark = small_synthetic_benchmark
        targets = benchmark.pick_targets(4, seed=9)
        k = 3
        for target in targets:
            augmented = indexed_d3l.query_with_joins(target, k=k)
            joined_per_start = {
                start: augmented.tables_for(start)
                for start in augmented.base.table_names(k)
            }
            plain = target_coverage_at_k(augmented.base, target, k)
            joined = target_coverage_with_joins(augmented.base, joined_per_start, target, k)
            assert joined >= plain - 1e-9


class TestComparativeBehaviour:
    def test_d3l_beats_value_equality_baselines_on_dirty_data(
        self, small_real_benchmark, fast_config
    ):
        # Use the full D3L pipeline the paper evaluates: corpus-trained
        # embeddings, subject-attribute classifier, and Equation 3 weights
        # trained on the benchmark ground truth.
        from repro.evaluation.experiments import build_engine_suite

        benchmark = small_real_benchmark
        suite = build_engine_suite(
            benchmark,
            systems=("d3l", "tus", "aurum"),
            config=fast_config,
            train_weights=True,
            weight_training_targets=8,
        )

        targets = benchmark.pick_targets(6, seed=2)
        k = 4
        scores = {"d3l": 0.0, "tus": 0.0, "aurum": 0.0}
        for target in targets:
            for name, engine in suite.systems().items():
                answer = engine.query(target, k=k)
                _, recall = precision_recall_at_k(
                    answer, benchmark.ground_truth, target.name, k
                )
                scores[name] += recall
        # The headline qualitative result of the paper: on inconsistently
        # represented data D3L finds more of the related tables.
        assert scores["d3l"] >= scores["tus"]
        assert scores["d3l"] >= scores["aurum"]

    def test_single_evidence_weaker_than_aggregate(self, indexed_d3l_real, small_real_benchmark):
        benchmark = small_real_benchmark
        targets = benchmark.pick_targets(5, seed=4)
        k = 4
        aggregate_recall = 0.0
        format_recall = 0.0
        for target in targets:
            full = indexed_d3l_real.query(target, k=k)
            format_only = indexed_d3l_real.query(
                target, k=k, evidence_types=[EvidenceType.FORMAT]
            )
            _, recall_full = precision_recall_at_k(full, benchmark.ground_truth, target.name, k)
            _, recall_format = precision_recall_at_k(
                format_only, benchmark.ground_truth, target.name, k
            )
            aggregate_recall += recall_full
            format_recall += recall_format
        # Format evidence alone is the weakest signal in the paper (Figure 3).
        assert aggregate_recall >= format_recall
