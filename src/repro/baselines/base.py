"""Shared result types for the baseline systems.

The baselines rank tables by similarity scores rather than distances; the
types here mirror the method surface of the D3L
:class:`~repro.core.discovery.QueryResult` (``top``, ``table_names``,
``candidate_tables``, ``result_for``, and per-result ``matches``) so that the
evaluation metrics can consume answers from any system without caring which
produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.lake.datalake import AttributeRef


@dataclass
class Alignment:
    """An alignment between a target attribute and a lake attribute."""

    target_attribute: str
    source: AttributeRef
    score: float


@dataclass
class RankedTable:
    """One ranked table with its attribute alignments."""

    table_name: str
    score: float
    alignments: List[Alignment] = field(default_factory=list)

    @property
    def matches(self) -> List[Alignment]:
        """Alias matching the D3L result surface (``result.matches``)."""
        return self.alignments

    def covered_target_attributes(self) -> Set[str]:
        """Target attributes aligned by this table."""
        return {alignment.target_attribute for alignment in self.alignments}


@dataclass
class RankedAnswer:
    """A full ranked answer (descending score order)."""

    target_name: str
    requested_k: int
    results: List[RankedTable]

    def top(self, k: Optional[int] = None) -> List[RankedTable]:
        """The ``k`` best tables (default: the requested k)."""
        k = self.requested_k if k is None else k
        return self.results[:k]

    def table_names(self, k: Optional[int] = None) -> List[str]:
        """Names of the top-k tables."""
        return [result.table_name for result in self.top(k)]

    def candidate_tables(self) -> Set[str]:
        """Every table that received a score."""
        return {result.table_name for result in self.results}

    def result_for(self, table_name: str) -> Optional[RankedTable]:
        """The entry of a specific table, when present."""
        for result in self.results:
            if result.table_name == table_name:
                return result
        return None
