"""K-fold cross-validation helpers.

The paper reports 10-fold cross-validated accuracy for the subject-attribute
classifier and a held-out test accuracy for the relatedness classifier; these
helpers provide both evaluation protocols.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np


def k_fold_indices(n_samples: int, k: int, seed: int = 0) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Return (train_indices, test_indices) pairs for k-fold cross-validation."""
    if k < 2:
        raise ValueError("k must be at least 2")
    if n_samples < k:
        raise ValueError("cannot split fewer samples than folds")
    generator = np.random.default_rng(seed)
    permutation = generator.permutation(n_samples)
    folds = np.array_split(permutation, k)
    splits = []
    for i in range(k):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        splits.append((train, test))
    return splits


def train_test_split(
    n_samples: int, test_fraction: float = 0.25, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Return (train_indices, test_indices) for a single random split."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    generator = np.random.default_rng(seed)
    permutation = generator.permutation(n_samples)
    cut = max(1, int(round(n_samples * test_fraction)))
    return permutation[cut:], permutation[:cut]


def cross_validate_accuracy(
    model_factory: Callable[[], object],
    features: Sequence[Sequence[float]],
    labels: Sequence[int],
    k: int = 10,
    seed: int = 0,
) -> List[float]:
    """Accuracy of ``model_factory()`` models across k folds.

    The factory must return objects with ``fit(X, y)`` and ``score(X, y)``.
    """
    X = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels, dtype=int)
    accuracies = []
    for train_index, test_index in k_fold_indices(len(y), k, seed=seed):
        model = model_factory()
        model.fit(X[train_index], y[train_index])
        accuracies.append(float(model.score(X[test_index], y[test_index])))
    return accuracies
