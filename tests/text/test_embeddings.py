"""Tests for the word-embedding model substrates."""

import numpy as np
import pytest

from repro.lsh.random_projection import exact_cosine_similarity
from repro.text.embeddings import (
    CooccurrenceEmbedding,
    HashingSubwordEmbedding,
    aggregate_vectors,
)


class TestAggregateVectors:
    def test_empty_input_gives_zero_vector(self):
        result = aggregate_vectors([], dimension=8)
        assert result.shape == (8,)
        assert not np.any(result)

    def test_single_vector_is_normalised(self):
        result = aggregate_vectors([np.array([3.0, 4.0])], dimension=2)
        assert np.linalg.norm(result) == pytest.approx(1.0)

    def test_mean_of_identical_vectors(self):
        vector = np.array([1.0, 0.0])
        result = aggregate_vectors([vector, vector], dimension=2)
        assert result == pytest.approx(vector)


class TestHashingSubwordEmbedding:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HashingSubwordEmbedding(dimension=0)
        with pytest.raises(ValueError):
            HashingSubwordEmbedding(ngram_range=(3, 2))

    def test_dimension(self):
        model = HashingSubwordEmbedding(dimension=32)
        assert model.vector("street").shape == (32,)

    def test_deterministic(self):
        model = HashingSubwordEmbedding(dimension=32, seed=5)
        assert np.array_equal(model.vector("street"), model.vector("street"))

    def test_case_insensitive(self):
        model = HashingSubwordEmbedding(dimension=32)
        assert np.array_equal(model.vector("Street"), model.vector("street"))

    def test_empty_word_gives_zero_vector(self):
        model = HashingSubwordEmbedding(dimension=16)
        assert not np.any(model.vector(""))

    def test_vectors_are_normalised(self):
        model = HashingSubwordEmbedding(dimension=32)
        assert np.linalg.norm(model.vector("postcode")) == pytest.approx(1.0)

    def test_morphologically_similar_words_are_close(self):
        model = HashingSubwordEmbedding(dimension=64)
        similar = exact_cosine_similarity(model.vector("practice"), model.vector("practices"))
        different = exact_cosine_similarity(model.vector("practice"), model.vector("payment"))
        assert similar > different

    def test_short_word_still_embedded(self):
        model = HashingSubwordEmbedding(dimension=16)
        assert np.any(model.vector("gp"))


class TestCooccurrenceEmbedding:
    @pytest.fixture(scope="class")
    def trained(self):
        sentences = []
        # street / road / avenue co-occur with addresses; city names co-occur
        # with each other.
        for i in range(30):
            sentences.append(["address", "street", "road", f"number{i % 5}"])
            sentences.append(["address", "avenue", "road", f"number{i % 7}"])
            sentences.append(["city", "manchester", "salford", "bolton"])
            sentences.append(["payment", "amount", "funding", "spend"])
        return CooccurrenceEmbedding.train(sentences, dimension=16, seed=1)

    def test_vocabulary_contains_frequent_words(self, trained):
        assert "street" in trained
        assert "road" in trained

    def test_rare_words_fall_back_to_subwords(self, trained):
        vector = trained.vector("neverseenword")
        assert vector.shape == (16,)
        assert np.any(vector)

    def test_cooccurring_words_are_closer_than_non_cooccurring(self, trained):
        street_road = exact_cosine_similarity(trained.vector("street"), trained.vector("road"))
        street_payment = exact_cosine_similarity(
            trained.vector("street"), trained.vector("payment")
        )
        assert street_road > street_payment

    def test_vectors_normalised(self, trained):
        assert np.linalg.norm(trained.vector("street")) == pytest.approx(1.0)

    def test_empty_training_corpus(self):
        model = CooccurrenceEmbedding.train([], dimension=8)
        assert model.vector("anything").shape == (8,)

    def test_min_count_filters_rare_words(self):
        model = CooccurrenceEmbedding.train(
            [["common", "common", "rare"]], dimension=8, min_count=2
        )
        assert "rare" not in model
