"""Tests for the Table Union Search baseline."""

import pytest

from repro.baselines.knowledge_base import KnowledgeBase
from repro.baselines.tus import TableUnionSearch
from repro.core.config import D3LConfig
from repro.tables.table import Table


@pytest.fixture(scope="module")
def config():
    return D3LConfig(num_hashes=128, embedding_dimension=16, min_candidates=20)


@pytest.fixture(scope="module")
def knowledge_base():
    kb = KnowledgeBase()
    for city in ["Manchester", "Salford", "Bolton", "London", "Belfast"]:
        kb.add_entity(city, ["city", "place"])
    for practice in ["Blackfriars", "Radclife Care", "Bolton Medical", "The London Clinic"]:
        kb.add_entity(practice, ["organisation"])
    return kb


@pytest.fixture(scope="module")
def indexed_tus(config, knowledge_base, figure1_tables):
    engine = TableUnionSearch(config=config, knowledge_base=knowledge_base)
    engine.index_lake(figure1_tables["lake"])
    return engine


class TestIndexing:
    def test_only_textual_attributes_indexed(self, indexed_tus, figure1_tables):
        textual = sum(
            1
            for table in figure1_tables["sources"]
            for column in table.columns
            if not column.is_numeric
        )
        assert indexed_tus.attribute_count == textual

    def test_estimated_bytes_positive(self, indexed_tus):
        assert indexed_tus.estimated_bytes() > 0


class TestQuery:
    def test_rejects_non_positive_k(self, indexed_tus, figure1_tables):
        with pytest.raises(ValueError):
            indexed_tus.query(figure1_tables["target"], k=0)

    def test_finds_value_overlapping_tables(self, indexed_tus, figure1_tables):
        answer = indexed_tus.query(figure1_tables["target"], k=3)
        assert "gp_funding_s2" in answer.candidate_tables()

    def test_scores_descending_and_bounded(self, indexed_tus, figure1_tables):
        answer = indexed_tus.query(figure1_tables["target"], k=3)
        scores = [result.score for result in answer.results]
        assert scores == sorted(scores, reverse=True)
        assert all(0.0 <= score <= 1.0 for score in scores)

    def test_alignments_reference_target_attributes(self, indexed_tus, figure1_tables):
        answer = indexed_tus.query(figure1_tables["target"], k=3)
        target_columns = set(figure1_tables["target"].column_names)
        for result in answer.results:
            for alignment in result.alignments:
                assert alignment.target_attribute in target_columns

    def test_exclude_self(self, indexed_tus, figure1_tables):
        source = figure1_tables["sources"][0]
        answer = indexed_tus.query(source, k=3, exclude_self=True)
        assert source.name not in answer.candidate_tables()

    def test_numeric_only_target_returns_nothing(self, indexed_tus):
        numeric_target = Table.from_dict("numbers", {"Count": ["1", "2", "3"]})
        answer = indexed_tus.query(numeric_target, k=3)
        assert answer.results == []

    def test_semantic_evidence_contributes(self, config, knowledge_base, figure1_tables):
        # A target with city values that do not literally overlap the lake's
        # city values should still be related through the knowledge base
        # class annotations (semantic unionability).
        engine = TableUnionSearch(config=config, knowledge_base=knowledge_base)
        engine.index_lake(figure1_tables["lake"])
        target = Table.from_dict(
            "semantic_target", {"Town": ["Belfast", "London", "Manchester"]}
        )
        answer = engine.query(target, k=3)
        assert answer.results
