"""Tests for the format-describing regular expression strings."""

from repro.text.regex_format import classify_token, format_set, format_string


class TestClassifyToken:
    def test_capitalised_word(self):
        assert classify_token("Portland") == "C"

    def test_uppercase_run(self):
        assert classify_token("NHS") == "U"

    def test_lowercase_run(self):
        assert classify_token("street") == "L"

    def test_digit_run(self):
        assert classify_token("2024") == "N"

    def test_mixed_alphanumeric(self):
        assert classify_token("M1") == "A"
        assert classify_token("3BE") == "A"

    def test_punctuation(self):
        assert classify_token("--") == "P"
        assert classify_token("/") == "P"

    def test_first_match_wins(self):
        # "A" matches both C (no) and U? "Abc" is C; "ABC" is U not A.
        assert classify_token("Abc") == "C"
        assert classify_token("ABC") == "U"


class TestFormatString:
    def test_address_format(self):
        assert format_string("18 Portland Street") == "NC+"

    def test_postcode_format(self):
        assert format_string("M1 3BE") == "A+"

    def test_time_range_format(self):
        assert format_string("08:00-18:00") == "NPNPNPN"

    def test_empty_value(self):
        assert format_string("") == ""
        assert format_string(None) == ""

    def test_single_word(self):
        assert format_string("Salford") == "C"

    def test_collapse_repeats(self):
        assert format_string("One Two Three") == "C+"

    def test_email_like_format(self):
        assert format_string("smith12@nhs.uk") == "APLPL"

    def test_same_format_different_values(self):
        assert format_string("M3 6AF") == format_string("BL3 6PY")


class TestFormatSet:
    def test_collects_distinct_formats(self):
        formats = format_set(["M1 3BE", "M3 6AF", "18 Portland Street"])
        assert formats == {"A+", "NC+"}

    def test_empty_values_ignored(self):
        assert format_set(["", "   "]) == set()

    def test_uniform_extent_has_single_format(self):
        assert len(format_set(["08:00-18:00", "07:30-20:00"])) <= 2
