"""Static analysis and runtime sanitizers for the repro codebase.

Two layers guard the contracts the performance work rests on:

* ``repro check`` (:mod:`repro.analysis.checker`) — an AST-based static
  checker with five scoped rules (R1 zero-copy discipline, R2 determinism,
  R3 resource lifecycle, R4 wire parity, R5 deprecation hygiene), a
  ``# repro-check: disable=Rn`` suppression pragma, and a pyflakes-or-
  fallback lint pass (:mod:`repro.analysis.lint`).  Tier-1 runs it in
  ``--strict`` mode through ``bench_smoke --quick``.
* ``REPRO_SANITIZE=1`` (:mod:`repro.analysis.sanitizer`) — opt-in runtime
  checks: a write barrier on attached shared views, an exit-time segment
  ledger, and a lock-order tracker on the server's session-pool checkout.

See docs/api.md "Static analysis & sanitizers".
"""

from repro.analysis.registry import RULES, Rule, Violation
from repro.analysis.sanitizer import (
    SanitizerError,
    assert_read_only_views,
    sanitize_enabled,
    tracked_scope,
)

__all__ = [
    "RULES",
    "Rule",
    "Violation",
    "SanitizerError",
    "assert_read_only_views",
    "sanitize_enabled",
    "tracked_scope",
    "run_check",
    "run_lint",
]


def run_check(paths, codes=None):
    """Run the static rules over ``paths`` (lazy import of the checker)."""
    from repro.analysis.checker import run_check as _run_check

    return _run_check(paths, codes)


def run_lint(paths):
    """Run the pyflakes-or-fallback lint over ``paths``."""
    from repro.analysis.lint import run_lint as _run_lint

    return _run_lint(paths)
