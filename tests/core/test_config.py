"""Tests for the D3L configuration."""

import pytest

from repro.core.config import D3LConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = D3LConfig()
        assert config.qgram_size == 4
        assert config.num_hashes == 256
        assert config.lsh_threshold == 0.7

    def test_candidate_pool_grows_with_k(self):
        config = D3LConfig(candidate_multiplier=5, min_candidates=50)
        assert config.candidate_pool_size(1) == 50
        assert config.candidate_pool_size(100) == 500

    def test_candidate_pool_floor(self):
        config = D3LConfig(min_candidates=40)
        assert config.candidate_pool_size(0) == 40


class TestValidation:
    def test_rejects_bad_qgram_size(self):
        with pytest.raises(ValueError):
            D3LConfig(qgram_size=0)

    def test_rejects_bad_num_hashes(self):
        with pytest.raises(ValueError):
            D3LConfig(num_hashes=0)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            D3LConfig(lsh_threshold=0.0)
        with pytest.raises(ValueError):
            D3LConfig(lsh_threshold=1.0)

    def test_rejects_bad_trees(self):
        with pytest.raises(ValueError):
            D3LConfig(num_trees=0)
        with pytest.raises(ValueError):
            D3LConfig(num_hashes=16, num_trees=32)

    def test_rejects_bad_embedding_dimension(self):
        with pytest.raises(ValueError):
            D3LConfig(embedding_dimension=0)

    def test_rejects_bad_candidate_parameters(self):
        with pytest.raises(ValueError):
            D3LConfig(candidate_multiplier=0)
        with pytest.raises(ValueError):
            D3LConfig(min_candidates=0)

    def test_rejects_bad_overlap_threshold(self):
        with pytest.raises(ValueError):
            D3LConfig(overlap_threshold=0.0)

    def test_rejects_bad_join_path_length(self):
        with pytest.raises(ValueError):
            D3LConfig(max_join_path_length=0)

    def test_rejects_negative_hash_counts(self):
        with pytest.raises(ValueError, match="^num_hashes must be positive$"):
            D3LConfig(num_hashes=-256)
        with pytest.raises(ValueError, match="^qgram_size must be positive$"):
            D3LConfig(qgram_size=-4)

    def test_rejects_out_of_range_thresholds(self):
        with pytest.raises(ValueError, match=r"^lsh_threshold must be in \(0, 1\)$"):
            D3LConfig(lsh_threshold=-0.3)
        with pytest.raises(ValueError, match=r"^lsh_threshold must be in \(0, 1\)$"):
            D3LConfig(lsh_threshold=1.7)
        with pytest.raises(ValueError, match=r"^overlap_threshold must be in \(0, 1\]$"):
            D3LConfig(overlap_threshold=1.2)


class TestSharedValidationHelpers:
    """The config helpers are the validation surface QueryRequest reuses."""

    def test_require_positive_message(self):
        from repro.core.config import require_positive

        with pytest.raises(ValueError, match="^widgets must be positive$"):
            require_positive("widgets", 0)
        require_positive("widgets", 1)  # no raise

    def test_query_request_shares_the_helper(self):
        from repro.core.api import QueryRequest
        from repro.tables.table import Table

        target = Table.from_dict("t", {"a": ["x", "y"]})
        with pytest.raises(ValueError, match="^k must be positive$"):
            QueryRequest(target=target, k=0)
        with pytest.raises(ValueError, match="^workers must be positive$"):
            QueryRequest(target=target, workers=-2)


class TestJoinConfigValidation:
    def test_join_candidate_pool_must_be_positive(self):
        with pytest.raises(ValueError, match="join_candidate_pool must be positive"):
            D3LConfig(join_candidate_pool=0)
        with pytest.raises(ValueError, match="join_candidate_pool must be positive"):
            D3LConfig(join_candidate_pool=-5)

    def test_join_prefilter_margin_range(self):
        with pytest.raises(ValueError, match="join_prefilter_margin"):
            D3LConfig(join_prefilter_margin=-0.1)
        with pytest.raises(ValueError, match="join_prefilter_margin"):
            D3LConfig(join_prefilter_margin=1.5)
        assert D3LConfig(join_prefilter_margin=0.0).join_prefilter_margin == 0.0
        assert D3LConfig(join_prefilter_margin=1.0).join_prefilter_margin == 1.0

    def test_default_pool_is_a_fixed_cap(self):
        config = D3LConfig()
        assert config.join_candidate_pool == 128
