"""The ``repro serve`` discovery service: a long-lived multi-worker HTTP tier.

The wire protocol (:mod:`repro.core.api`, ``d3l.query_response/v1``) and the
caching :class:`~repro.core.api.DiscoverySession` existed before this module,
but nothing served them.  :class:`DiscoveryServer` is that missing tier — a
stdlib-only HTTP server (no new dependencies) over one loaded engine:

* ``POST /query`` accepts a ``d3l.query_request/v1`` JSON body (target table
  inline, plus ``k``/``evidence``/``explain``/``joins``/``workers``/…),
  submits it through a :class:`~repro.core.api.DiscoverySession`, and returns
  ``QueryResponse.truncated().to_dict()`` — the exact payload the CLI's
  ``--json`` mode emits, bit-identical to an in-process session;
* ``GET /index-status`` reports the lake size, per-index byte footprint,
  ``D3LIndexes.version``, the snapshot backing workers would attach, and
  aggregated session-cache statistics;
* ``GET /healthz`` answers ``{"status": "ok"}`` for load balancers.

Concurrency model — two serving backends (:data:`SERVING_BACKENDS`), chosen
at construction and on the CLI via ``repro serve --backend``:

``thread``
    A :class:`~http.server.ThreadingHTTPServer` accepts connections on
    demand, and request handlers check a
    :class:`~repro.core.api.DiscoverySession` out of a fixed pool of
    ``workers`` sessions, all sharing the one engine.  Simple and
    zero-copy, but CPU-bound query work serialises on the GIL.

``process``
    The same HTTP front end, but each of the ``workers`` slots is a
    *worker process* attached read-only to one
    :class:`~repro.core.shared.SharedIndexSnapshot` of the engine's
    indexes.  Requests travel over a per-worker duplex pipe; each worker
    runs its own caching session (sessions and caches live worker-side),
    so queries execute with true parallelism — the GIL ceiling ROADMAP
    open item 1 names is lifted.  Lake mutations propagate exactly as
    pooled fan-out payloads do: the parent computes one net delta from the
    index journal (:func:`~repro.core.shared.build_index_delta`) against
    the fixed snapshot version and ships it with each request until the
    snapshot is re-exported; the apply is idempotent, so workers converge
    from any intermediate state.  Responses remain byte-identical to an
    in-process session (the worker runs the very same
    ``session.submit(request).truncated().to_dict()``).

Lifecycle: :meth:`DiscoveryServer.close` (idempotent, also the
``__exit__``) stops accepting, drains handler threads, then closes every
session or worker process — which reaps the engine's worker pools and
unlinks its ``/dev/shm`` segments — so a served engine shuts down
leak-free under either backend.  :meth:`run_until_interrupt` wires
SIGINT/SIGTERM to that teardown for the CLI's foreground mode.
"""

from __future__ import annotations

import builtins
import json
import multiprocessing
import queue
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple
from urllib.parse import urlsplit

from repro.analysis.sanitizer import tracked_scope
from repro.core.api import (
    DiscoverySession,
    QueryRequest,
    query_request_from_wire,
)
from repro.core.config import require_positive
from repro.core.discovery import D3L
from repro.core.execution import (
    _DELTA_MAX_TABLES,
    _snapshot_descriptor,
    register_worker_owner,
)

#: Server identifier reported by ``/healthz`` and the ``Server`` header.
SERVER_NAME = "repro-serve/1"

#: The serving concurrency models ``DiscoveryServer(backend=...)`` accepts.
SERVING_BACKENDS = ("thread", "process")


def index_status(engine: D3L, sessions: List[DiscoverySession]) -> Dict[str, object]:
    """The ``GET /index-status`` payload for one engine + its session pool."""
    from repro.core.shared import live_segment_locators

    indexes = engine.indexes
    cache = {"hits": 0, "misses": 0, "size": 0, "capacity": 0}
    for session in sessions:
        info = session.cache_info()
        for key in cache:
            cache[key] += info[key]
    return {
        "status": "ok",
        "server": SERVER_NAME,
        "lake": {
            "tables": len(indexes.table_profiles),
            "attributes": len(indexes.profiles),
        },
        "index_bytes": indexes.index_bytes(),
        "version": indexes.version,
        "snapshot": {
            "backing": "shm" if Path("/dev/shm").is_dir() else "file",
            "live_segments": live_segment_locators(),
        },
        "workers": len(sessions),
        "cache": cache,
    }


# --------------------------------------------------------------------------- #
# process-backend worker machinery
# --------------------------------------------------------------------------- #


def _serving_worker_main(conn, descriptor, weights, cache_size: int) -> None:
    """A serving worker process: one caching session over the attached index.

    The worker attaches the shipped snapshot descriptor read-only, mirrors
    the parent engine around it (same config, embedding model, weights, and
    subject classifier — all carried by the snapshot or shipped once), and
    answers ``("query", request, delta)`` messages with the exact
    ``QueryResponse.truncated().to_dict()`` payload an in-process session
    produces.  A non-None ``delta`` is applied before the query (idempotent;
    skipped when this worker already converged), with the parent's
    per-table cache eviction (:meth:`~repro.core.discovery.D3L._note_mutation`)
    replayed for each delta op so worker-side join-overlap caches never
    serve stale pairs.
    """
    from repro.core.shared import SharedIndexSnapshot, apply_index_delta

    # A foreground Ctrl-C delivers SIGINT to the whole process group; shutdown
    # is the parent's job (a "stop" message or pipe EOF), so ignore it here
    # rather than dying mid-recv with a KeyboardInterrupt traceback.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    attached = SharedIndexSnapshot.attach(descriptor)
    engine = D3L(
        config=attached.config,
        embedding_model=attached.embedding_model,
        weights=weights,
        subject_classifier=attached.subject_classifier,
    )
    engine.indexes = attached
    session = DiscoverySession(engine, profile_cache_size=cache_size)
    try:
        while True:
            try:
                command, request, delta = conn.recv()
            except (EOFError, OSError):
                break
            if command == "stop":
                break
            try:
                if delta is not None and attached.version < delta[0]:
                    apply_index_delta(attached, delta)
                    for op in delta[1]:
                        engine._note_mutation(op[1])
                if command == "status":
                    conn.send(("ok", session.cache_info()))
                else:
                    response = session.submit(request)
                    conn.send(("ok", response.truncated().to_dict()))
            except Exception as error:  # noqa: BLE001 - shipped to the parent
                conn.send(("error", type(error).__name__, str(error)))
    finally:
        session.close()
        conn.close()


def _rebuild_error(type_name: str, message: str) -> Exception:
    """Reconstruct a worker-side exception for the parent's 500 formatting.

    Builtin exception types round-trip exactly (the HTTP handler formats
    ``{type name}: {message}`` either way); anything else degrades to a
    ``RuntimeError`` carrying both.
    """
    exc_type = getattr(builtins, type_name, None)
    if isinstance(exc_type, type) and issubclass(exc_type, Exception):
        return exc_type(message)
    return RuntimeError(f"{type_name}: {message}")


class _ServingWorker:
    """One serving worker process plus the parent end of its request pipe.

    A worker answers exactly one request at a time (the server's idle-queue
    checkout discipline guarantees exclusive pipe access).  A broken pipe
    marks the worker :attr:`dead`; the server swaps in a replacement on
    check-in.
    """

    def __init__(self, descriptor, weights, cache_size: int) -> None:
        parent_end, child_end = multiprocessing.Pipe()
        self._conn = parent_end
        # Not a daemon: requests carrying ``workers > 1`` fan out *inside*
        # the worker through the engine's own process pools, and daemonic
        # processes may not have children.  Orphaning is still bounded — a
        # worker blocks in ``recv()`` and exits on EOF when the parent end
        # of the pipe goes away, engine teardown included.
        self._process = multiprocessing.Process(
            target=_serving_worker_main,
            args=(child_end, descriptor, weights, cache_size),
            name="repro-serve-worker",
        )
        self._process.start()
        # The child holds its own copy; closing the parent's reference makes
        # worker death observable as EOF on the parent end.
        child_end.close()
        self.dead = False

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid

    @property
    def alive(self) -> bool:
        return not self.dead and self._process.is_alive()

    def _roundtrip(self, message):
        try:
            self._conn.send(message)
            reply = self._conn.recv()
        except (EOFError, BrokenPipeError, OSError) as error:
            self.dead = True
            raise RuntimeError("serving worker process died") from error
        if reply[0] == "ok":
            return reply[1]
        raise _rebuild_error(reply[1], reply[2])

    def query(self, request: QueryRequest, delta) -> Dict[str, object]:
        """Answer one request worker-side, applying ``delta`` first if any."""
        return self._roundtrip(("query", request, delta))

    def cache_info(self, delta=None) -> Dict[str, int]:
        """The worker session's hit/miss/occupancy counters."""
        return self._roundtrip(("status", None, delta))

    def close(self) -> None:
        """Stop the worker and join it (idempotent; terminate as backstop)."""
        if self._process.is_alive() and not self.dead:
            try:
                self._conn.send(("stop", None, None))
            except (BrokenPipeError, OSError):
                pass
        self._conn.close()
        self._process.join(timeout=5)
        if self._process.is_alive():  # pragma: no cover - unresponsive worker
            self._process.terminate()
            self._process.join()
        self.dead = True


class _DiscoveryRequestHandler(BaseHTTPRequestHandler):
    """One HTTP exchange against the owning :class:`DiscoveryServer`.

    The handler is intentionally thin: route, borrow a session or worker,
    delegate.  Validation errors surface as 400s carrying the same messages
    the :class:`~repro.core.api.QueryRequest` constructor raises in-process
    (the wire is parsed in the parent under either backend).
    """

    protocol_version = "HTTP/1.1"
    server_version = SERVER_NAME
    # Idle keep-alive connections drop after this many seconds, bounding how
    # long a forgotten client can stall the shutdown join.
    timeout = 5

    # The ThreadingHTTPServer subclass below carries the DiscoveryServer in
    # this attribute; annotate for readability only.
    server: "_ServingHTTPServer"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.owner.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path
        if path == "/healthz":
            self._respond(200, {"status": "ok", "server": SERVER_NAME})
        elif path == "/index-status":
            self._respond(200, self.server.owner.status_payload())
        else:
            self._respond(404, {"error": f"unknown path {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path
        if path != "/query":
            self._respond(404, {"error": f"unknown path {path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length <= 0:
            self._respond(400, {"error": "request body required"})
            return
        body = self.rfile.read(length)
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            self._respond(400, {"error": f"invalid JSON body: {error}"})
            return
        try:
            request = query_request_from_wire(payload)
        except (ValueError, KeyError, TypeError) as error:
            self._respond(400, {"error": str(error)})
            return
        try:
            response = self.server.owner.submit(request)
        except Exception as error:  # noqa: BLE001 - one request must not kill the server
            self._respond(500, {"error": f"{type(error).__name__}: {error}"})
            return
        self._respond(200, response)

    # ------------------------------------------------------------------ #
    # response plumbing
    # ------------------------------------------------------------------ #
    def _respond(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response; nothing to clean up


class _ServingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that knows its owning :class:`DiscoveryServer`."""

    daemon_threads = True
    # Handler threads are joined on shutdown so `close()` really is the last
    # word — no request can outlive the sessions it borrows from.
    block_on_close = True

    def __init__(self, address: Tuple[str, int], owner: "DiscoveryServer") -> None:
        super().__init__(address, _DiscoveryRequestHandler)
        self.owner = owner


class DiscoveryServer:
    """A long-lived discovery service over one indexed engine.

    Programmatic usage (tests, benchmarks)::

        with DiscoveryServer(engine, port=0, workers=4) as server:
            server.start()
            ... HTTP traffic against server.host:server.port ...
        # closed: sessions drained, pools reaped, segments unlinked

    Foreground usage (the CLI)::

        server = DiscoveryServer(engine, host=host, port=port, workers=n)
        server.run_until_interrupt()      # SIGINT/SIGTERM → clean teardown

    ``backend`` selects the concurrency model (:data:`SERVING_BACKENDS`):
    ``thread`` checks sessions out of an in-process pool, ``process`` runs
    ``workers`` snapshot-attached worker processes with worker-side
    sessions.  Served payloads are identical under both.
    """

    def __init__(
        self,
        engine: D3L,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        profile_cache_size: int = 64,
        verbose: bool = False,
        backend: str = "thread",
    ) -> None:
        require_positive("workers", workers)
        require_positive("profile_cache_size", profile_cache_size)
        if backend not in SERVING_BACKENDS:
            raise ValueError(
                f"unknown serving backend {backend!r}; "
                f"valid backends: {', '.join(SERVING_BACKENDS)}"
            )
        self.engine = engine
        self.verbose = verbose
        self.backend = backend
        #: The serving concurrency width (sessions or worker processes).
        self.worker_count = workers
        self._profile_cache_size = profile_cache_size
        #: One caching session per serving worker under the thread backend
        #: (empty under the process backend — sessions live worker-side).
        self.sessions: List[DiscoverySession] = []
        self._idle: "queue.Queue" = queue.Queue()
        self._workers: List[_ServingWorker] = []
        # Guards the worker-list membership during crash replacement.
        self._workers_lock = threading.Lock()
        # Serialises delta computation, snapshot re-export, and the
        # drain-all-workers paths (respawn, cache aggregation) so no two of
        # them compete for the same idle workers.
        self._state_lock = threading.Lock()
        self._snapshot = None
        self._descriptor = None
        # Version the worker snapshot was exported at — the fixed base every
        # shipped delta is computed against (workers may sit anywhere between
        # it and the live version) — plus the cached pending delta.
        self._base_version: Optional[int] = None
        self._delta = None
        self._delta_version: Optional[int] = None
        if backend == "process":
            self._descriptor, self._snapshot = _snapshot_descriptor(engine.indexes)
            self._base_version = engine.indexes.version
            self._workers = [self._spawn_worker() for _ in range(workers)]
            for worker in self._workers:
                self._idle.put(worker)
            register_worker_owner(self)
        else:
            self.sessions = [
                DiscoverySession(engine, profile_cache_size=profile_cache_size)
                for _ in range(workers)
            ]
            for session in self.sessions:
                self._idle.put(session)
        self._httpd = _ServingHTTPServer((host, port), self)
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # addressing
    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` — bind to a free one)."""
        return self._httpd.server_address[1]

    # ------------------------------------------------------------------ #
    # process-backend plumbing
    # ------------------------------------------------------------------ #
    def _spawn_worker(self) -> _ServingWorker:
        """One fresh worker over the current snapshot (ownership → caller)."""
        return _ServingWorker(
            self._descriptor, self.engine.weights, self._profile_cache_size
        )

    def worker_pids(self) -> Set[int]:
        """PIDs of live serving worker processes (leak-audit accounting)."""
        with self._workers_lock:
            return {
                worker.pid
                for worker in self._workers
                if worker.pid is not None and worker._process.is_alive()
            }

    def _pending_delta(self):
        """The delta bringing snapshot-based workers up to the live indexes.

        None when workers are current.  Computed once per index version
        against the fixed snapshot base (so it is valid for a worker at any
        intermediate state) and cached until the next mutation.  When the
        journal cannot reconstruct the mutation set (or too many tables
        moved), the worker fleet is respawned over a fresh snapshot instead
        — the same self-heal the fan-out pools perform.
        """
        from repro.core.shared import build_index_delta

        with self._state_lock, self.engine.index_lock.read():
            version = self.engine.indexes.version
            if version == self._base_version:
                return None
            if self._delta_version != version:
                delta = build_index_delta(
                    self.engine.indexes,
                    self._base_version,
                    max_tables=_DELTA_MAX_TABLES,
                )
                if delta is None:
                    self._respawn_workers_locked()
                    return None
                self._delta = delta
                self._delta_version = version
            return self._delta

    def _respawn_workers_locked(self) -> None:
        """Replace every worker with one over a fresh snapshot (holding
        ``_state_lock``).  Draining the idle queue waits for in-flight
        requests to check their workers back in."""
        drained = [self._idle.get() for _ in range(self.worker_count)]
        for worker in drained:
            worker.close()
        if self._snapshot is not None:
            self._snapshot.close()
        self._descriptor, self._snapshot = _snapshot_descriptor(self.engine.indexes)
        self._base_version = self.engine.indexes.version
        self._delta = None
        self._delta_version = None
        with self._workers_lock:
            self._workers = [self._spawn_worker() for _ in range(self.worker_count)]
            fresh = list(self._workers)
        for worker in fresh:
            self._idle.put(worker)

    def _replace_dead_worker(self, dead: _ServingWorker) -> _ServingWorker:
        """Swap a crashed worker for a fresh one over the current snapshot."""
        dead.close()
        with self._workers_lock:
            if self._closed:
                return dead
            try:
                replacement = self._spawn_worker()
            except Exception:  # pragma: no cover - spawn raced the teardown
                return dead
            if dead in self._workers:
                self._workers.remove(dead)
            self._workers.append(replacement)
            return replacement

    def _worker_cache_stats(self) -> Dict[str, int]:
        """Aggregated worker-side session-cache counters (process backend).

        Checks out the whole fleet (briefly blocking new queries behind the
        state lock) so every worker is counted exactly once.
        """
        cache = {"hits": 0, "misses": 0, "size": 0, "capacity": 0}
        with self._state_lock, tracked_scope("discovery-server.session-pool"):
            workers = [self._idle.get() for _ in range(self.worker_count)]
            try:
                for worker in workers:
                    try:
                        info = worker.cache_info()
                    except Exception:  # noqa: BLE001 - dead worker counts as empty
                        continue
                    for key in cache:
                        cache[key] += info[key]
            finally:
                for worker in workers:
                    self._idle.put(worker)
        return cache

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def status_payload(self) -> Dict[str, object]:
        """The ``GET /index-status`` payload for this server's backend."""
        payload = index_status(self.engine, self.sessions)
        payload["backend"] = self.backend
        if self.backend == "process":
            payload["workers"] = self.worker_count
            payload["cache"] = self._worker_cache_stats()
        return payload

    def submit(self, request: QueryRequest) -> Dict[str, object]:
        """Answer one request through an idle session or worker process
        (blocks until one frees).

        Returns the wire payload — ``QueryResponse.truncated().to_dict()`` —
        so HTTP handlers and in-process callers serve byte-identical answers
        under either backend.
        """
        if self.backend == "process":
            delta = self._pending_delta()
            with tracked_scope("discovery-server.session-pool"):
                worker = self._idle.get()
                try:
                    return worker.query(request, delta)
                finally:
                    if worker.dead:
                        worker = self._replace_dead_worker(worker)
                    self._idle.put(worker)
        # Under REPRO_SANITIZE=1 the tracker flags a handler that tries to
        # check out a second session while holding one (a deadlock once the
        # bounded pool is exhausted) and any inverted nesting against the
        # server state lock; otherwise this is a no-op context.
        with tracked_scope("discovery-server.session-pool"):
            session = self._idle.get()
            try:
                response = session.submit(request)
            finally:
                self._idle.put(session)
        return response.truncated().to_dict()

    def start(self) -> "DiscoveryServer":
        """Serve in a background thread (idempotent); returns ``self``."""
        with tracked_scope("discovery-server.state-lock"), self._lock:
            if self._closed:
                raise RuntimeError("server is closed")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._httpd.serve_forever,
                    name=f"repro-serve:{self.port}",
                    daemon=True,
                )
                self._thread.start()
        return self

    def run_until_interrupt(self) -> None:
        """Serve in the foreground until SIGINT/SIGTERM, then tear down.

        Must run on the main thread (signal handlers).  The previous
        handlers are restored before :meth:`close` runs, so a second Ctrl-C
        during a slow teardown still interrupts the process.
        """
        stop = threading.Event()

        def _request_shutdown(signum, frame) -> None:  # noqa: ARG001
            stop.set()

        previous = {
            sig: signal.signal(sig, _request_shutdown)
            for sig in (signal.SIGINT, signal.SIGTERM)
        }
        self.start()
        try:
            # Polled wait rather than a bare wait(): a signal delivered to a
            # non-main thread only sets CPython's pending-handler flag, which
            # an indefinitely blocked main thread would never re-check.
            while not stop.wait(0.5):
                pass
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            self.close()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop serving and release every resource (idempotent).

        Order matters: stop accepting and join handler threads first (no
        request may hold a session or worker past this point), then close
        the sessions or worker processes — which reaps the engine's fan-out
        pools and unlinks its shared-memory segments.
        """
        with tracked_scope("discovery-server.state-lock"), self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
            self._thread = None
        if thread is not None:
            self._httpd.shutdown()
            thread.join()
        self._httpd.server_close()
        for session in self.sessions:
            session.close()
        with self._workers_lock:
            workers = list(self._workers)
            self._workers = []
        for worker in workers:
            worker.close()
        if self._snapshot is not None:
            self._snapshot.close()
            self._snapshot = None
        if self.backend == "process":
            # Thread-backend sessions reap the engine through session.close();
            # mirror that here so a served engine never strands fan-out pools.
            self.engine.close()

    def __enter__(self) -> "DiscoveryServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
