"""Quickstart: index a small data lake and find the datasets related to a target.

This reproduces the paper's introductory scenario (Figure 1): a target table
about GP practices, a lake containing a practices directory, a funding table
and an opening-hours table, and a discovery engine that ranks the lake tables
by relatedness and finds the join path that covers the target's ``Hours``
attribute.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import warnings

from repro import D3L, D3LConfig, DataLake, DiscoverySession, QueryRequest, Table


def build_lake() -> DataLake:
    """The three source tables of the paper's Figure 1 (slightly extended)."""
    gp_practices = Table.from_dict(
        "gp_practices",
        {
            "Practice Name": ["Dr E Cullen", "Blackfriars", "Radclife Care", "Bolton Medical"],
            "Address": ["51 Botanic Av", "1a Chapel St", "9 Mirabel St", "21 Rupert St"],
            "City": ["Belfast", "Salford", "Manchester", "Bolton"],
            "Postcode": ["BT7 1JL", "M3 6AF", "M3 1NN", "BL3 6PY"],
            "Patients": ["1202", "3572", "2209", "1840"],
        },
    )
    gp_funding = Table.from_dict(
        "gp_funding",
        {
            "Practice": ["The London Clinic", "Blackfriars", "Radclife Care", "Bolton Medical"],
            "City": ["London", "Salford", "Manchester", "Bolton"],
            "Postcode": ["W1G 6BW", "M3 6AF", "M26 2SP", "BL3 6PY"],
            "Payment": ["73648", "15530", "20981", "17764"],
        },
    )
    local_gps = Table.from_dict(
        "local_gps",
        {
            "GP": ["Blackfriars", "Radclife Care", "Bolton Medical"],
            "Location": ["Salford", "-", "Bolton"],
            "Opening hours": ["08:00-18:00", "07:00-20:00", "08:00-16:00"],
        },
    )
    return DataLake("gp_lake", [gp_practices, gp_funding, local_gps])


def build_target() -> Table:
    """The target table T the analyst wants to populate."""
    return Table.from_dict(
        "gps_target",
        {
            "Practice": ["Radclife", "Bolton Medical"],
            "Street": ["69 Church St", "21 Rupert St"],
            "City": ["Manchester", "Bolton"],
            "Postcode": ["M26 2SP", "BL3 6PY"],
            "Hours": ["07:00-20:00", "08:00-16:00"],
        },
    )


def main() -> None:
    lake = build_lake()
    target = build_target()

    engine = D3L(config=D3LConfig())
    engine.index_lake(lake)

    print(f"Lake: {len(lake)} tables, {lake.attribute_count} attributes")
    print(f"Target: {target.name} with attributes {target.column_names}\n")

    # The serving API: submit an explicit request through a session (which
    # caches the target's profile across repeated queries) and read the
    # machine-readable response, including the per-evidence decomposition.
    session = DiscoverySession(engine)
    answer = session.submit(QueryRequest(target=target, k=2, explain=True))
    print("Top related datasets (ascending combined distance):")
    for rank, result in enumerate(answer.top(), start=1):
        evidence = ", ".join(
            f"D{evidence.value}={distance:.2f}"
            for evidence, distance in result.evidence_distances.items()
        )
        print(f"  {rank}. {result.table_name:<14s} distance={result.distance:.3f}  [{evidence}]")
        for match in result.matches:
            print(
                f"       {match.target_attribute:<10s} <- {match.source}"
                f"  (best evidence: {match.best_evidence().value})"
            )

    # The deprecated shim produces the identical ranking (it funnels through
    # the same planner); keep the assertion so the example doubles as a check.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = engine.query(target, k=2)
    assert [(entry.table_name, entry.distance) for entry in legacy.results] == [
        (entry.table_name, entry.distance) for entry in answer.results
    ], "deprecated D3L.query diverged from the DiscoverySession answer"

    # joins=True extends the same request with SA-join paths (Algorithm 3);
    # the join_paths block also travels on the JSON wire format.
    joined = session.submit(QueryRequest(target=target, k=2, joins=True))
    block = joined.join_paths
    print("\nJoin paths from the top-k into the rest of the lake:")
    if not block.paths:
        print("  (none found)")
    for path in block.paths:
        hops = " -> ".join(path.tables)
        via = ", ".join(f"{edge.left.column}~{edge.right.column}" for edge in path.edges)
        print(f"  {hops}   joining on: {via}")
    if block.truncated:
        print("  (enumeration capped by max_join_paths)")

    covered = set()
    for result in answer.top():
        covered |= result.covered_target_attributes()
    for table_name in block.joined_tables:
        entry = answer.result_for(table_name)
        if entry is not None:
            covered |= entry.covered_target_attributes()
    print(f"\nTarget attributes covered (top-k + join paths): {sorted(covered)}")


if __name__ == "__main__":
    main()
