"""Runtime sanitizer (``REPRO_SANITIZE=1``): barrier, ledger, lock tracker.

The write barrier and lock tracker are unit-tested in-process (the env
switch is monkeypatched); the segment ledger must flip the *process* exit
status, so it is exercised through real subprocesses.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import (
    LockTracker,
    SanitizerError,
    assert_read_only_views,
    sanitize_enabled,
    tracked_scope,
)
from repro.core.config import D3LConfig
from repro.core.discovery import D3L
from repro.core.evidence import EvidenceType
from repro.core.shared import SharedIndexSnapshot
from repro.datagen.synthetic_benchmark import (
    SyntheticBenchmarkConfig,
    generate_synthetic_benchmark,
)
from repro.lake.datalake import DataLake

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture()
def sanitize_on(monkeypatch):
    monkeypatch.setenv(sanitizer.ENV_VAR, "1")


class TestSwitch:
    @pytest.mark.parametrize("value", ["", "0", "false", "no", "FALSE", " 0 "])
    def test_falsey_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(sanitizer.ENV_VAR, value)
        assert sanitize_enabled() is False

    def test_unset_disables(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
        assert sanitize_enabled() is False

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes"])
    def test_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(sanitizer.ENV_VAR, value)
        assert sanitize_enabled() is True


class TestWriteBarrier:
    def test_writable_array_raises(self, sanitize_on):
        with pytest.raises(SanitizerError, match="write-barrier"):
            assert_read_only_views("shm:test", {"matrix": np.zeros(4)})

    def test_frozen_array_passes(self, sanitize_on):
        array = np.zeros(4)
        array.flags.writeable = False
        assert_read_only_views("shm:test", {"matrix": array})

    def test_non_arrays_are_ignored(self, sanitize_on):
        assert_read_only_views("shm:test", {"meta": {"refs": [1, 2]}})

    def test_disabled_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
        assert_read_only_views("shm:test", {"matrix": np.zeros(4)})


class TestAttachedViews:
    @pytest.fixture(scope="class")
    def engine(self):
        corpus = generate_synthetic_benchmark(
            SyntheticBenchmarkConfig(
                num_base_tables=2,
                tables_per_base=2,
                base_rows=30,
                min_rows=12,
                max_rows=20,
                seed=77,
            )
        )
        engine = D3L(
            config=D3LConfig(
                num_hashes=32, num_trees=4, min_candidates=8, embedding_dimension=8
            )
        )
        engine.index_lake(DataLake("sanitized", list(corpus.lake.tables)))
        yield engine
        engine.close()

    def test_mutating_an_attached_view_raises(self, sanitize_on, engine):
        snapshot = SharedIndexSnapshot.create(engine.indexes)
        try:
            attached = SharedIndexSnapshot.attach(snapshot.descriptor)
            evidence = EvidenceType.indexed()[0]
            matrix = attached._matrices[evidence]._matrix
            assert matrix.flags.writeable is False
            with pytest.raises((ValueError, SanitizerError)):
                matrix[0, 0] = 1
        finally:
            snapshot.close()

    def test_barrier_rejects_a_writable_manifest(self, sanitize_on):
        # Simulates the regression the attach-path barrier exists for: a
        # view that escaped the freeze loop.
        with pytest.raises(SanitizerError, match="write-barrier"):
            assert_read_only_views("shm:regression", {"lsh/matrix": np.ones((2, 2))})


def _run_ledger_script(tmp_path, body, enabled=True):
    script = tmp_path / "scenario.py"
    script.write_text(body)
    env = {
        "PYTHONPATH": str(REPO_ROOT / "src"),
        "PATH": "/usr/bin:/bin",
        sanitizer.ENV_VAR: "1" if enabled else "0",
    }
    return subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )


class TestSegmentLedger:
    def test_leaked_segment_fails_the_process(self, tmp_path):
        result = _run_ledger_script(
            tmp_path,
            "from repro.core import shared\n"
            "shared._LIVE_SEGMENTS['ghost-segment'] = 'shm'\n"
            "from repro.analysis import sanitizer\n"
            "sanitizer.arm_segment_ledger()\n",
        )
        assert result.returncode == 1
        assert "segment-ledger" in result.stderr
        assert "ghost-segment" in result.stderr

    def test_leaked_file_backing_is_reaped(self, tmp_path):
        backing = tmp_path / "leaked.bin"
        backing.write_bytes(b"x" * 16)
        result = _run_ledger_script(
            tmp_path,
            "from repro.core import shared\n"
            f"shared._LIVE_SEGMENTS[{str(backing)!r}] = 'file'\n"
            "from repro.analysis import sanitizer\n"
            "sanitizer.arm_segment_ledger()\n",
        )
        assert result.returncode == 1
        assert not backing.exists()

    def test_closed_segments_exit_clean(self, tmp_path):
        result = _run_ledger_script(
            tmp_path,
            "from repro.core import shared\n"
            "shared._LIVE_SEGMENTS['transient'] = 'shm'\n"
            "from repro.analysis import sanitizer\n"
            "sanitizer.arm_segment_ledger()\n"
            "del shared._LIVE_SEGMENTS['transient']\n",
        )
        assert result.returncode == 0
        assert "segment-ledger" not in result.stderr

    def test_ledger_never_arms_when_disabled(self, tmp_path):
        result = _run_ledger_script(
            tmp_path,
            "from repro.core import shared\n"
            "shared._LIVE_SEGMENTS['ghost-segment'] = 'shm'\n"
            "from repro.analysis import sanitizer\n"
            "sanitizer.arm_segment_ledger()\n",
            enabled=False,
        )
        assert result.returncode == 0
        assert result.stderr == ""


class TestLockTracker:
    def test_nested_distinct_scopes_are_fine(self):
        tracker = LockTracker()
        with tracker.holding("outer"):
            with tracker.holding("inner"):
                assert tracker.held() == ("outer", "inner")
        assert tracker.held() == ()

    def test_reentrant_acquisition_raises(self):
        tracker = LockTracker()
        with tracker.holding("pool"):
            with pytest.raises(SanitizerError, match="re-entrant"):
                with tracker.holding("pool"):
                    pass

    def test_lock_order_inversion_raises(self):
        tracker = LockTracker()
        with tracker.holding("a"):
            with tracker.holding("b"):
                pass
        with tracker.holding("b"):
            with pytest.raises(SanitizerError, match="inverts"):
                with tracker.holding("a"):
                    pass

    def test_consistent_order_never_raises(self):
        tracker = LockTracker()
        for _ in range(3):
            with tracker.holding("a"):
                with tracker.holding("b"):
                    pass

    def test_exception_inside_scope_still_releases(self):
        tracker = LockTracker()
        with pytest.raises(RuntimeError):
            with tracker.holding("pool"):
                raise RuntimeError("boom")
        assert tracker.held() == ()
        with tracker.holding("pool"):
            pass

    def test_reset_forgets_recorded_orders(self):
        tracker = LockTracker()
        with tracker.holding("a"):
            with tracker.holding("b"):
                pass
        tracker.reset()
        with tracker.holding("b"):
            with tracker.holding("a"):
                pass


class TestTrackedScope:
    def test_disabled_scope_is_untracked(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
        with tracked_scope("pool"):
            with tracked_scope("pool"):
                pass  # no tracking, no re-entrancy error

    def test_enabled_scope_uses_the_global_tracker(self, sanitize_on):
        try:
            with tracked_scope("scope-test.pool"):
                assert "scope-test.pool" in sanitizer.TRACKER.held()
                with pytest.raises(SanitizerError, match="re-entrant"):
                    with tracked_scope("scope-test.pool"):
                        pass
        finally:
            sanitizer.TRACKER.reset()
