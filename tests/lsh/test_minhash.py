"""Tests for MinHash signatures."""

import numpy as np
import pytest

from repro.lsh.minhash import MinHashFactory, exact_jaccard, exact_jaccard_distance


@pytest.fixture
def factory():
    return MinHashFactory(num_perm=256, seed=1)


class TestExactJaccard:
    def test_identical_sets(self):
        assert exact_jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_disjoint_sets(self):
        assert exact_jaccard({"a"}, {"b"}) == 0.0

    def test_partial_overlap(self):
        assert exact_jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert exact_jaccard(set(), set()) == 0.0

    def test_distance_is_complement(self):
        assert exact_jaccard_distance({"a", "b"}, {"b", "c"}) == pytest.approx(2 / 3)


class TestMinHashFactory:
    def test_rejects_non_positive_num_perm(self):
        with pytest.raises(ValueError):
            MinHashFactory(num_perm=0)

    def test_signature_length(self, factory):
        signature = factory.from_tokens({"a", "b"})
        assert signature.hashvalues.shape == (256,)

    def test_from_hashvalues_round_trip(self, factory):
        signature = factory.from_tokens({"a", "b"})
        rebuilt = factory.from_hashvalues(signature.hashvalues)
        assert rebuilt == signature

    def test_from_hashvalues_rejects_wrong_shape(self, factory):
        with pytest.raises(ValueError):
            factory.from_hashvalues(np.zeros(10, dtype=np.uint64))

    def test_empty_signature_flag(self, factory):
        assert factory.empty().is_empty()
        assert not factory.from_tokens({"a"}).is_empty()

    def test_merge_equals_union_signature(self, factory):
        first = factory.from_tokens({"a", "b"})
        second = factory.from_tokens({"c"})
        union = factory.from_tokens({"a", "b", "c"})
        assert factory.merge(first, second) == union


class TestJaccardEstimation:
    def test_identical_sets_estimate_one(self, factory):
        tokens = {"salford", "bolton", "bury"}
        assert factory.from_tokens(tokens).jaccard(factory.from_tokens(tokens)) == 1.0

    def test_disjoint_sets_estimate_near_zero(self, factory):
        first = factory.from_tokens({f"a{i}" for i in range(50)})
        second = factory.from_tokens({f"b{i}" for i in range(50)})
        assert first.jaccard(second) < 0.05

    def test_estimate_close_to_exact(self, factory):
        first = {f"tok{i}" for i in range(0, 60)}
        second = {f"tok{i}" for i in range(30, 90)}
        exact = exact_jaccard(first, second)
        estimate = factory.from_tokens(first).jaccard(factory.from_tokens(second))
        assert abs(estimate - exact) < 0.12

    def test_distance_in_unit_interval(self, factory):
        first = factory.from_tokens({"a", "b", "c"})
        second = factory.from_tokens({"b", "c", "d"})
        assert 0.0 <= first.jaccard_distance(second) <= 1.0

    def test_symmetric(self, factory):
        first = factory.from_tokens({"a", "b", "c"})
        second = factory.from_tokens({"c", "d"})
        assert first.jaccard(second) == second.jaccard(first)

    def test_incompatible_signatures_raise(self, factory):
        other_factory = MinHashFactory(num_perm=256, seed=2)
        with pytest.raises(ValueError):
            factory.from_tokens({"a"}).jaccard(other_factory.from_tokens({"a"}))

    def test_different_num_perm_raise(self, factory):
        other_factory = MinHashFactory(num_perm=128, seed=1)
        with pytest.raises(ValueError):
            factory.from_tokens({"a"}).jaccard(other_factory.from_tokens({"a"}))

    def test_bytes_size_reflects_signature(self, factory):
        assert factory.from_tokens({"a"}).bytes_size() == 256 * 8
