"""Fixture suite for the R1–R5 static rules.

Each rule gets at least one firing snippet and one near-miss: the firing
fixture is the seeded-violation guarantee (delete the rule and these tests
go red), the near-miss pins down the boundary so the rule cannot drift
into flagging the idioms the real tree uses.  Fixtures are written into a
tmp tree under the scoped module names (``core/indexes.py``, ``cli.py``,
...) so the fnmatch scoping is exercised too.
"""

import textwrap

import pytest

from repro.analysis.checker import run_check
from repro.analysis.registry import RULES


def check_tree(tmp_path, files, codes=None):
    """Write ``{relpath: source}`` fixtures and run the checker over them."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_check([tmp_path], codes=codes)


def codes_of(violations):
    return [violation.code for violation in violations]


class TestRegistry:
    def test_all_five_rules_registered(self):
        assert sorted(rule.code for rule in RULES) == ["R1", "R2", "R3", "R4", "R5"]

    def test_render_is_path_line_code(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/parallel.py": """
                def shard(tables):
                    return [name for name in set(tables)]
                """
            },
        )
        assert len(violations) == 1
        rendered = violations[0].render()
        assert "core/parallel.py" in rendered.partition(":")[0] + rendered
        assert ": R2 " in rendered


class TestR1ZeroCopy:
    def test_unguarded_matrix_write_fires(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/indexes.py": """
                class SignatureMatrix:
                    def clobber(self, row, values):
                        self._matrix[row] = values
                """
            },
        )
        assert codes_of(violations) == ["R1"]
        assert "_ensure_writable" in violations[0].message

    def test_guarded_write_is_clean(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/indexes.py": """
                class SignatureMatrix:
                    def clobber(self, row, values):
                        self._ensure_writable()
                        self._matrix[row] = values
                """
            },
        )
        assert violations == []

    def test_unfrozen_attach_view_fires(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/shared.py": """
                import numpy as np

                def attach(buffer):
                    view = np.frombuffer(buffer, dtype=np.uint64)
                    return view
                """
            },
        )
        assert codes_of(violations) == ["R1"]
        assert "writeable" in violations[0].message

    def test_frozen_attach_view_is_clean(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/shared.py": """
                import numpy as np

                def attach(buffer):
                    view = np.frombuffer(buffer, dtype=np.uint64)
                    view.flags.writeable = False
                    return view
                """
            },
        )
        assert violations == []

    def test_rule_is_scoped_to_the_zero_copy_modules(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/weights.py": """
                class Anything:
                    def clobber(self, row, values):
                        self._matrix[row] = values
                """
            },
        )
        assert "R1" not in codes_of(violations)


class TestR2Determinism:
    def test_set_iteration_in_kernel_module_fires(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/parallel.py": """
                def shard(tables):
                    names = set(tables)
                    return [name for name in names]
                """
            },
        )
        assert codes_of(violations) == ["R2"]
        assert "sorted" in violations[0].message

    def test_sorted_set_iteration_is_clean(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/parallel.py": """
                def shard(tables):
                    names = set(tables)
                    return [name for name in sorted(names)]
                """
            },
        )
        assert violations == []

    def test_rebinding_to_sorted_launders_the_set(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/joins.py": """
                def shard(tables):
                    names = set(tables)
                    names = sorted(names)
                    return [name for name in names]
                """
            },
        )
        assert violations == []

    def test_set_iteration_outside_kernel_modules_is_allowed(self, tmp_path):
        # core/config.py is under R2's wall-clock/RNG scope but not a
        # ranking kernel; set iteration there is order-insensitive.
        violations = check_tree(
            tmp_path,
            {
                "core/config.py": """
                def validate(keys):
                    return {key: True for key in set(keys)}
                """
            },
        )
        assert violations == []

    def test_wall_clock_fires(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/weights.py": """
                import time

                def stamp():
                    return time.time()
                """
            },
        )
        assert codes_of(violations) == ["R2"]
        assert "wall-clock" in violations[0].message

    def test_unseeded_default_rng_fires_seeded_is_clean(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "lsh/hashing.py": """
                import numpy as np

                def bad():
                    return np.random.default_rng()

                def good(seed):
                    return np.random.default_rng(seed)
                """
            },
        )
        assert codes_of(violations) == ["R2"]
        assert "seed" in violations[0].message

    def test_stdlib_global_rng_fires(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/weights.py": """
                import random

                def jitter():
                    return random.random()
                """
            },
        )
        assert codes_of(violations) == ["R2"]

    def test_builtin_hash_fires_outside_dunder_hash(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "lsh/hashing.py": """
                def bucket(token):
                    return hash(token) % 64

                class Ref:
                    def __hash__(self):
                        return hash(("ref", 1))
                """
            },
        )
        assert codes_of(violations) == ["R2"]
        assert "PYTHONHASHSEED" in violations[0].message

    def test_line_pragma_suppresses(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/parallel.py": """
                def shard(tables):
                    names = set(tables)
                    return [name for name in names]  # repro-check: disable=R2
                """
            },
        )
        assert violations == []

    def test_module_pragma_suppresses_file_wide(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/parallel.py": """
                # repro-check: disable=R2
                def shard(tables):
                    names = set(tables)
                    return [name for name in names]
                """
            },
        )
        assert violations == []

    def test_pragma_for_another_code_does_not_suppress(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/parallel.py": """
                def shard(tables):
                    names = set(tables)
                    return [name for name in names]  # repro-check: disable=R3
                """
            },
        )
        assert codes_of(violations) == ["R2"]


class TestR3Lifecycle:
    def test_unreleased_cli_engine_fires(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "cli.py": """
                def _command_query(args):
                    engine = load_engine(args.engine)
                    print(engine.query(args.target))
                    return 0
                """
            },
        )
        assert codes_of(violations) == ["R3"]
        assert "leak" in violations[0].message

    def test_try_finally_released_engine_is_clean(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "cli.py": """
                def _command_query(args):
                    engine = load_engine(args.engine)
                    try:
                        print(engine.query(args.target))
                        return 0
                    finally:
                        engine.close()
                """
            },
        )
        assert violations == []

    def test_with_scoped_pool_is_clean_bare_pool_fires(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/parallel.py": """
                from concurrent.futures import ProcessPoolExecutor

                def bad(jobs):
                    pool = ProcessPoolExecutor(4)
                    results = list(pool.map(len, jobs))
                    return results

                def good(jobs):
                    with ProcessPoolExecutor(4) as pool:
                        return list(pool.map(len, jobs))
                """
            },
        )
        assert codes_of(violations) == ["R3"]
        assert violations[0].message.startswith("worker pool")

    def test_shared_memory_returned_is_ownership_transfer(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/shared.py": """
                from multiprocessing import shared_memory

                def bad(total):
                    segment = shared_memory.SharedMemory(create=True, size=total)
                    segment.buf[:4] = b"xxxx"

                def good(total):
                    segment = shared_memory.SharedMemory(create=True, size=total)
                    return segment

                def attach_only(locator):
                    return shared_memory.SharedMemory(name=locator)
                """
            },
        )
        assert codes_of(violations) == ["R3"]
        assert "SharedMemory(create=True)" in violations[0].message

    def test_self_attribute_closed_elsewhere_in_class_is_clean(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/server.py": """
                from concurrent.futures import ThreadPoolExecutor

                class Server:
                    def __init__(self):
                        self._pool = ThreadPoolExecutor(4)

                    def close(self):
                        self._pool.shutdown()
                """
            },
        )
        assert violations == []

    def test_engine_factories_only_tracked_in_cli(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/discovery.py": """
                def helper(path):
                    engine = load_engine(path)
                    return engine.indexes
                """
            },
        )
        assert "R3" not in codes_of(violations)

    def test_unscoped_backend_factory_fires(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/discovery.py": """
                from repro.core.execution import create_backend

                def fanout(indexes, payloads):
                    backend = create_backend("process", indexes, 4)
                    results = backend.map_shards(len, payloads)
                    return results
                """
            },
        )
        assert codes_of(violations) == ["R3"]
        assert violations[0].message.startswith("execution backend/worker")

    def test_scoped_backend_factory_is_clean(self, tmp_path):
        # Near-misses of the violation above: the same factory call, scoped
        # by each of the three accepted disciplines (with, ownership
        # transfer, self-attribute paired with a class-level closer).
        violations = check_tree(
            tmp_path,
            {
                "core/discovery.py": """
                from repro.core.execution import ProcessBackend, create_backend

                def with_scoped(indexes, payloads):
                    with create_backend("process", indexes, 4) as backend:
                        return backend.map_shards(len, payloads)

                def transferred(indexes):
                    return ProcessBackend(indexes, 4)

                class Executor:
                    def __init__(self, indexes):
                        self._backend = create_backend("process", indexes, 4)

                    def close(self):
                        self._backend.close()
                """
            },
        )
        assert violations == []

    def test_unscoped_serving_worker_spawn_fires(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/server.py": """
                import multiprocessing

                def spawn(descriptor):
                    worker = multiprocessing.Process(target=print, args=(descriptor,))
                    worker.start()
                    print(worker.pid)
                """
            },
        )
        assert codes_of(violations) == ["R3"]
        assert "Process(...)" in violations[0].message

    def test_joined_serving_worker_spawn_is_clean(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/server.py": """
                import multiprocessing

                def run_one(descriptor):
                    worker = multiprocessing.Process(target=print, args=(descriptor,))
                    worker.start()
                    try:
                        print(worker.pid)
                    finally:
                        worker.join()

                class ServingWorker:
                    def __init__(self, descriptor):
                        self._process = multiprocessing.Process(target=print)
                        self._process.start()

                    def close(self):
                        self._process.join()
                """
            },
        )
        assert violations == []


class TestR4WireParity:
    _MODULE = """
    from dataclasses import dataclass


    @dataclass
    class Ping:
        target: str
        k: int

        def to_dict(self):
            return {{"target": self.target{to_extra}}}

        @classmethod
        def from_dict(cls, payload):
            return cls(target=payload["target"], k=payload.get("k", 5))
    """

    def test_field_missing_from_to_dict_fires(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {"core/api.py": self._MODULE.format(to_extra="")},
        )
        assert codes_of(violations) == ["R4"]
        assert "Ping.k" in violations[0].message
        assert "to_dict" in violations[0].message

    def test_full_parity_is_clean(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {"core/api.py": self._MODULE.format(to_extra=', "k": self.k')},
        )
        assert violations == []

    def test_module_level_wire_pair_checked(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/api.py": """
                from dataclasses import dataclass


                @dataclass
                class Pong:
                    status: str
                    elapsed: float


                def pong_to_wire(pong):
                    return {"status": pong.status}


                def pong_from_wire(payload):
                    return Pong(status=payload["status"], elapsed=payload["elapsed"])
                """
            },
        )
        assert codes_of(violations) == ["R4"]
        assert "Pong.elapsed" in violations[0].message

    def test_key_table_constant_counts_as_mention(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/api.py": """
                from dataclasses import dataclass

                _WIRE_FIELDS = ("status", "elapsed")


                @dataclass
                class Pong:
                    status: str
                    elapsed: float


                def pong_to_wire(pong):
                    return {name: getattr(pong, name) for name in _WIRE_FIELDS}


                def pong_from_wire(payload):
                    return Pong(**{name: payload[name] for name in _WIRE_FIELDS})
                """
            },
        )
        assert violations == []

    def test_rule_is_scoped_to_the_wire_module(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {"core/config.py": self._MODULE.format(to_extra="")},
        )
        assert "R4" not in codes_of(violations)


class TestR5Deprecation:
    def test_documented_deprecation_without_warning_fires(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/discovery.py": '''
                def query_batch(self, target, k=5):
                    """Old entry point.

                    .. deprecated:: use DiscoverySession.submit instead.
                    """
                    return self._submit(target, k)
                '''
            },
        )
        assert codes_of(violations) == ["R5"]
        assert "DeprecationWarning" in violations[0].message

    def test_warnings_warn_satisfies_the_rule(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/discovery.py": '''
                import warnings


                def query_batch(self, target, k=5):
                    """Old entry point.

                    .. deprecated:: use DiscoverySession.submit instead.
                    """
                    warnings.warn("use submit()", DeprecationWarning, stacklevel=2)
                    return self._submit(target, k)
                '''
            },
        )
        assert violations == []

    def test_deprecation_helper_satisfies_the_rule(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/discovery.py": '''
                def query_batch(self, target, k=5):
                    """Old entry point.

                    .. deprecated:: use DiscoverySession.submit instead.
                    """
                    _warn_deprecated("query_batch")
                    return self._submit(target, k)
                '''
            },
        )
        assert violations == []

    def test_undocumented_function_is_not_required_to_warn(self, tmp_path):
        violations = check_tree(
            tmp_path,
            {
                "core/discovery.py": '''
                def query_batch(self, target, k=5):
                    """Current entry point (not deprecated)."""
                    return self._submit(target, k)
                '''
            },
        )
        assert violations == []


class TestSelectAndOrdering:
    @pytest.fixture()
    def mixed_tree(self):
        return {
            "core/parallel.py": """
            def shard(tables):
                return [name for name in set(tables)]
            """,
            "cli.py": """
            def _command_query(args):
                engine = load_engine(args.engine)
                print(engine.query(args.target))
                return 0
            """,
        }

    def test_codes_filter_restricts_rules(self, tmp_path, mixed_tree):
        violations = check_tree(tmp_path, mixed_tree, codes=["R2"])
        assert codes_of(violations) == ["R2"]

    def test_violations_sorted_by_path_line_code(self, tmp_path, mixed_tree):
        violations = check_tree(tmp_path, mixed_tree)
        keys = [(v.path, v.line, v.code) for v in violations]
        assert keys == sorted(keys)
        assert set(codes_of(violations)) == {"R2", "R3"}
