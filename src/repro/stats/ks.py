"""Two-sample Kolmogorov–Smirnov statistic (D evidence).

The paper measures the relatedness of two numeric attributes as the KS
statistic over their extents, seen as samples of their originating domains:
the supremum over x of the absolute difference between the two empirical
CDFs.  The statistic is already in [0, 1], so it slots directly into the
uniform distance space used by the framework.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def ks_statistic(first: Sequence[float], second: Sequence[float]) -> float:
    """Two-sample KS statistic between two numeric samples.

    Returns 1.0 (maximal distance) when either sample is empty, which is how
    the framework treats attributes without usable numeric evidence.
    """
    a = np.asarray(list(first), dtype=np.float64)
    b = np.asarray(list(second), dtype=np.float64)
    a = a[np.isfinite(a)]
    b = b[np.isfinite(b)]
    if a.size == 0 or b.size == 0:
        return 1.0
    a.sort()
    b.sort()
    # Evaluate both ECDFs on the pooled support.
    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / a.size
    cdf_b = np.searchsorted(b, pooled, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def ks_statistic_sorted(first_sorted: np.ndarray, second_sorted: np.ndarray) -> float:
    """KS statistic over two *pre-sorted, finite* float64 samples.

    Algorithm 2 evaluates one target attribute against many candidates;
    callers that cache each side's sorted extent (see
    ``AttributeProfile.numeric_sorted``) skip the per-pair re-sorting of
    :func:`ks_statistic` while producing the identical value.
    """
    a = np.asarray(first_sorted, dtype=np.float64)
    b = np.asarray(second_sorted, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        return 1.0
    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / a.size
    cdf_b = np.searchsorted(b, pooled, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def ks_distance(first: Sequence[float], second: Sequence[float]) -> float:
    """Alias of :func:`ks_statistic`; the statistic *is* the distance."""
    return ks_statistic(first, second)
