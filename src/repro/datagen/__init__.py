"""Benchmark corpus generation.

The paper evaluates on three corpora that are not redistributable offline
(the TUS Synthetic benchmark built from Canadian open data, a Smaller Real
corpus of UK open-government tables, and a Larger Real corpus of NHS tables).
This package generates faithful stand-ins:

* :mod:`repro.datagen.vocab` — an open-government vocabulary of semantic
  domains (practices, streets, cities, postcodes, payments, ...);
* :mod:`repro.datagen.base_tables` — wide base tables in the style of the 32
  TUS benchmark seeds;
* :mod:`repro.datagen.synthetic_benchmark` — lake tables derived from the
  base tables by random projections and selections, with ground truth
  recorded during derivation (the *Synthetic* corpus);
* :mod:`repro.datagen.real_benchmark` — families of "dirty" tables with
  inconsistent representations of the same domains (the *Smaller Real* /
  *Larger Real* corpora);
* :mod:`repro.datagen.ground_truth` — the relatedness ground truth structure
  shared by both generators;
* :mod:`repro.datagen.corpus` — the :class:`~repro.datagen.corpus.Benchmark`
  bundle (lake + ground truth + labelled subject attributes) and helpers for
  picking query targets, building embedding-training corpora, and building
  the synthetic knowledge base used by the TUS baseline.
"""

from repro.datagen.base_tables import BaseTableSpec, build_base_tables, default_base_specs
from repro.datagen.corpus import Benchmark, build_embedding_corpus, build_knowledge_base
from repro.datagen.ground_truth import GroundTruth
from repro.datagen.noise import dirty_value, abbreviate, perturb_case
from repro.datagen.real_benchmark import RealBenchmarkConfig, generate_real_benchmark
from repro.datagen.synthetic_benchmark import (
    SyntheticBenchmarkConfig,
    generate_synthetic_benchmark,
)
from repro.datagen.vocab import SemanticDomain, Vocabulary, default_vocabulary

__all__ = [
    "BaseTableSpec",
    "Benchmark",
    "GroundTruth",
    "RealBenchmarkConfig",
    "SemanticDomain",
    "SyntheticBenchmarkConfig",
    "Vocabulary",
    "abbreviate",
    "build_base_tables",
    "build_embedding_corpus",
    "build_knowledge_base",
    "default_base_specs",
    "default_vocabulary",
    "dirty_value",
    "generate_real_benchmark",
    "generate_synthetic_benchmark",
    "perturb_case",
]
