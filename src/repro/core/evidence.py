"""The five relatedness evidence types of section III-A."""

from __future__ import annotations

from enum import Enum
from typing import Tuple


class EvidenceType(str, Enum):
    """One of the five kinds of relatedness evidence used by D3L.

    * ``NAME`` (N) — Jaccard distance between attribute-name q-gram sets;
    * ``VALUE`` (V) — Jaccard distance between informative-token sets;
    * ``FORMAT`` (F) — Jaccard distance between format-string sets;
    * ``EMBEDDING`` (E) — cosine distance between attribute embedding vectors;
    * ``DISTRIBUTION`` (D) — Kolmogorov–Smirnov statistic between numeric
      extents.
    """

    NAME = "N"
    VALUE = "V"
    FORMAT = "F"
    EMBEDDING = "E"
    DISTRIBUTION = "D"

    @classmethod
    def indexed(cls) -> Tuple["EvidenceType", ...]:
        """The four evidence types backed by an LSH index (all but D)."""
        return (cls.NAME, cls.VALUE, cls.FORMAT, cls.EMBEDDING)

    @classmethod
    def all(cls) -> Tuple["EvidenceType", ...]:
        """All five evidence types in the order the paper lists them."""
        return (cls.NAME, cls.VALUE, cls.FORMAT, cls.EMBEDDING, cls.DISTRIBUTION)

    @property
    def is_indexed(self) -> bool:
        """True for the LSH-indexed evidence types."""
        return self is not EvidenceType.DISTRIBUTION

    def __str__(self) -> str:
        return self.value
