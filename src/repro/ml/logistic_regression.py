"""Binary logistic regression optimised with cyclic coordinate descent.

The paper trains a logistic-regression relatedness classifier over the five
aggregated evidence distances and uses its coefficients as the weights of
Equation 3; it cites a coordinate-descent optimiser ([30] in the paper).
This implementation performs cyclic coordinate-wise Newton updates on the
L2-regularised logistic loss — small, dependency-free, and sufficient for the
five-dimensional feature vectors involved.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class LogisticRegression:
    """L2-regularised binary logistic regression.

    Parameters
    ----------
    l2:
        Regularisation strength applied to the feature coefficients (the
        intercept is not regularised).
    max_iter:
        Maximum number of full coordinate sweeps.
    tol:
        Convergence tolerance on the largest coefficient change in a sweep.
    """

    def __init__(self, l2: float = 1e-3, max_iter: int = 200, tol: float = 1e-6) -> None:
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def fit(self, features: Sequence[Sequence[float]], labels: Sequence[int]) -> "LogisticRegression":
        """Fit the model on a binary-labelled training set (labels in {0, 1})."""
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("features must be a 2-dimensional array")
        if X.shape[0] != y.shape[0]:
            raise ValueError("features and labels must have the same number of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty training set")
        if not set(np.unique(y)).issubset({0.0, 1.0}):
            raise ValueError("labels must be binary (0 or 1)")

        n_samples, n_features = X.shape
        weights = np.zeros(n_features, dtype=np.float64)
        intercept = 0.0

        for sweep in range(self.max_iter):
            linear = X @ weights + intercept
            probabilities = _sigmoid(linear)
            max_change = 0.0

            # Intercept update (Newton step on the unregularised coordinate).
            gradient = float(np.sum(probabilities - y))
            curvature = float(np.sum(probabilities * (1.0 - probabilities))) + 1e-12
            delta = -gradient / curvature
            intercept += delta
            linear += delta
            probabilities = _sigmoid(linear)
            max_change = max(max_change, abs(delta))

            for j in range(n_features):
                column = X[:, j]
                gradient = float(column @ (probabilities - y)) + self.l2 * weights[j]
                curvature = (
                    float((column ** 2) @ (probabilities * (1.0 - probabilities)))
                    + self.l2
                    + 1e-12
                )
                delta = -gradient / curvature
                if delta == 0.0:
                    continue
                weights[j] += delta
                linear += delta * column
                probabilities = _sigmoid(linear)
                max_change = max(max_change, abs(delta))

            self.n_iter_ = sweep + 1
            if max_change < self.tol:
                break

        self.coef_ = weights
        self.intercept_ = intercept
        return self

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def _check_fitted(self) -> None:
        if self.coef_ is None:
            raise RuntimeError("the model has not been fitted")

    def decision_function(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        """Linear scores (log-odds) for the given feature rows."""
        self._check_fitted()
        X = np.asarray(features, dtype=np.float64)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, features: Sequence[Sequence[float]]) -> np.ndarray:
        """Probability of the positive class for each feature row."""
        return _sigmoid(self.decision_function(features))

    def predict(self, features: Sequence[Sequence[float]], threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(features) >= threshold).astype(int)

    def score(self, features: Sequence[Sequence[float]], labels: Sequence[int]) -> float:
        """Accuracy on a labelled set."""
        predictions = self.predict(features)
        y = np.asarray(labels, dtype=int)
        if y.size == 0:
            return 0.0
        return float(np.mean(predictions == y))
