"""Two-sample Kolmogorov–Smirnov statistic (D evidence).

The paper measures the relatedness of two numeric attributes as the KS
statistic over their extents, seen as samples of their originating domains:
the supremum over x of the absolute difference between the two empirical
CDFs.  The statistic is already in [0, 1], so it slots directly into the
uniform distance space used by the framework.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

#: Upper bound on the cells of the candidate-by-support histogram built by
#: :func:`ks_statistic_sorted_many`; candidate batches whose histogram would
#: exceed it are processed in blocks so memory stays bounded for very long
#: query extents.
_MANY_HISTOGRAM_CELL_BUDGET = 8_000_000
#: Upper bound on the summed candidate-extent elements concatenated per
#: block, bounding the flat arrays of the first pass the same way the cell
#: budget bounds the histogram (very long *candidate* extents otherwise
#: concatenate without limit when the query extent is short).
_MANY_FLAT_ELEMENT_BUDGET = 8_000_000


def ks_statistic(first: Sequence[float], second: Sequence[float]) -> float:
    """Two-sample KS statistic between two numeric samples.

    Returns 1.0 (maximal distance) when either sample is empty, which is how
    the framework treats attributes without usable numeric evidence.
    """
    a = np.asarray(list(first), dtype=np.float64)
    b = np.asarray(list(second), dtype=np.float64)
    a = a[np.isfinite(a)]
    b = b[np.isfinite(b)]
    if a.size == 0 or b.size == 0:
        return 1.0
    a.sort()
    b.sort()
    # Evaluate both ECDFs on the pooled support.
    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / a.size
    cdf_b = np.searchsorted(b, pooled, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def ks_statistic_sorted(first_sorted: np.ndarray, second_sorted: np.ndarray) -> float:
    """KS statistic over two *pre-sorted, finite* float64 samples.

    Algorithm 2 evaluates one target attribute against many candidates;
    callers that cache each side's sorted extent (see
    ``AttributeProfile.numeric_sorted``) skip the per-pair re-sorting of
    :func:`ks_statistic` while producing the identical value.
    """
    a = np.asarray(first_sorted, dtype=np.float64)
    b = np.asarray(second_sorted, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        return 1.0
    pooled = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, pooled, side="right") / a.size
    cdf_b = np.searchsorted(b, pooled, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def ks_statistic_sorted_many(
    query_sorted: np.ndarray, candidates_sorted: Sequence[np.ndarray]
) -> np.ndarray:
    """KS statistics between one pre-sorted sample and many pre-sorted samples.

    Algorithm 2 evaluates one target attribute against every candidate that
    passed its guard; this is that whole loop as one vectorized sweep.  All
    candidate extents are concatenated and both empirical CDFs are evaluated
    over every pooled support point with a constant number of NumPy passes,
    instead of one :func:`ks_statistic_sorted` call per pair.

    Inputs follow the same contract as :func:`ks_statistic_sorted`: each
    array is sorted, finite, float64 (``AttributeProfile.numeric_sorted``).
    Returns one statistic per candidate — bit-identical to the looped scalar
    path, because every CDF value is the same ``searchsorted`` count divided
    by the same sample size and the supremum is taken over the same support
    set.  Empty samples (either side) yield the maximal distance 1.0.
    """
    results = np.ones(len(candidates_sorted), dtype=np.float64)
    a = np.asarray(query_sorted, dtype=np.float64)
    if a.size == 0 or not len(candidates_sorted):
        return results
    sizes = np.array([np.asarray(c).shape[0] for c in candidates_sorted], dtype=np.intp)
    populated = np.flatnonzero(sizes > 0)
    if populated.size == 0:
        return results
    # Bound both passes' memory: each block holds at most
    # _MANY_HISTOGRAM_CELL_BUDGET histogram cells (candidates x query
    # support) and at most _MANY_FLAT_ELEMENT_BUDGET concatenated candidate
    # elements, whichever limit bites first.
    max_count = max(1, _MANY_HISTOGRAM_CELL_BUDGET // (a.size + 1))
    for chunk in _blocks_within_budget(populated, sizes, max_count):
        results[chunk] = _ks_sorted_many_block(
            a, [np.asarray(candidates_sorted[i], dtype=np.float64) for i in chunk]
        )
    return results


def _blocks_within_budget(
    populated: np.ndarray, sizes: np.ndarray, max_count: int
) -> List[np.ndarray]:
    """Split the candidate indices into budget-respecting blocks, in order."""
    blocks: List[np.ndarray] = []
    start = 0
    elements = 0
    for position, index in enumerate(populated):
        size = int(sizes[index])
        over_elements = elements + size > _MANY_FLAT_ELEMENT_BUDGET and position > start
        over_count = position - start >= max_count
        if over_elements or over_count:
            blocks.append(populated[start:position])
            start = position
            elements = 0
        elements += size
    blocks.append(populated[start:])
    return blocks


def _ks_sorted_many_block(a: np.ndarray, arrays: List[np.ndarray]) -> np.ndarray:
    """The vectorized sweep over one block of non-empty candidate extents."""
    m = a.size
    sizes = np.array([b.shape[0] for b in arrays], dtype=np.intp)
    flat = np.concatenate(arrays)
    offsets = np.zeros(len(arrays) + 1, dtype=np.intp)
    np.cumsum(sizes, out=offsets[1:])
    segment_ids = np.repeat(np.arange(len(arrays), dtype=np.intp), sizes)

    # Pass 1 — evaluate both CDFs at every candidate element.  F_a is one
    # batched searchsorted; F_b at a sorted segment's own elements is the
    # right-rank inside the segment, i.e. the index of the end of each
    # equal-value run (computed with a reversed running minimum).
    total = flat.shape[0]
    cdf_a_at_b = np.searchsorted(a, flat, side="right") / m
    is_run_end = np.empty(total, dtype=bool)
    is_run_end[:-1] = (segment_ids[:-1] != segment_ids[1:]) | (flat[:-1] != flat[1:])
    is_run_end[-1] = True
    end_index = np.where(is_run_end, np.arange(total, dtype=np.intp), total)
    run_end = np.minimum.accumulate(end_index[::-1])[::-1]
    right_rank = run_end - offsets[segment_ids] + 1
    cdf_b_at_b = right_rank / sizes[segment_ids]
    sup_at_b = np.maximum.reduceat(np.abs(cdf_a_at_b - cdf_b_at_b), offsets[:-1])

    # Pass 2 — evaluate both CDFs at every query element.  The count of a
    # segment's elements <= a[j] is a cumulative histogram of each element's
    # left insertion point into ``a`` (elements beyond every a[j] land in the
    # overflow column and are dropped).
    cdf_a_at_a = np.searchsorted(a, a, side="right") / m
    left_rank = np.searchsorted(a, flat, side="left")
    histogram = np.bincount(
        segment_ids * (m + 1) + left_rank, minlength=len(arrays) * (m + 1)
    ).reshape(len(arrays), m + 1)
    # Exact: the counts are small integers, so accumulating the CDF in
    # float64 and normalising in place loses nothing.
    counts = np.cumsum(histogram[:, :m], axis=1, dtype=np.float64)
    counts /= sizes[:, np.newaxis]
    counts -= cdf_a_at_a[np.newaxis, :]
    np.abs(counts, out=counts)
    sup_at_a = counts.max(axis=1)

    return np.maximum(sup_at_b, sup_at_a)


def ks_distance(first: Sequence[float], second: Sequence[float]) -> float:
    """Alias of :func:`ks_statistic`; the statistic *is* the distance."""
    return ks_statistic(first, second)
