"""Tests for the D3L discovery engine (top-k query)."""

import pytest

from repro.core.discovery import D3L, QueryResult, TableResult
from repro.core.evidence import EvidenceType
from repro.core.weights import EvidenceWeights
from repro.lake.datalake import DataLake


class TestFigure1Example:
    """The paper's running example: the GP-practices target and sources."""

    def test_all_sources_are_candidates(self, figure1_engine, figure1_tables):
        answer = figure1_engine.query(figure1_tables["target"], k=3)
        assert answer.candidate_tables() == {
            "gp_practices_s1",
            "gp_funding_s2",
            "local_gps_s3",
        }

    def test_top_k_size(self, figure1_engine, figure1_tables):
        answer = figure1_engine.query(figure1_tables["target"], k=2)
        assert len(answer.top()) == 2
        assert len(answer.top(1)) == 1

    def test_results_sorted_by_distance(self, figure1_engine, figure1_tables):
        answer = figure1_engine.query(figure1_tables["target"], k=3)
        distances = [result.distance for result in answer.results]
        assert distances == sorted(distances)

    def test_distances_bounded(self, figure1_engine, figure1_tables):
        answer = figure1_engine.query(figure1_tables["target"], k=3)
        for result in answer.results:
            assert 0.0 <= result.distance <= 1.0
            for value in result.evidence_distances.values():
                assert 0.0 <= value <= 1.0

    def test_identical_attribute_names_matched(self, figure1_engine, figure1_tables):
        answer = figure1_engine.query(figure1_tables["target"], k=3)
        s2 = answer.result_for("gp_funding_s2")
        assert s2 is not None
        matched_pairs = {
            (match.target_attribute, match.source.column) for match in s2.matches
        }
        assert ("City", "City") in matched_pairs
        assert ("Postcode", "Postcode") in matched_pairs

    def test_practice_aligned_across_different_names(self, figure1_engine, figure1_tables):
        answer = figure1_engine.query(figure1_tables["target"], k=3)
        s3 = answer.result_for("local_gps_s3")
        assert s3 is not None
        covered = s3.covered_target_attributes()
        assert "Hours" in covered or "Practice" in covered

    def test_result_for_unknown_table(self, figure1_engine, figure1_tables):
        answer = figure1_engine.query(figure1_tables["target"], k=3)
        assert answer.result_for("not_a_table") is None

    def test_aligned_sources_listed(self, figure1_engine, figure1_tables):
        answer = figure1_engine.query(figure1_tables["target"], k=3)
        s2 = answer.result_for("gp_funding_s2")
        assert all(ref.table == "gp_funding_s2" for ref in s2.aligned_sources())


class TestQueryOptions:
    def test_k_must_be_positive(self, figure1_engine, figure1_tables):
        with pytest.raises(ValueError):
            figure1_engine.query(figure1_tables["target"], k=0)

    def test_single_evidence_query(self, figure1_engine, figure1_tables):
        answer = figure1_engine.query(
            figure1_tables["target"], k=3, evidence_types=[EvidenceType.NAME]
        )
        assert answer.results
        # Ranking with only name evidence should place the table sharing
        # three attribute names (S2) first.
        assert answer.table_names(1) == ["gp_funding_s2"]

    def test_exclude_self_removes_target_table(self, figure1_engine, figure1_tables):
        source = figure1_tables["sources"][0]
        included = figure1_engine.query(source, k=3, exclude_self=False)
        excluded = figure1_engine.query(source, k=3, exclude_self=True)
        assert source.name in included.candidate_tables()
        assert source.name not in excluded.candidate_tables()

    def test_self_query_ranks_itself_first_when_included(self, figure1_engine, figure1_tables):
        source = figure1_tables["sources"][1]
        answer = figure1_engine.query(source, k=3, exclude_self=False)
        assert answer.table_names(1) == [source.name]

    def test_custom_weights_change_ranking_inputs(self, figure1_engine, figure1_tables):
        uniform = figure1_engine.query(
            figure1_tables["target"], k=3, weights=EvidenceWeights.uniform()
        )
        name_only = figure1_engine.query(
            figure1_tables["target"], k=3, weights=EvidenceWeights.single(EvidenceType.NAME)
        )
        assert uniform.results[0].distance != name_only.results[0].distance

    def test_query_result_metadata(self, figure1_engine, figure1_tables):
        answer = figure1_engine.query(figure1_tables["target"], k=2)
        assert answer.target_name == "gps_target"
        assert answer.target_arity == 5
        assert answer.requested_k == 2


class TestResultSlicing:
    """Edge cases of QueryResult.top / table_names: k=0, k>len, ties."""

    @pytest.fixture(scope="class")
    def answer(self, figure1_engine, figure1_tables):
        return figure1_engine.query(figure1_tables["target"], k=2)

    def test_top_zero_is_empty(self, answer):
        assert answer.top(0) == []
        assert answer.table_names(0) == []

    def test_top_beyond_length_returns_whole_ranking(self, answer):
        assert answer.top(len(answer.results) + 100) == answer.results
        assert answer.table_names(len(answer.results) + 100) == [
            result.table_name for result in answer.results
        ]

    def test_negative_k_rejected(self, answer):
        with pytest.raises(ValueError):
            answer.top(-1)
        with pytest.raises(ValueError):
            answer.table_names(-3)

    def test_default_k_is_requested_k(self, answer):
        assert len(answer.top()) == min(answer.requested_k, len(answer.results))

    def test_score_ties_ordered_by_table_name(self):
        # A hand-built ranking with tied scores must expose a deterministic,
        # name-sorted order through top()/table_names().
        tied = [
            TableResult(table_name=name, distance=0.25, evidence_distances={}, matches=[])
            for name in ("delta", "alpha", "charlie")
        ]
        tied.sort(key=lambda result: (result.distance, result.table_name))
        answer = QueryResult(
            target_name="t", target_arity=1, requested_k=3, results=tied
        )
        assert answer.table_names() == ["alpha", "charlie", "delta"]

    def test_tied_duplicate_tables_rank_deterministically(
        self, fast_config, figure1_tables
    ):
        # Two byte-identical lake tables produce identical distances; the
        # ranking must break the tie by table name, on both query engines.
        base = figure1_tables["sources"][0]
        lake = DataLake(
            "dupes", [base.with_name("zz_copy"), base.with_name("aa_copy")]
        )
        engine = D3L(config=fast_config)
        engine.index_lake(lake)
        for query in (engine.query, engine.query_batch):
            answer = query(figure1_tables["target"], k=2)
            tied = [
                result.table_name
                for result in answer.results
                if result.distance == answer.results[0].distance
            ]
            assert tied == sorted(tied)
            assert {"aa_copy", "zz_copy"} <= set(answer.table_names(2))


class TestOnGeneratedCorpus:
    def test_related_tables_rank_above_unrelated(self, indexed_d3l, small_synthetic_benchmark):
        benchmark = small_synthetic_benchmark
        target = benchmark.pick_targets(1, seed=2)[0]
        related = benchmark.ground_truth.related_to(target.name)
        answer = indexed_d3l.query(target, k=len(related))
        top = set(answer.table_names(len(related)))
        # At least half of the top-k should be truly related tables.
        assert len(top & related) >= max(1, len(related) // 2)

    def test_full_ranking_contains_most_related_tables(
        self, indexed_d3l, small_synthetic_benchmark
    ):
        benchmark = small_synthetic_benchmark
        target = benchmark.pick_targets(1, seed=4)[0]
        related = benchmark.ground_truth.related_to(target.name)
        answer = indexed_d3l.query(target, k=10)
        candidates = answer.candidate_tables()
        assert len(candidates & related) >= max(1, int(0.75 * len(related)))

    def test_index_table_invalidates_join_graph(self, fast_config, small_synthetic_benchmark):
        engine = D3L(config=fast_config)
        engine.index_lake(small_synthetic_benchmark.lake)
        first_graph = engine.join_graph
        engine.index_table(small_synthetic_benchmark.lake.tables[0].with_name("extra_copy"))
        assert engine.join_graph is not first_graph

    def test_set_weights(self, fast_config):
        engine = D3L(config=fast_config)
        new_weights = EvidenceWeights.uniform()
        engine.set_weights(new_weights)
        assert engine.weights is new_weights
