"""Tests for incremental index maintenance and attribute-level search."""

import pytest

from repro.core.discovery import D3L
from repro.core.evidence import EvidenceType
from repro.lake.datalake import AttributeRef, DataLake
from repro.tables.table import Table


@pytest.fixture
def engine(figure1_tables, fast_config):
    engine = D3L(config=fast_config)
    engine.index_lake(figure1_tables["lake"])
    return engine


class TestRemoveTable:
    def test_remove_known_table(self, engine, figure1_tables):
        assert engine.remove_table("gp_funding_s2") is True
        assert "gp_funding_s2" not in engine.indexes.table_names
        answer = engine.query(figure1_tables["target"], k=3)
        assert "gp_funding_s2" not in answer.candidate_tables()

    def test_remove_unknown_table(self, engine):
        assert engine.remove_table("not_there") is False

    def test_remove_clears_all_indexes(self, engine):
        removed_refs = [
            ref for ref in engine.indexes.profiles if ref.table == "local_gps_s3"
        ]
        assert removed_refs
        engine.remove_table("local_gps_s3")
        for ref in removed_refs:
            assert ref not in engine.indexes.profiles
            for evidence in EvidenceType.indexed():
                assert engine.indexes.signature(evidence, ref) is None

    def test_reinsert_after_removal(self, engine, figure1_tables):
        engine.remove_table("gp_funding_s2")
        engine.index_table(figure1_tables["sources"][1])
        answer = engine.query(figure1_tables["target"], k=3)
        assert "gp_funding_s2" in answer.candidate_tables()

    def test_remove_invalidates_join_graph(self, engine):
        graph_before = engine.join_graph
        engine.remove_table("gp_practices_s1")
        assert engine.join_graph is not graph_before
        assert "gp_practices_s1" not in engine.join_graph.table_names or not list(
            engine.join_graph.graph.edges("gp_practices_s1")
        )

    def test_attribute_count_shrinks(self, engine):
        before = engine.indexes.attribute_count
        engine.remove_table("gp_practices_s1")
        assert engine.indexes.attribute_count < before


class TestRelatedAttributes:
    def test_returns_ranked_attributes(self, engine, figure1_tables):
        results = engine.related_attributes(figure1_tables["target"], "Postcode", k=5)
        assert results
        refs = [result.ref for result in results]
        assert AttributeRef("gp_funding_s2", "Postcode") in refs
        distances = [result.distance for result in results]
        assert distances == sorted(distances)

    def test_respects_k(self, engine, figure1_tables):
        assert len(engine.related_attributes(figure1_tables["target"], "City", k=1)) == 1

    def test_distances_complete_and_bounded(self, engine, figure1_tables):
        results = engine.related_attributes(figure1_tables["target"], "City", k=5)
        for result in results:
            assert set(result.distances) == set(EvidenceType.all())
            assert all(0.0 <= value <= 1.0 for value in result.distances.values())
            assert 0.0 <= result.distance <= 1.0

    def test_unknown_attribute_raises(self, engine, figure1_tables):
        with pytest.raises(KeyError):
            engine.related_attributes(figure1_tables["target"], "NotAColumn", k=3)

    def test_invalid_k_raises(self, engine, figure1_tables):
        with pytest.raises(ValueError):
            engine.related_attributes(figure1_tables["target"], "City", k=0)

    def test_exclude_self(self, engine, figure1_tables):
        source = figure1_tables["sources"][1]
        included = engine.related_attributes(source, "City", k=10, exclude_self=False)
        excluded = engine.related_attributes(source, "City", k=10, exclude_self=True)
        assert any(result.ref.table == source.name for result in included)
        assert all(result.ref.table != source.name for result in excluded)

    def test_numeric_attribute_search(self, engine, figure1_tables):
        results = engine.related_attributes(figure1_tables["sources"][0], "Patients", k=5)
        # Numeric attributes are indexed by name and format, so candidates
        # exist; the distribution distance must be defined for numeric pairs.
        assert results
        for result in results:
            assert 0.0 <= result.distances[EvidenceType.DISTRIBUTION] <= 1.0
