"""Integration test reproducing the paper's running example (Figure 1 / Table I)."""

import pytest

from repro.core.evidence import EvidenceType
from repro.evaluation.experiments import experiment_example_distances, figure1_tables


class TestTable1Reproduction:
    @pytest.fixture(scope="class")
    def rows(self):
        return {row["pair"]: row for row in experiment_example_distances()}

    def test_identically_named_attributes_have_zero_name_distance(self, rows):
        for pair in ["(T.City, S2.City)", "(T.Postcode, S2.Postcode)"]:
            assert pair in rows
            assert rows[pair]["DN"] == 0.0

    def test_textual_pairs_have_maximal_distribution_distance(self, rows):
        # Table I: all three pairs are textual, so DD = 1.
        for pair in ["(T.City, S2.City)", "(T.Postcode, S2.Postcode)", "(T.Practice, S2.Practice)"]:
            if pair in rows:
                assert rows[pair]["DD"] == 1.0

    def test_value_and_embedding_evidence_present(self, rows):
        # The paper's Table I has DV and DE below 1 for the three aligned pairs.
        city = rows.get("(T.City, S2.City)")
        assert city is not None
        assert city["DV"] < 1.0
        assert city["DE"] < 1.0

    def test_practice_pair_aligned_despite_value_differences(self, rows):
        practice = rows.get("(T.Practice, S2.Practice)")
        assert practice is not None
        assert practice["DN"] == 0.0


class TestFigure1Discovery:
    def test_s2_is_among_the_most_related(self, figure1_engine):
        target, _ = figure1_tables()
        answer = figure1_engine.query(target, k=2)
        top_two = set(answer.table_names(2))
        # S2 shares three attribute names and most of its instance values
        # with the target, so it must be in the top 2 of 3 sources.
        assert "gp_funding_s2" in top_two

    def test_all_three_sources_are_candidates(self, figure1_engine):
        target, _ = figure1_tables()
        answer = figure1_engine.query(target, k=3)
        assert answer.candidate_tables() == {
            "gp_practices_s1",
            "gp_funding_s2",
            "local_gps_s3",
        }

    def test_s3_reachable_through_join_paths(self, figure1_engine):
        target, _ = figure1_tables()
        augmented = figure1_engine.query_with_joins(target, k=2)
        reachable = augmented.joined_tables | set(augmented.base.table_names(2))
        assert "local_gps_s3" in reachable

    def test_hours_covered_only_via_s3(self, figure1_engine):
        target, _ = figure1_tables()
        answer = figure1_engine.query(target, k=3)
        s3 = answer.result_for("local_gps_s3")
        assert s3 is not None
        assert "Hours" in s3.covered_target_attributes()
