"""Discovery over a data lake stored as a directory of CSV files.

Real data lakes are directories of files, not in-memory objects.  This
example materialises a generated corpus to disk as CSVs, loads it back the
way a user would load their own lake, indexes it, and answers a discovery
query for a hand-written target table — the workflow a downstream adopter of
the library follows with their own data.

Run with::

    python examples/csv_lake_discovery.py [lake_directory]
"""

from __future__ import annotations

import sys
import tempfile
import warnings
from pathlib import Path

from repro import D3L, D3LConfig, DataLake, DiscoverySession, QueryRequest, Table
from repro.datagen.real_benchmark import RealBenchmarkConfig, generate_real_benchmark


def materialise_demo_lake(directory: Path) -> None:
    """Write a demo corpus to ``directory`` as CSV files."""
    corpus = generate_real_benchmark(
        RealBenchmarkConfig(
            num_families=8,
            tables_per_family=5,
            min_rows=20,
            max_rows=60,
            dirtiness=0.3,
            seed=91,
        )
    )
    corpus.lake.to_directory(directory)
    print(f"Materialised {len(corpus.lake)} CSV files under {directory}")


def build_target() -> Table:
    """A hand-written target: the analyst's sketch of the table they want."""
    return Table.from_dict(
        "school_report_target",
        {
            "School": ["Manchester High School", "Salford Academy"],
            "Town": ["Manchester", "Salford"],
            "Postcode": ["M14 5RA", "M6 6PL"],
            "Pupils": ["1250", "890"],
            "Rating": ["4", "5"],
        },
    )


def main() -> None:
    if len(sys.argv) > 1:
        lake_directory = Path(sys.argv[1])
        if not lake_directory.exists():
            raise SystemExit(f"lake directory {lake_directory} does not exist")
    else:
        lake_directory = Path(tempfile.mkdtemp(prefix="d3l_lake_")) / "csv"
        materialise_demo_lake(lake_directory)

    lake = DataLake.from_directory(lake_directory, name="csv_lake")
    print(f"Loaded {len(lake)} tables ({lake.attribute_count} attributes) from {lake_directory}")

    engine = D3L(config=D3LConfig(num_hashes=128, embedding_dimension=48))
    engine.index_lake(lake)
    print("Index sizes (bytes):", engine.indexes.index_bytes())

    target = build_target()
    session = DiscoverySession(engine)
    answer = session.submit(
        QueryRequest(target=target, k=5, exclude_self=False, explain=True)
    )
    print(f"\nTop datasets related to '{target.name}':")
    for rank, result in enumerate(answer.top(), start=1):
        covered = ", ".join(sorted(result.covered_target_attributes()))
        print(
            f"  {rank}. {result.table_name:<35s} distance={result.distance:.3f} "
            f"covers: {covered}"
        )

    # Repeated requests hit the session's profile cache; the deprecated
    # query_batch shim must still produce the identical ranking.
    repeat = session.submit(
        QueryRequest(target=target, k=5, exclude_self=False, explain=True)
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = engine.query_batch(target, k=5, exclude_self=False)
    assert [(entry.table_name, entry.distance) for entry in legacy.results] == [
        (entry.table_name, entry.distance) for entry in repeat.results
    ], "deprecated D3L.query_batch diverged from the DiscoverySession answer"
    info = session.cache_info()
    print(f"\nSession cache: {info['hits']} hits / {info['misses']} misses")


if __name__ == "__main__":
    main()
