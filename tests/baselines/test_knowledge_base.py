"""Tests for the synthetic knowledge base (YAGO substitute)."""

import pytest

from repro.baselines.knowledge_base import KnowledgeBase


@pytest.fixture
def knowledge_base():
    kb = KnowledgeBase()
    kb.add_entity("Manchester", ["city", "place"])
    kb.add_entity("Salford Royal Hospital", ["organisation", "hospital"])
    kb.add_entity("Bolton", ["city", "place"])
    return kb


class TestAddEntity:
    def test_requires_classes(self, knowledge_base):
        with pytest.raises(ValueError):
            knowledge_base.add_entity("Thing", [])

    def test_entity_count(self, knowledge_base):
        assert knowledge_base.entity_count == 3

    def test_every_token_becomes_a_handle(self, knowledge_base):
        assert knowledge_base.classes_of_token("salford") == {"organisation", "hospital"}
        assert knowledge_base.classes_of_token("hospital") == {"organisation", "hospital"}

    def test_classes_accumulate_across_entities(self, knowledge_base):
        knowledge_base.add_entity("Manchester Airport", ["place", "transport"])
        assert "transport" in knowledge_base.classes_of_token("manchester")
        assert "city" in knowledge_base.classes_of_token("manchester")


class TestLookups:
    def test_unknown_token_has_no_classes(self, knowledge_base):
        assert knowledge_base.classes_of_token("unknown") == set()

    def test_classes_of_value_union(self, knowledge_base):
        classes = knowledge_base.classes_of_value("Manchester and Bolton")
        assert {"city", "place"} <= classes

    def test_case_insensitive(self, knowledge_base):
        assert knowledge_base.classes_of_token("MANCHESTER") == {"city", "place"}

    def test_annotate_extent(self, knowledge_base):
        annotations = knowledge_base.annotate_extent(["Manchester", "Salford Royal Hospital"])
        assert {"city", "place", "organisation", "hospital"} == annotations

    def test_coverage(self, knowledge_base):
        coverage = knowledge_base.coverage(["Manchester", "unknownplace"])
        assert coverage == pytest.approx(0.5)

    def test_coverage_of_empty_extent(self, knowledge_base):
        assert knowledge_base.coverage([]) == 0.0

    def test_classes_property(self, knowledge_base):
        assert {"city", "place", "organisation", "hospital"} == knowledge_base.classes

    def test_len_counts_tokens(self, knowledge_base):
        assert len(knowledge_base) >= 5
