"""Figures 8a/8b / Experiments 10-11 — impact of join paths on the real-style corpus.

Same measurements as Figure 7, on the dirty corpus.  Shapes to reproduce:
join-aware variants improve coverage, D3L's attribute precision stays above
the value-equality baselines, and D3L+J never drops below plain D3L.
"""

import numpy as np

from conftest import NUM_TARGETS, run_once

from repro.evaluation.experiments import experiment_join_impact

KS = [5, 10, 20, 40]


def test_figure8_real_join_impact(benchmark, record_rows, real_suite):
    rows = run_once(
        benchmark,
        experiment_join_impact,
        real_suite,
        ks=KS,
        num_targets=NUM_TARGETS,
        seed=11,
    )
    record_rows(
        "figure8_real_joins",
        rows,
        "Figure 8: target coverage (a) and attribute precision (b) on Smaller Real style corpus",
    )

    def mean_metric(system, metric):
        return float(np.mean([row[metric] for row in rows if row["system"] == system]))

    assert mean_metric("d3l+j", "coverage") >= mean_metric("d3l", "coverage") - 1e-9
    assert mean_metric("aurum+j", "coverage") >= mean_metric("aurum", "coverage") - 1e-9
    assert mean_metric("d3l+j", "attribute_precision") >= mean_metric("d3l", "attribute_precision") - 0.05
    # D3L aligns target attributes more precisely than TUS on dirty data.
    assert mean_metric("d3l", "attribute_precision") >= mean_metric("tus", "attribute_precision") - 0.05
