"""Sharded index construction and query fan-out over execution backends.

Figure 6a of the paper shows index construction dominating end-to-end cost:
a deployment indexes the lake once and answers many queries afterwards.
:class:`ParallelIndexBuilder` splits that one expensive pass across workers;
:class:`ParallelQueryExecutor` applies the same shard/merge discipline to
the query side, fanning one target's attributes out across workers for the
batched query engine (:meth:`~repro.core.discovery.D3L.query_batch`).

Neither class constructs pools itself any more: both dispatch through an
:class:`~repro.core.execution.ExecutionBackend` (serial / thread / process,
``process`` by default), which owns pool lifecycle, the shared index
snapshot, and journal-driven delta refresh.  Sharding stays here — it is a
pure function of the requested worker count, so a given ``workers=N``
produces identical shards under every backend, and the keyed merges make
the final result backend-independent (locked down by
``tests/core/test_execution.py`` on top of the original
``tests/core/test_parallel_build.py`` / ``test_parallel_query.py`` oracles).

:class:`ParallelIndexBuilder` works as follows:

1. the lake's table names are sorted and dealt round-robin into one shard
   per worker (deterministic for a given lake and worker count);
2. each worker profiles its shard's tables and computes their signatures
   with the table-level batched passes
   (:meth:`~repro.core.indexes.D3LIndexes.table_signatures`);
3. the main process merges the shard results **in globally sorted table
   order** through :meth:`~repro.core.indexes.D3LIndexes.add_profiled_table`,
   i.e. the existing buffered forest inserts and batched signature-matrix
   appends.

Because signature computation is deterministic and the merge order is the
same sorted order a serial ``add_lake`` uses, a sharded build produces
signature matrices, forest contents, and therefore query rankings identical
to a single-process build.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.execution import ExecutionBackend, create_backend, live_worker_pids
from repro.lake.datalake import DataLake
from repro.tables.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.indexes import D3LIndexes
    from repro.core.shared import SharedIndexSnapshot
    from repro.lake.datalake import AttributeRef

#: ``live_worker_pids`` is re-exported: the suite-wide leak audit imports it
#: from here (the historical home of worker-process bookkeeping).
__all__ = [
    "ParallelIndexBuilder",
    "ParallelQueryExecutor",
    "live_worker_pids",
    "partition_tables",
    "verify_value_overlaps",
]

#: One shard worker's result: per table, the profile plus the per-attribute
#: signatures (``{attribute name: {evidence: signature or None}}``).
ShardResult = List[Tuple[object, Dict[str, dict]]]


def partition_tables(table_names: Sequence[str], shards: int) -> List[List[str]]:
    """Deal the sorted table names round-robin into ``shards`` groups.

    Sorting first makes the partition a pure function of the name set, so
    rebuilding the same lake — regardless of the order its tables were added
    in — always yields the same shards.
    """
    if shards <= 0:
        raise ValueError("shards must be positive")
    ordered = sorted(table_names)
    return [ordered[index::shards] for index in range(shards)]


def _profile_and_sign_shard(
    indexes: "D3LIndexes", tables: List[Table]
) -> ShardResult:
    """Shard fn: profile and sign every table of one shard.

    ``indexes`` is the profiling clone — a fresh (empty) ``D3LIndexes`` with
    exactly the same configuration, embedding model, and subject classifier
    as the merging process, shipped once per worker by the backend; nothing
    is inserted into it.  Signatures are batched across the whole shard, so
    every worker exploits the same cross-table vocabulary sharing a serial
    ``add_lake`` does.
    """
    table_profiles = [indexes.profile_table(table) for table in tables]
    signatures = indexes.batch_signatures(table_profiles)
    return [
        (table_profile, signatures[table_profile.table_name])
        for table_profile in table_profiles
    ]


class ParallelIndexBuilder:
    """Builds a :class:`~repro.core.indexes.D3LIndexes` over worker shards.

    The target indexes (and through them the configuration, embedding model,
    and subject classifier) must be picklable under the process backend,
    since an empty clone is shipped to every worker.  ``workers=1``
    degenerates to profiling in the main process through the identical code
    path, which is how the determinism tests compare the two.
    """

    def __init__(
        self, indexes: "D3LIndexes", workers: int, backend: str = "process"
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.indexes = indexes
        self.workers = workers
        self.backend = backend

    def _worker_clone(self) -> "D3LIndexes":
        """A fresh, empty indexes object sharing the target's configuration."""
        from repro.core.indexes import D3LIndexes

        return D3LIndexes(
            config=self.indexes.config,
            embedding_model=self.indexes.embedding_model,
            subject_classifier=self.indexes.subject_classifier,
        )

    def build(self, lake: DataLake) -> "D3LIndexes":
        """Profile and sign ``lake`` across the shards, then merge in order.

        The profiling clone is shipped once per worker through the backend
        (``share_index=False`` — builds need the configuration, not the
        still-empty index contents); per-shard payloads carry only the
        shard's tables.  Pool sizing is the backend's concern — sharding is
        a pure function of the requested worker count alone, so the merged
        result is too.
        """
        shards = [
            names for names in partition_tables(lake.table_names, self.workers) if names
        ]
        payloads = [[lake.table(name) for name in names] for names in shards]
        if len(payloads) <= 1:
            clone = self._worker_clone()
            shard_results = [
                _profile_and_sign_shard(clone, payload) for payload in payloads
            ]
        else:
            with create_backend(
                self.backend, self._worker_clone(), self.workers, share_index=False
            ) as backend:
                shard_results = backend.map_shards(_profile_and_sign_shard, payloads)

        by_table: Dict[str, Tuple[object, Dict[str, dict]]] = {}
        for result in shard_results:
            for table_profile, signatures in result:
                by_table[table_profile.table_name] = (table_profile, signatures)
        for name in sorted(by_table):
            table_profile, signatures = by_table[name]
            self.indexes.add_profiled_table(table_profile, signatures)
        return self.indexes


# --------------------------------------------------------------------------- #
# SA-join verification fan-out
# --------------------------------------------------------------------------- #


def _verify_join_shard(
    indexes: Optional["D3LIndexes"], payload
) -> List[Tuple["AttributeRef", "AttributeRef", float]]:
    """Shard fn: exact value-overlap of one shard's candidate pairs.

    ``payload`` is ``(samples, pairs)``: the value samples of exactly the
    refs this shard touches, plus the ``(left, right)`` ref pairs to verify.
    The backend view is unused — this is the sample-shipping routing for
    callers without an attached index.
    """
    from repro.core.profiles import sample_overlap

    samples, pairs = payload
    return [
        (left, right, sample_overlap(samples[left], samples[right]))
        for left, right in pairs
    ]


def verify_value_overlaps(
    samples: Dict["AttributeRef", frozenset],
    pairs: Sequence[Tuple["AttributeRef", "AttributeRef"]],
    workers: Optional[int] = None,
    executor: Optional["ParallelQueryExecutor"] = None,
    backend: str = "process",
) -> Dict[Tuple["AttributeRef", "AttributeRef"], float]:
    """Exact overlap coefficients of many candidate pairs, optionally sharded.

    The verification step of SA-join graph construction: every blocked
    ``(subject attribute, candidate attribute)`` pair surviving the
    estimated-overlap pre-filter is scored with the same overlap coefficient
    as :meth:`~repro.core.profiles.AttributeProfile.value_overlap`.

    With ``executor`` (a live :class:`ParallelQueryExecutor` over the same
    indexes), the pairs are verified on the executor's persistent backend
    against its attached view — no per-call pool spin-up and no sample
    shipping; ``samples`` may then be empty.  Otherwise ``workers > 1``
    deals the deduplicated pairs round-robin across a transient ``backend``
    scope, shipping each shard only the value samples its pairs touch.
    Because the overlap of a pair is a pure function of the two samples and
    the merge is keyed by pair, every routing returns the identical mapping.
    """
    from repro.core.profiles import sample_overlap

    if executor is not None:
        return executor.verify_overlaps(pairs)
    ordered = list(dict.fromkeys(pairs))
    if workers is None or workers <= 1 or len(ordered) <= 1:
        return {
            (left, right): sample_overlap(samples[left], samples[right])
            for left, right in ordered
        }
    shards = [shard for shard in (ordered[index::workers] for index in range(workers)) if shard]
    payloads = [
        (
            {ref: samples[ref] for pair in shard for ref in pair},
            shard,
        )
        for shard in shards
    ]
    if len(payloads) <= 1:
        shard_results = [_verify_join_shard(None, payload) for payload in payloads]
    else:
        with create_backend(backend, None, workers, share_index=False) as scope:
            shard_results = scope.map_shards(_verify_join_shard, payloads)
    return {
        (left, right): overlap
        for result in shard_results
        for left, right, overlap in result
    }


#: One query shard worker's result: per target attribute, the sorted
#: candidate refs plus the per-evidence distance columns aligned with them
#: (``[(attribute name, refs, {evidence: column})]``).
QueryShardResult = List[Tuple[str, List, Dict]]


def _collect_shard_candidate_distances(
    indexes: "D3LIndexes", payload
) -> QueryShardResult:
    """Shard fn: batched candidate collection for one shard.

    ``payload`` is ``(table_name, entries, context)``: the target's name,
    this shard's ``(attribute name, profile)`` pairs, and the shared query
    context (active evidence, pool, exclusions, subject-related tables).
    ``indexes`` is the backend's view — over the process backend a
    delta-refreshed worker-resident attachment; the worker runs exactly the
    same batched sweeps the single-process engine runs on its shard.
    """
    table_name, entries, context = payload
    from repro.core.discovery import collect_attribute_candidate_distances

    return collect_attribute_candidate_distances(
        indexes, table_name, entries, **context
    )


class ParallelQueryExecutor:
    """Fans one query's target attributes out across backend workers.

    The sorted attribute names are dealt round-robin into one shard per
    worker (:func:`partition_tables` — the partition is a pure function of
    the attribute-name set), each worker collects its shard's candidate
    distance vectors through the batched sweeps of
    :func:`~repro.core.discovery.collect_attribute_candidate_distances`, and
    the merge re-emits the results in the target profile's original
    attribute order — the order the sequential engine iterates.  Because
    every per-attribute result is a pure function of the (read-only) indexes
    and the shared query context, ``workers=1`` and ``workers=N`` answers
    are identical under every backend, which
    ``tests/core/test_parallel_query.py`` and ``test_execution.py`` lock
    down.

    Pool lifecycle, snapshot export, and journal-driven delta refresh are
    the owned :class:`~repro.core.execution.ExecutionBackend`'s concern
    (:class:`~repro.core.execution.ProcessBackend` by default); the
    executor's legacy introspection surface (``_pool``, ``_pool_version``,
    ``_snapshot_version``, ``_delta``, :attr:`snapshot`) delegates to it.
    """

    def __init__(
        self, indexes: "D3LIndexes", workers: int, backend: str = "process"
    ) -> None:
        self.indexes = indexes
        self.workers = workers
        self._backend = create_backend(backend, indexes, workers)

    @property
    def backend(self) -> ExecutionBackend:
        """The owned execution backend shards dispatch through."""
        return self._backend

    @property
    def snapshot(self) -> Optional["SharedIndexSnapshot"]:
        """The live shared snapshot backing the pool (None before spin-up,
        for in-process backends, or under the degraded pickle descriptor)."""
        return self._backend.snapshot

    # Legacy introspection surface: the pool/version/delta state now lives
    # on the owned backend, but the names remain the executor's documented
    # internals (the snapshot/delta tests assert against them).
    @property
    def _pool(self) -> Optional[ProcessPoolExecutor]:
        return getattr(self._backend, "_pool", None)

    @property
    def _pool_version(self) -> Optional[int]:
        return getattr(self._backend, "_pool_version", None)

    @property
    def _snapshot_version(self) -> Optional[int]:
        return getattr(self._backend, "_snapshot_version", None)

    @property
    def _delta(self):
        return getattr(self._backend, "_delta", None)

    def close(self) -> None:
        """Shut the backend's pool down and unlink its snapshot (the executor
        can be reused afterwards — the next fan-out re-creates both)."""
        self._backend.close()

    def verify_overlaps(
        self, pairs: Sequence[Tuple["AttributeRef", "AttributeRef"]]
    ) -> Dict[Tuple["AttributeRef", "AttributeRef"], float]:
        """Exact value overlaps of candidate pairs over the backend's view.

        Shards the deduplicated pairs round-robin across the persistent
        backend; process workers resolve value samples from their attached
        shared index, so payloads are bare pair lists.  Single-pair (or
        single-worker) calls short-circuit in-process over the same profiles
        — the result is routing-independent either way.
        """
        return self._backend.verify_overlaps(pairs)

    def collect(
        self,
        table_name: str,
        entries: Sequence[Tuple[str, object]],
        **context,
    ) -> QueryShardResult:
        """Collect every attribute's candidate distances across the shards.

        When the shared query context carries memoized target signatures
        (``signature_maps``, from a serving session's profile cache), each
        worker is shipped only its own shard's slice of the map so repeated
        queries neither re-sign the target nor pay for signatures of
        attributes another shard owns.
        """
        entries = list(entries)
        profile_of = dict(entries)
        signature_maps = context.pop("signature_maps", None)
        shards = [
            names
            for names in partition_tables([name for name, _ in entries], self.workers)
            if names
        ]
        shard_entries = [
            [(name, profile_of[name]) for name in names] for names in shards
        ]

        def shard_signatures(names):
            if signature_maps is None:
                return None
            return {name: signature_maps[name] for name in names}

        payloads = [
            (
                table_name,
                entries_for_shard,
                context
                | {
                    "signature_maps": shard_signatures(
                        [name for name, _ in entries_for_shard]
                    )
                },
            )
            for entries_for_shard in shard_entries
        ]
        shard_results = self._backend.map_shards(
            _collect_shard_candidate_distances, payloads
        )
        by_attribute = {
            name: (refs, columns)
            for result in shard_results
            for name, refs, columns in result
        }
        return [
            (name, *by_attribute[name])
            for name, _ in entries
            if name in by_attribute
        ]
