"""Tests for precision/recall and attribute precision metrics."""

import pytest

from repro.baselines.base import Alignment, RankedAnswer, RankedTable
from repro.datagen.ground_truth import GroundTruth
from repro.evaluation.metrics import (
    attribute_precision_at_k,
    attribute_precision_with_joins,
    average_over_targets,
    precision_recall_at_k,
    table_attribute_precision,
)
from repro.lake.datalake import AttributeRef
from repro.tables.table import Table


@pytest.fixture
def ground_truth():
    truth = GroundTruth()
    truth.add_table("target", {"City": "city", "Practice": "practice_name"})
    truth.add_table("related_1", {"Town": "city"})
    truth.add_table("related_2", {"GP": "practice_name", "Area": "city"})
    truth.add_table("unrelated", {"Route": "route"})
    truth.mark_related("target", "related_1")
    truth.mark_related("target", "related_2")
    return truth


@pytest.fixture
def answer():
    return RankedAnswer(
        target_name="target",
        requested_k=3,
        results=[
            RankedTable(
                "related_1",
                0.9,
                [Alignment("City", AttributeRef("related_1", "Town"), 0.9)],
            ),
            RankedTable(
                "unrelated",
                0.6,
                [Alignment("City", AttributeRef("unrelated", "Route"), 0.6)],
            ),
            RankedTable(
                "related_2",
                0.5,
                [
                    Alignment("Practice", AttributeRef("related_2", "GP"), 0.5),
                    Alignment("City", AttributeRef("related_2", "GP"), 0.2),
                ],
            ),
        ],
    )


class TestPrecisionRecall:
    def test_perfect_at_k_one(self, answer, ground_truth):
        precision, recall = precision_recall_at_k(answer, ground_truth, "target", 1)
        assert precision == 1.0
        assert recall == pytest.approx(0.5)

    def test_mixed_at_k_two(self, answer, ground_truth):
        precision, recall = precision_recall_at_k(answer, ground_truth, "target", 2)
        assert precision == pytest.approx(0.5)
        assert recall == pytest.approx(0.5)

    def test_full_answer(self, answer, ground_truth):
        precision, recall = precision_recall_at_k(answer, ground_truth, "target", 3)
        assert precision == pytest.approx(2 / 3)
        assert recall == 1.0

    def test_empty_answer(self, ground_truth):
        empty = RankedAnswer("target", 3, [])
        precision, recall = precision_recall_at_k(empty, ground_truth, "target", 3)
        assert precision == 0.0
        assert recall == 0.0

    def test_target_without_relevant_tables(self, answer):
        truth = GroundTruth()
        truth.add_table("target", {})
        precision, recall = precision_recall_at_k(answer, truth, "target", 2)
        assert precision == 0.0
        assert recall == 0.0


class TestAttributePrecision:
    def test_single_table_precision(self, answer, ground_truth):
        result = answer.results[2]
        # Practice->GP correct, City->GP incorrect: precision 0.5.
        assert table_attribute_precision(result, ground_truth, "target") == pytest.approx(0.5)

    def test_table_without_alignments(self, ground_truth):
        result = RankedTable("related_1", 0.5, [])
        assert table_attribute_precision(result, ground_truth, "target") is None

    def test_average_over_top_k(self, answer, ground_truth):
        # k=3: precisions are 1.0 (related_1), 0.0 (unrelated), 0.5 (related_2).
        value = attribute_precision_at_k(answer, ground_truth, "target", 3)
        assert value == pytest.approx((1.0 + 0.0 + 0.5) / 3)

    def test_average_at_k_one(self, answer, ground_truth):
        assert attribute_precision_at_k(answer, ground_truth, "target", 1) == 1.0

    def test_empty_answer_gives_zero(self, ground_truth):
        empty = RankedAnswer("target", 3, [])
        assert attribute_precision_at_k(empty, ground_truth, "target", 3) == 0.0


class TestAttributePrecisionWithJoins:
    def test_joined_tables_can_repair_bad_alignments(self, answer, ground_truth):
        # 'unrelated' (wrong City alignment) is augmented by a join path to
        # 'related_1' whose City alignment is correct, so its City group
        # becomes a true positive.
        joined = {"unrelated": {"related_1"}}
        with_joins = attribute_precision_with_joins(
            answer, joined, ground_truth, "target", 2
        )
        without = attribute_precision_at_k(answer, ground_truth, "target", 2)
        assert with_joins > without

    def test_no_join_tables_matches_plain_metric_at_k_one(self, answer, ground_truth):
        assert attribute_precision_with_joins(
            answer, {}, ground_truth, "target", 1
        ) == attribute_precision_at_k(answer, ground_truth, "target", 1)

    def test_empty_answer(self, ground_truth):
        empty = RankedAnswer("target", 3, [])
        assert attribute_precision_with_joins(empty, {}, ground_truth, "target", 2) == 0.0


class TestAverageOverTargets:
    def test_averages_tuples(self):
        targets = [
            Table.from_dict("a", {"x": ["1"]}),
            Table.from_dict("b", {"x": ["2"]}),
        ]
        values = {"a": (1.0, 0.0), "b": (0.0, 1.0)}
        result = average_over_targets(lambda table: values[table.name], targets)
        assert result == (0.5, 0.5)

    def test_empty_targets(self):
        assert average_over_targets(lambda table: (1.0,), []) == ()
