"""Unionability discovery over an open-government-style data lake.

This example mirrors the paper's main evaluation workflow:

1. generate a "Smaller Real"-style corpus — families of dirty tables about GP
   practices, schools, businesses, transport and council services, with the
   relatedness ground truth recorded during generation;
2. index the lake with D3L (corpus-trained word embeddings, trained subject-
   attribute classifier, Equation 3 weights trained on the ground truth);
3. pick a target table, retrieve its k most related datasets, and compare the
   answer against the ground truth (precision / recall at k);
4. materialise the union of the discovered tables into the target schema —
   the downstream "populate the target" step that motivates the paper.

Run with::

    python examples/union_search_open_data.py
"""

from __future__ import annotations

from repro.core.api import DiscoverySession, QueryRequest
from repro.core.config import D3LConfig
from repro.datagen.real_benchmark import RealBenchmarkConfig, generate_real_benchmark
from repro.evaluation.experiments import build_engine_suite
from repro.evaluation.metrics import precision_recall_at_k
from repro.tables.operations import union


def main() -> None:
    corpus = generate_real_benchmark(
        RealBenchmarkConfig(
            num_families=10,
            tables_per_family=6,
            min_rows=25,
            max_rows=80,
            dirtiness=0.35,
            seed=77,
        )
    )
    print(f"Generated lake '{corpus.lake.name}' with {len(corpus.lake)} tables")
    print(f"Average ground-truth answer size: {corpus.average_answer_size():.1f}\n")

    suite = build_engine_suite(
        corpus,
        systems=("d3l",),
        config=D3LConfig(num_hashes=128, embedding_dimension=48),
        train_weights=True,
        weight_training_targets=10,
    )
    engine = suite.d3l
    print("Trained Equation 3 weights:")
    for evidence, weight in engine.weights.values.items():
        print(f"  {evidence.value}: {weight:.3f}")

    target = corpus.pick_targets(1, seed=5)[0]
    k = 5
    print(f"\nTarget: {target.name}  (attributes: {target.column_names})")
    session = DiscoverySession(engine)
    answer = session.submit(QueryRequest(target=target, k=k, explain=True))

    precision, recall = precision_recall_at_k(answer, corpus.ground_truth, target.name, k)
    print(f"\nTop-{k} related datasets (precision={precision:.2f}, recall={recall:.2f}):")
    for rank, result in enumerate(answer.top(), start=1):
        related = corpus.ground_truth.is_related(target.name, result.table_name)
        flag = "RELATED" if related else "unrelated"
        print(f"  {rank}. {result.table_name:<35s} distance={result.distance:.3f}  [{flag}]")

    # Populate the target from the discovered unionable tables.
    top_tables = []
    alignments = []
    for result in answer.top(3):
        table = corpus.lake.table(result.table_name)
        mapping = {match.target_attribute: match.source.column for match in result.matches}
        top_tables.append(table)
        alignments.append(mapping)
    populated = union(target.column_names, top_tables, alignments, name="populated_target")
    print(f"\nPopulated target with {populated.cardinality} rows from the top 3 tables.")
    print("First rows:")
    for row in populated.head(5):
        print("  ", row)


if __name__ == "__main__":
    main()
