"""A synthetic knowledge base standing in for YAGO in the TUS baseline.

The TUS system maps each token of each instance value into YAGO to obtain
class annotations, and measures *semantic unionability* as the overlap of the
class sets of two attributes.  The D3L paper identifies exactly this
per-token knowledge-base mapping as TUS's main indexing and search cost.

Offline, YAGO is unavailable; :class:`KnowledgeBase` provides the same
interface over a synthetic ontology built from the corpus vocabulary
(:func:`repro.datagen.corpus.build_knowledge_base`): tokens map to one or
more classes (``place``, ``organisation``, ``city``, ...), unknown tokens map
to nothing.  The lookup cost profile — one dictionary probe per token of
every value — matches what makes TUS slow in the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Set

from repro.text.tokenizer import tokenize


class KnowledgeBase:
    """Token-to-class mappings with YAGO-style lookup semantics."""

    def __init__(self) -> None:
        self._token_classes: Dict[str, Set[str]] = {}
        self._entity_count = 0

    def __len__(self) -> int:
        return len(self._token_classes)

    @property
    def entity_count(self) -> int:
        """Number of entity strings registered."""
        return self._entity_count

    @property
    def classes(self) -> Set[str]:
        """Every class name known to the knowledge base."""
        result: Set[str] = set()
        for classes in self._token_classes.values():
            result.update(classes)
        return result

    def add_entity(self, value: str, classes: Sequence[str]) -> None:
        """Register an entity string under the given classes.

        Every token of the value becomes a handle for the classes, which is
        how YAGO lookups behave for multi-word entities.
        """
        class_set = set(classes)
        if not class_set:
            raise ValueError("an entity needs at least one class")
        self._entity_count += 1
        for token in tokenize(value):
            self._token_classes.setdefault(token, set()).update(class_set)

    def classes_of_token(self, token: str) -> Set[str]:
        """Classes of a single token (empty set when unknown)."""
        return set(self._token_classes.get(token.lower(), set()))

    def classes_of_value(self, value: str) -> Set[str]:
        """Union of the classes of every token of a value."""
        result: Set[str] = set()
        for token in tokenize(value):
            result.update(self._token_classes.get(token, set()))
        return result

    def annotate_extent(self, values: Iterable[str]) -> Set[str]:
        """Class annotations of an attribute extent (one lookup per token).

        This is deliberately implemented as a per-value, per-token loop (no
        batching) to reproduce the cost profile the paper attributes to TUS's
        reliance on YAGO.
        """
        annotations: Set[str] = set()
        for value in values:
            annotations.update(self.classes_of_value(str(value)))
        return annotations

    def coverage(self, values: Iterable[str]) -> float:
        """Fraction of tokens of the extent that have at least one class."""
        total = 0
        known = 0
        for value in values:
            for token in tokenize(str(value)):
                total += 1
                if token in self._token_classes:
                    known += 1
        if total == 0:
            return 0.0
        return known / total
