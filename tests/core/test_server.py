"""Tests for the ``repro serve`` discovery service (``core/server.py``).

The server must answer exactly like an in-process
:class:`~repro.core.api.DiscoverySession` — byte-for-byte on the wire — and
shut down leak-free (the suite-wide autouse fixture audits shared-memory
segments and child processes around every test).
"""

import http.client
import json
import threading

import pytest

from repro.core.api import (
    DiscoverySession,
    QueryRequest,
    QueryResponse,
    query_request_to_wire,
)
from repro.core.server import SERVER_NAME, DiscoveryServer, index_status


@pytest.fixture()
def server(indexed_d3l):
    with DiscoveryServer(indexed_d3l, port=0, workers=2) as running:
        yield running


def _request(server, method, path, body=None):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        connection.request(
            method,
            path,
            body=None if body is None else json.dumps(body),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def _oracle_payload(engine, request):
    with DiscoverySession(engine) as oracle:
        return oracle.submit(request).truncated().to_dict()


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = _request(server, "GET", "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "server": SERVER_NAME}

    def test_index_status_reports_engine_state(self, server, indexed_d3l):
        status, payload = _request(server, "GET", "/index-status")
        assert status == 200
        assert payload["lake"]["tables"] == len(indexed_d3l.indexes.table_profiles)
        assert payload["lake"]["attributes"] == len(indexed_d3l.indexes.profiles)
        assert payload["version"] == indexed_d3l.indexes.version
        assert payload["workers"] == 2
        assert payload["snapshot"]["backing"] in ("shm", "file")
        assert set(payload["cache"]) == {"hits", "misses", "size", "capacity"}
        assert payload["index_bytes"] == {
            key: int(value)
            for key, value in indexed_d3l.indexes.index_bytes().items()
        }

    def test_index_status_helper_aggregates_session_caches(self, indexed_d3l):
        sessions = [DiscoverySession(indexed_d3l) for _ in range(3)]
        payload = index_status(indexed_d3l, sessions)
        assert payload["cache"]["capacity"] == sum(
            session.profile_cache_size for session in sessions
        )


class TestQueryEquivalence:
    @pytest.mark.parametrize("explain", [False, True])
    def test_served_response_is_bit_identical_to_in_process(
        self, server, indexed_d3l, small_synthetic_benchmark, explain
    ):
        target = small_synthetic_benchmark.lake.tables[0]
        request = QueryRequest(target=target, k=5, explain=explain)
        status, payload = _request(
            server, "POST", "/query", query_request_to_wire(request)
        )
        assert status == 200
        assert payload == _oracle_payload(indexed_d3l, request)
        restored = QueryResponse.from_dict(payload)
        assert restored.to_dict() == payload

    def test_evidence_subset_and_joins_travel(
        self, server, indexed_d3l, small_synthetic_benchmark
    ):
        target = small_synthetic_benchmark.lake.tables[1]
        request = QueryRequest(target=target, k=5, evidence=["N", "V"], joins=True)
        status, payload = _request(
            server, "POST", "/query", query_request_to_wire(request)
        )
        assert status == 200
        assert payload["evidence"] == ["N", "V"]
        assert payload["join_paths"] is not None
        assert payload == _oracle_payload(indexed_d3l, request)

    def test_attribute_level_requests_travel(
        self, server, indexed_d3l, small_synthetic_benchmark
    ):
        target = small_synthetic_benchmark.lake.tables[2]
        request = QueryRequest(
            target=target, k=3, attributes=(target.columns[0].name,)
        )
        status, payload = _request(
            server, "POST", "/query", query_request_to_wire(request)
        )
        assert status == 200
        assert payload["mode"] == "attributes"
        assert payload == _oracle_payload(indexed_d3l, request)

    def test_process_fanout_request_is_leak_free(
        self, server, indexed_d3l, small_synthetic_benchmark
    ):
        # workers=2 spins a shared-memory snapshot and a process pool inside
        # the served engine; the autouse leak fixture asserts both are gone
        # once the server (and with it the engine) is closed.
        target = small_synthetic_benchmark.lake.tables[0]
        request = QueryRequest(target=target, k=5, workers=2)
        status, payload = _request(
            server, "POST", "/query", query_request_to_wire(request)
        )
        assert status == 200
        assert payload == _oracle_payload(indexed_d3l, request)

    def test_concurrent_clients_all_get_oracle_answers(
        self, server, indexed_d3l, small_synthetic_benchmark
    ):
        targets = small_synthetic_benchmark.lake.tables[:3]
        requests = [QueryRequest(target=target, k=5) for target in targets]
        expected = [_oracle_payload(indexed_d3l, request) for request in requests]
        results = {}
        errors = []

        def client(worker):
            try:
                for index, request in enumerate(requests):
                    status, payload = _request(
                        server, "POST", "/query", query_request_to_wire(request)
                    )
                    assert status == 200
                    results[(worker, index)] = payload
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=client, args=(worker,)) for worker in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for (worker, index), payload in results.items():
            assert payload == expected[index], (worker, index)


class TestErrorHandling:
    def test_invalid_json_is_400(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            connection.request(
                "POST", "/query", body="{not json", headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert "invalid JSON" in payload["error"]

    def test_missing_body_is_400(self, server):
        status, payload = _request(server, "POST", "/query")
        assert status == 400
        assert "body" in payload["error"]

    def test_validation_errors_are_400_with_the_api_message(
        self, server, small_synthetic_benchmark
    ):
        target = small_synthetic_benchmark.lake.tables[0]
        wire = query_request_to_wire(QueryRequest(target=target, k=5))
        wire["evidence"] = ["bogus"]
        status, payload = _request(server, "POST", "/query", wire)
        assert status == 400
        assert "unknown evidence type" in payload["error"]

    def test_unknown_request_field_is_400(self, server, small_synthetic_benchmark):
        target = small_synthetic_benchmark.lake.tables[0]
        wire = query_request_to_wire(QueryRequest(target=target, k=5))
        wire["answer_size"] = 3
        status, payload = _request(server, "POST", "/query", wire)
        assert status == 400
        assert "answer_size" in payload["error"]

    def test_unknown_paths_are_404(self, server):
        assert _request(server, "GET", "/nope")[0] == 404
        assert _request(server, "POST", "/nope", {})[0] == 404


class TestLifecycle:
    def test_close_is_idempotent_and_final(self, indexed_d3l):
        server = DiscoveryServer(indexed_d3l, port=0, workers=1)
        server.start()
        assert _request(server, "GET", "/healthz")[0] == 200
        server.close()
        server.close()
        assert server.closed
        with pytest.raises(RuntimeError):
            server.start()
        with pytest.raises(OSError):
            _request(server, "GET", "/healthz")

    def test_context_manager_starts_and_closes(self, indexed_d3l):
        with DiscoveryServer(indexed_d3l, port=0, workers=1) as server:
            assert _request(server, "GET", "/healthz")[0] == 200
        assert server.closed

    def test_close_without_start_releases_the_socket(self, indexed_d3l):
        server = DiscoveryServer(indexed_d3l, port=0, workers=1)
        port = server.port
        server.close()
        assert port > 0
        assert server.closed

    def test_submit_matches_http_payload(
        self, server, small_synthetic_benchmark
    ):
        target = small_synthetic_benchmark.lake.tables[0]
        request = QueryRequest(target=target, k=5)
        direct = server.submit(request)
        status, payload = _request(
            server, "POST", "/query", query_request_to_wire(request)
        )
        assert status == 200
        assert payload == direct

    def test_rejects_non_positive_workers(self, indexed_d3l):
        with pytest.raises(ValueError):
            DiscoveryServer(indexed_d3l, port=0, workers=0)


@pytest.fixture()
def process_server(small_synthetic_benchmark, fast_config):
    from repro.core.discovery import D3L
    from repro.lake.datalake import DataLake

    engine = D3L(config=fast_config)
    engine.index_lake(
        DataLake("process-served", small_synthetic_benchmark.lake.tables[:8])
    )
    # close() owns the engine on the process backend (mirrors session.close()
    # reaping it on the thread backend), so no teardown close here.
    with DiscoveryServer(
        engine, port=0, workers=2, backend="process"
    ) as running:
        yield running


class TestProcessBackendEquivalence:
    """``--backend process`` must be indistinguishable on the wire.

    Worker processes each hold a read-only attachment of the shared snapshot
    plus a mirror engine/session; every payload they produce must be
    byte-identical to an in-process :class:`DiscoverySession` over the live
    engine, including explain traces, evidence subsets, join paths,
    attribute mode, and nested ``workers>1`` fan-out inside the worker.
    """

    def test_rejects_unknown_backend(self, indexed_d3l):
        with pytest.raises(ValueError):
            DiscoveryServer(indexed_d3l, port=0, workers=2, backend="quantum")

    def test_index_status_reports_process_backend(self, process_server):
        status, payload = _request(process_server, "GET", "/index-status")
        assert status == 200
        assert payload["backend"] == "process"
        assert payload["workers"] == 2
        assert payload["version"] == process_server.engine.indexes.version
        assert set(payload["cache"]) == {"hits", "misses", "size", "capacity"}

    @pytest.mark.parametrize("explain", [False, True])
    def test_served_response_is_bit_identical_to_in_process(
        self, process_server, small_synthetic_benchmark, explain
    ):
        target = small_synthetic_benchmark.lake.tables[0]
        request = QueryRequest(target=target, k=5, explain=explain)
        status, payload = _request(
            process_server, "POST", "/query", query_request_to_wire(request)
        )
        assert status == 200
        assert payload == _oracle_payload(process_server.engine, request)
        restored = QueryResponse.from_dict(payload)
        assert restored.to_dict() == payload

    def test_evidence_joins_attributes_and_nested_fanout_travel(
        self, process_server, small_synthetic_benchmark
    ):
        tables = small_synthetic_benchmark.lake.tables[:8]
        requests = [
            QueryRequest(target=tables[1], k=5, evidence=["N", "V"], joins=True),
            QueryRequest(target=tables[2], k=3, attributes=(tables[2].columns[0].name,)),
            # Nested fan-out: the serving worker process spawns its own
            # process pool (workers must be non-daemonic for this).
            QueryRequest(target=tables[0], k=5, workers=2),
        ]
        for request in requests:
            status, payload = _request(
                process_server, "POST", "/query", query_request_to_wire(request)
            )
            assert status == 200
            assert payload == _oracle_payload(process_server.engine, request)

    def test_submit_matches_http_payload(self, process_server, small_synthetic_benchmark):
        target = small_synthetic_benchmark.lake.tables[0]
        request = QueryRequest(target=target, k=5)
        direct = process_server.submit(request)
        status, payload = _request(
            process_server, "POST", "/query", query_request_to_wire(request)
        )
        assert status == 200
        assert payload == direct

    def test_validation_errors_travel_back_as_400(
        self, process_server, small_synthetic_benchmark
    ):
        target = small_synthetic_benchmark.lake.tables[0]
        wire = query_request_to_wire(QueryRequest(target=target, k=5))
        wire["evidence"] = ["bogus"]
        status, payload = _request(process_server, "POST", "/query", wire)
        assert status == 400
        assert "unknown evidence type" in payload["error"]

    def test_mutations_ship_to_workers_as_deltas(
        self, process_server, small_synthetic_benchmark
    ):
        extra = small_synthetic_benchmark.lake.tables[10].with_name("served_extra")
        request = QueryRequest(target=extra, k=5, exclude_self=False)
        wire = query_request_to_wire(request)

        status, payload = _request(process_server, "POST", "/query", wire)
        assert status == 200
        assert "served_extra" not in [r["table"] for r in payload["results"]]
        pids_before = sorted(process_server.worker_pids())

        process_server.engine.index_table(extra)
        status, payload = _request(process_server, "POST", "/query", wire)
        assert status == 200
        assert "served_extra" in [r["table"] for r in payload["results"]]
        assert payload == _oracle_payload(process_server.engine, request)

        process_server.engine.remove_table("served_extra")
        status, payload = _request(process_server, "POST", "/query", wire)
        assert status == 200
        assert "served_extra" not in [r["table"] for r in payload["results"]]
        assert payload == _oracle_payload(process_server.engine, request)
        # Small mutations refresh live workers via journal deltas — the
        # worker fleet must not have been respawned.
        assert sorted(process_server.worker_pids()) == pids_before


class TestChurnUnderLoad:
    """Interleaved mutations and concurrent query traffic, both backends.

    Extends :class:`TestMutationVisibility`: while client threads hammer
    ``/query`` with a steady request, the main thread adds and removes
    tables and asserts — between each mutation — that ``/index-status``
    tracks the version and that a fresh query reflects the post-mutation
    lake exactly (oracle-equal).  The mutation count stays far below the
    journal window so the delta path, not a respawn, is what's exercised.
    """

    @pytest.fixture(params=["thread", "process"])
    def churn_server(self, request, small_synthetic_benchmark, fast_config):
        from repro.core.discovery import D3L
        from repro.lake.datalake import DataLake

        engine = D3L(config=fast_config)
        engine.index_lake(
            DataLake("churn", small_synthetic_benchmark.lake.tables[:8])
        )
        with DiscoveryServer(
            engine, port=0, workers=2, backend=request.param
        ) as running:
            yield running
        if request.param == "thread":
            engine.close()

    def test_mutations_stay_fresh_under_concurrent_traffic(
        self, churn_server, small_synthetic_benchmark
    ):
        steady_target = small_synthetic_benchmark.lake.tables[0]
        steady_wire = query_request_to_wire(QueryRequest(target=steady_target, k=3))
        stop = threading.Event()
        errors = []

        def client():
            while not stop.is_set():
                try:
                    status, payload = _request(
                        churn_server, "POST", "/query", steady_wire
                    )
                    assert status == 200, payload
                    assert payload["results"]
                except Exception as error:  # noqa: BLE001 - surfaced below
                    errors.append(error)
                    return

        threads = [threading.Thread(target=client) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            _, before = _request(churn_server, "GET", "/index-status")
            base_version = before["version"]
            donor = small_synthetic_benchmark.lake.tables[10]
            for round_number in range(3):
                name = f"churn_table_{round_number}"
                extra = donor.with_name(name)
                probe = QueryRequest(target=extra, k=5, exclude_self=False)
                probe_wire = query_request_to_wire(probe)

                churn_server.engine.index_table(extra)
                status, payload = _request(
                    churn_server, "POST", "/query", probe_wire
                )
                assert status == 200
                assert name in [r["table"] for r in payload["results"]]
                assert payload == _oracle_payload(churn_server.engine, probe)
                _, tracked = _request(churn_server, "GET", "/index-status")
                assert tracked["version"] == base_version + 2 * round_number + 1

                churn_server.engine.remove_table(name)
                status, payload = _request(
                    churn_server, "POST", "/query", probe_wire
                )
                assert status == 200
                assert name not in [r["table"] for r in payload["results"]]
                assert payload == _oracle_payload(churn_server.engine, probe)
                _, tracked = _request(churn_server, "GET", "/index-status")
                assert tracked["version"] == base_version + 2 * round_number + 2
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors


class TestMutationVisibility:
    """A live server must reflect lake mutations on the very next request.

    Regression coverage for the mutation path: ``GET /index-status`` and
    ``POST /query`` are served off the engine's live indexes and the
    per-session profile caches evict per mutated table, so neither endpoint
    may answer from pre-mutation state.  Uses a private engine — the shared
    ``indexed_d3l`` fixture is session-scoped and must stay pristine.
    """

    @pytest.fixture()
    def mutable_server(self, small_synthetic_benchmark, fast_config):
        from repro.core.discovery import D3L
        from repro.lake.datalake import DataLake

        engine = D3L(config=fast_config)
        engine.index_lake(
            DataLake("mutable", small_synthetic_benchmark.lake.tables[:8])
        )
        with DiscoveryServer(engine, port=0, workers=2) as running:
            yield running

    def test_index_status_tracks_mutations(
        self, mutable_server, small_synthetic_benchmark
    ):
        _, before = _request(mutable_server, "GET", "/index-status")
        extra = small_synthetic_benchmark.lake.tables[10].with_name("served_extra")
        mutable_server.engine.index_table(extra)
        _, after = _request(mutable_server, "GET", "/index-status")
        assert after["version"] == before["version"] + 1
        assert after["lake"]["tables"] == before["lake"]["tables"] + 1
        assert after["lake"]["attributes"] > before["lake"]["attributes"]
        mutable_server.engine.remove_table("served_extra")
        _, final = _request(mutable_server, "GET", "/index-status")
        assert final["version"] == before["version"] + 2
        assert final["lake"] == before["lake"]

    def test_query_sees_added_and_removed_tables(
        self, mutable_server, small_synthetic_benchmark
    ):
        extra = small_synthetic_benchmark.lake.tables[10].with_name("served_extra")
        request = QueryRequest(target=extra, k=5, exclude_self=False)
        wire = query_request_to_wire(request)

        status, payload = _request(mutable_server, "POST", "/query", wire)
        assert status == 200
        assert "served_extra" not in [r["table"] for r in payload["results"]]

        mutable_server.engine.index_table(extra)
        status, payload = _request(mutable_server, "POST", "/query", wire)
        assert status == 200
        served_tables = [r["table"] for r in payload["results"]]
        assert "served_extra" in served_tables
        # The served answer must equal a fresh in-process oracle over the
        # post-mutation engine (cache staleness would diverge here).
        assert payload == _oracle_payload(mutable_server.engine, request)

        mutable_server.engine.remove_table("served_extra")
        status, payload = _request(mutable_server, "POST", "/query", wire)
        assert status == 200
        assert "served_extra" not in [r["table"] for r in payload["results"]]
        assert payload == _oracle_payload(mutable_server.engine, request)
