"""Classic banded LSH index with a similarity threshold.

Signatures (MinHash hash values or SimHash bits) are split into ``b`` bands
of ``r`` rows; two items collide when they agree on all rows of at least one
band.  The band/row split is chosen to approximate the configured similarity
threshold (0.7 in the paper's experiments).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.lsh.hashing import stable_uint64


def _false_positive_weight(threshold: float, bands: int, rows: int) -> float:
    """Integral of the collision probability below the threshold."""
    xs = np.linspace(0.0, threshold, 64)
    probabilities = 1.0 - (1.0 - xs ** rows) ** bands
    return float(np.trapezoid(probabilities, xs))


def _false_negative_weight(threshold: float, bands: int, rows: int) -> float:
    """Integral of the miss probability above the threshold."""
    xs = np.linspace(threshold, 1.0, 64)
    probabilities = (1.0 - xs ** rows) ** bands
    return float(np.trapezoid(probabilities, xs))


def optimal_bands(
    threshold: float,
    num_hashes: int,
    false_positive_weight: float = 0.5,
    false_negative_weight: float = 0.5,
) -> Tuple[int, int]:
    """Choose the (bands, rows) split minimising weighted FP/FN error.

    Mirrors the parameter-optimisation procedure used by standard MinHash-LSH
    implementations; the paper relies on the same behaviour via LSH Forest
    configured with threshold 0.7.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must be in (0, 1)")
    if num_hashes <= 0:
        raise ValueError("num_hashes must be positive")
    best: Optional[Tuple[float, int, int]] = None
    for bands in range(1, num_hashes + 1):
        rows = num_hashes // bands
        if rows == 0:
            break
        error = (
            false_positive_weight * _false_positive_weight(threshold, bands, rows)
            + false_negative_weight * _false_negative_weight(threshold, bands, rows)
        )
        if best is None or error < best[0]:
            best = (error, bands, rows)
    assert best is not None
    return best[1], best[2]


class LSHIndex:
    """Threshold-tuned banded LSH index over signature arrays.

    Keys are arbitrary hashable identifiers (the reproduction uses
    ``"table.column"`` strings).  The index stores signatures so that
    candidate retrieval can be followed by distance estimation without going
    back to the raw data — this is precisely how D3L turns index lookups into
    relatedness measurements.
    """

    def __init__(
        self,
        threshold: float = 0.7,
        num_hashes: int = 256,
        bands: Optional[int] = None,
        rows: Optional[int] = None,
        seed: int = 7,
    ) -> None:
        self.threshold = threshold
        self.num_hashes = num_hashes
        self.seed = seed
        if bands is None or rows is None:
            bands, rows = optimal_bands(threshold, num_hashes)
        if bands * rows > num_hashes:
            raise ValueError("bands * rows cannot exceed the signature length")
        self.bands = bands
        self.rows = rows
        self._buckets: List[Dict[int, Set[Hashable]]] = [{} for _ in range(bands)]
        self._signatures: Dict[Hashable, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._signatures)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._signatures

    @property
    def keys(self) -> List[Hashable]:
        """All inserted keys."""
        return list(self._signatures)

    def signature(self, key: Hashable) -> np.ndarray:
        """Return the stored signature for ``key``."""
        return self._signatures[key]

    def _band_hashes(self, signature: np.ndarray) -> List[int]:
        hashes = []
        for band in range(self.bands):
            start = band * self.rows
            chunk = signature[start : start + self.rows]
            hashes.append(stable_uint64(chunk.tolist(), seed=self.seed + band))
        return hashes

    def insert(self, key: Hashable, signature: np.ndarray) -> None:
        """Insert (or replace) ``key`` with the given signature array."""
        signature = np.asarray(signature)
        if signature.shape[0] < self.bands * self.rows:
            raise ValueError(
                f"signature of length {signature.shape[0]} is too short for "
                f"{self.bands} bands x {self.rows} rows"
            )
        if key in self._signatures:
            self.remove(key)
        self._signatures[key] = signature
        for band, band_hash in enumerate(self._band_hashes(signature)):
            self._buckets[band].setdefault(band_hash, set()).add(key)

    def remove(self, key: Hashable) -> None:
        """Remove ``key`` from the index (no-op when absent)."""
        signature = self._signatures.pop(key, None)
        if signature is None:
            return
        for band, band_hash in enumerate(self._band_hashes(signature)):
            bucket = self._buckets[band].get(band_hash)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._buckets[band][band_hash]

    def query(self, signature: np.ndarray, exclude: Optional[Hashable] = None) -> Set[Hashable]:
        """Return candidate keys sharing at least one band with ``signature``."""
        signature = np.asarray(signature)
        candidates: Set[Hashable] = set()
        for band, band_hash in enumerate(self._band_hashes(signature)):
            bucket = self._buckets[band].get(band_hash)
            if bucket:
                candidates.update(bucket)
        if exclude is not None:
            candidates.discard(exclude)
        return candidates

    def bucket_count(self) -> int:
        """Total number of non-empty buckets across bands (space accounting)."""
        return sum(len(band_buckets) for band_buckets in self._buckets)

    def estimated_bytes(self) -> int:
        """Approximate memory footprint of signatures plus bucket structure."""
        signature_bytes = sum(sig.nbytes for sig in self._signatures.values())
        bucket_entries = sum(
            len(members) for band_buckets in self._buckets for members in band_buckets.values()
        )
        # Each bucket entry costs roughly a hash key (8 bytes) plus a pointer.
        return int(signature_bytes + self.bucket_count() * 8 + bucket_entries * 8)

    def items(self) -> Iterable[Tuple[Hashable, np.ndarray]]:
        """Iterate over (key, signature) pairs."""
        return self._signatures.items()
