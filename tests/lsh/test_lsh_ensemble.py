"""Tests for the LSH Ensemble containment index."""

import pytest

from repro.lsh.lsh_ensemble import LSHEnsemble
from repro.lsh.minhash import MinHashFactory


@pytest.fixture
def factory():
    return MinHashFactory(num_perm=128, seed=9)


def _tokens(prefix, count):
    return {f"{prefix}{i}" for i in range(count)}


class TestLifecycle:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            LSHEnsemble(threshold=0.0)

    def test_rejects_bad_partitions(self):
        with pytest.raises(ValueError):
            LSHEnsemble(num_partitions=0)

    def test_insert_after_index_fails(self, factory):
        ensemble = LSHEnsemble(num_hashes=128)
        ensemble.insert("a", factory.from_tokens(_tokens("a", 10)), 10)
        ensemble.index()
        with pytest.raises(RuntimeError):
            ensemble.insert("b", factory.from_tokens(_tokens("b", 10)), 10)

    def test_query_before_index_fails(self, factory):
        ensemble = LSHEnsemble(num_hashes=128)
        with pytest.raises(RuntimeError):
            ensemble.query(factory.from_tokens(_tokens("a", 10)), 10)

    def test_negative_size_rejected(self, factory):
        ensemble = LSHEnsemble(num_hashes=128)
        with pytest.raises(ValueError):
            ensemble.insert("a", factory.from_tokens(_tokens("a", 10)), -1)

    def test_index_idempotent(self, factory):
        ensemble = LSHEnsemble(num_hashes=128)
        ensemble.insert("a", factory.from_tokens(_tokens("a", 10)), 10)
        ensemble.index()
        ensemble.index()
        assert len(ensemble) == 1

    def test_empty_ensemble_queries_cleanly(self, factory):
        ensemble = LSHEnsemble(num_hashes=128)
        ensemble.index()
        assert ensemble.query(factory.from_tokens(_tokens("a", 5)), 5) == set()


class TestContainmentSearch:
    def test_contained_set_is_found(self, factory):
        ensemble = LSHEnsemble(threshold=0.7, num_hashes=128, num_partitions=4)
        superset = _tokens("x", 200)
        # Sorted selection keeps the subset (and so the test) independent of
        # PYTHONHASHSEED-driven set iteration order.
        subset = set(sorted(superset)[:40])
        ensemble.insert("superset", factory.from_tokens(superset), len(superset))
        ensemble.index()
        results = ensemble.query(factory.from_tokens(subset), len(subset))
        assert "superset" in results

    def test_unrelated_set_is_not_found(self, factory):
        ensemble = LSHEnsemble(threshold=0.7, num_hashes=128, num_partitions=4)
        ensemble.insert("stored", factory.from_tokens(_tokens("a", 100)), 100)
        ensemble.index()
        results = ensemble.query(factory.from_tokens(_tokens("b", 30)), 30)
        assert results == set()

    def test_exclude_key(self, factory):
        ensemble = LSHEnsemble(threshold=0.5, num_hashes=128)
        tokens = _tokens("a", 50)
        ensemble.insert("self", factory.from_tokens(tokens), 50)
        ensemble.index()
        assert "self" not in ensemble.query(factory.from_tokens(tokens), 50, exclude="self")

    def test_skewed_sizes_partitioned(self, factory):
        ensemble = LSHEnsemble(threshold=0.7, num_hashes=128, num_partitions=3)
        small = _tokens("small", 10)
        large = _tokens("large", 500)
        ensemble.insert("small", factory.from_tokens(small), 10)
        ensemble.insert("large", factory.from_tokens(large), 500)
        ensemble.index()
        # Query with the small set itself: should match "small" exactly.
        results = ensemble.query(factory.from_tokens(small), 10)
        assert "small" in results

    def test_estimated_bytes_positive_after_index(self, factory):
        ensemble = LSHEnsemble(num_hashes=128)
        ensemble.insert("a", factory.from_tokens(_tokens("a", 10)), 10)
        ensemble.index()
        assert ensemble.estimated_bytes() > 0
