"""Tests for target coverage (Equations 4 and 5)."""

import pytest

from repro.baselines.base import Alignment, RankedAnswer, RankedTable
from repro.evaluation.coverage import (
    table_coverage,
    target_coverage_at_k,
    target_coverage_with_joins,
)
from repro.lake.datalake import AttributeRef
from repro.tables.table import Table


@pytest.fixture
def target():
    return Table.from_dict(
        "target",
        {
            "Practice": ["x"],
            "City": ["y"],
            "Postcode": ["z"],
            "Hours": ["h"],
        },
    )


@pytest.fixture
def answer():
    return RankedAnswer(
        target_name="target",
        requested_k=2,
        results=[
            RankedTable(
                "s1",
                0.9,
                [
                    Alignment("Practice", AttributeRef("s1", "Name"), 0.9),
                    Alignment("City", AttributeRef("s1", "Town"), 0.8),
                ],
            ),
            RankedTable(
                "s2",
                0.7,
                [Alignment("Postcode", AttributeRef("s2", "PostCode"), 0.7)],
            ),
            RankedTable(
                "s3",
                0.4,
                [Alignment("Hours", AttributeRef("s3", "Opening"), 0.4)],
            ),
        ],
    )


class TestTableCoverage:
    def test_counts_covered_target_attributes(self, answer, target):
        assert table_coverage(answer.results[0], target) == pytest.approx(0.5)
        assert table_coverage(answer.results[1], target) == pytest.approx(0.25)

    def test_alignments_to_unknown_target_attributes_ignored(self, target):
        result = RankedTable(
            "s", 0.5, [Alignment("NotAColumn", AttributeRef("s", "x"), 0.5)]
        )
        assert table_coverage(result, target) == 0.0


class TestCoverageAtK:
    def test_average_over_top_k(self, answer, target):
        assert target_coverage_at_k(answer, target, 2) == pytest.approx((0.5 + 0.25) / 2)

    def test_empty_answer(self, target):
        empty = RankedAnswer("target", 2, [])
        assert target_coverage_at_k(empty, target, 2) == 0.0


class TestCoverageWithJoins:
    def test_join_tables_add_coverage(self, answer, target):
        joined = {"s1": {"s3"}, "s2": set()}
        with_joins = target_coverage_with_joins(answer, joined, target, 2)
        without = target_coverage_at_k(answer, target, 2)
        # s1 gains the Hours attribute through s3: coverage (0.75 + 0.25)/2.
        assert with_joins == pytest.approx((0.75 + 0.25) / 2)
        assert with_joins > without

    def test_unknown_joined_table_ignored(self, answer, target):
        joined = {"s1": {"not_in_answer"}}
        assert target_coverage_with_joins(answer, joined, target, 2) == pytest.approx(
            target_coverage_at_k(answer, target, 2)
        )

    def test_empty_answer(self, target):
        empty = RankedAnswer("target", 2, [])
        assert target_coverage_with_joins(empty, {}, target, 2) == 0.0
