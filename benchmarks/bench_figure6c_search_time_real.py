"""Figure 6c / Experiment 6 — search time vs answer size on the real-style corpus.

The paper's observation: on the Smaller Real corpus the D3L/TUS gap narrows
because the corpus holds proportionally more numeric attributes (which TUS
ignores entirely while D3L still processes them).
"""

from conftest import REAL_KS, run_once

from repro.evaluation.experiments import experiment_search_time


def test_figure6c_search_time_real(benchmark, record_rows, real_suite):
    rows = run_once(
        benchmark,
        experiment_search_time,
        real_suite,
        ks=REAL_KS,
        num_targets=8,
        seed=9,
    )
    record_rows(
        "figure6c_search_time_real",
        rows,
        "Figure 6c: per-query search time vs k (Smaller Real style corpus)",
    )

    for row in rows:
        assert row["d3l_seconds"] > 0
        assert row["tus_seconds"] > 0
        assert row["aurum_seconds"] > 0
