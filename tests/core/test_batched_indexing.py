"""Equivalence harness for batched, table-level signature generation.

The batched index-construction pipeline must be *bit-identical* to the
per-attribute scalar path the seed implementation used: one MinHash
permutation application per attribute (fed by the uncached
``reference.scalar_hash_tokens``) and one matrix-vector product per
embedding.  These tests sweep seeds, signature sizes, and degenerate inputs
(empty token sets, zero embeddings, numeric columns) and compare every
signature byte for byte.
"""

import random

import numpy as np
import pytest

from repro.core.config import D3LConfig
from repro.core.evidence import EvidenceType
from repro.core.indexes import D3LIndexes
from repro.lsh.hashing import HashFamily, hash_tokens
from repro.lsh.minhash import MinHashFactory
from repro.lsh.random_projection import RandomProjectionFactory
from repro.lsh.reference import scalar_hash_tokens
from repro.tables.table import Table


def _token_sets(count: int, seed: int):
    """Token sets with family structure, duplicates, and empties."""
    rng = random.Random(seed)
    sets = []
    for index in range(count):
        if index % 11 == 0:
            sets.append(set())
            continue
        family = rng.randrange(6)
        size = rng.randrange(1, 60)
        sets.append({f"fam{family}-tok{t}" for t in rng.sample(range(120), size % 100 + 1)})
    return sets


class TestBatchedMinHashEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    @pytest.mark.parametrize("num_perm", [32, 128, 256])
    def test_bit_identical_to_scalar_reference(self, seed, num_perm):
        factory = MinHashFactory(num_perm=num_perm, seed=seed)
        family = HashFamily(num_perm, seed=seed)
        token_sets = _token_sets(40, seed + 100)
        batched = factory.from_tokens_batch(token_sets)
        assert len(batched) == len(token_sets)
        for signature, tokens in zip(batched, token_sets):
            # Seed path: per-token blake2b hashing, one permutation per set.
            reference = family.minhash_values(scalar_hash_tokens(tokens, seed=seed))
            assert signature.hashvalues.dtype == np.uint64
            assert np.array_equal(signature.hashvalues, reference)
            # And therefore identical to the single-set factory path.
            assert signature == factory.from_tokens(tokens)

    def test_empty_sets_yield_empty_signatures(self):
        factory = MinHashFactory(num_perm=64, seed=3)
        batched = factory.from_tokens_batch([set(), {"a"}, set()])
        assert batched[0].is_empty()
        assert not batched[1].is_empty()
        assert batched[2].is_empty()

    def test_all_empty_batch(self):
        factory = MinHashFactory(num_perm=64, seed=3)
        batched = factory.from_tokens_batch([set(), set()])
        assert all(signature.is_empty() for signature in batched)

    def test_empty_batch(self):
        assert MinHashFactory(num_perm=64, seed=3).from_tokens_batch([]) == []

    def test_block_splitting_is_invisible(self):
        """Tiny block budgets (forcing many permutation passes) change nothing."""
        seed = 5
        family = HashFamily(96, seed=seed)
        # Enough sets to clear the small-batch fallback threshold.
        hashed = [hash_tokens(tokens, seed=seed) for tokens in _token_sets(120, 9)]
        whole = family.minhash_values_batch(hashed)
        assert np.array_equal(
            whole, np.vstack([family.minhash_values(values) for values in hashed])
        )
        for budget in (1, 7, 64):
            assert np.array_equal(
                family.minhash_values_batch(hashed, block_rows=budget), whole
            )

    def test_small_batch_fallback_is_identical(self):
        family = HashFamily(64, seed=2)
        hashed = [hash_tokens(tokens, seed=2) for tokens in _token_sets(5, 3)]
        batched = family.minhash_values_batch(hashed)
        assert np.array_equal(
            batched, np.vstack([family.minhash_values(values) for values in hashed])
        )

    def test_batch_signatures_are_mutually_comparable(self):
        factory = MinHashFactory(num_perm=128, seed=2)
        tokens = {"a", "b", "c"}
        batched = factory.from_tokens_batch([tokens, tokens])
        assert batched[0].jaccard(batched[1]) == 1.0


class TestBatchedRandomProjectionEquivalence:
    @pytest.mark.parametrize("seed", [0, 9, 42])
    def test_bit_identical_to_per_vector_path(self, seed):
        rng = np.random.default_rng(seed)
        vectors = [rng.standard_normal(48) for _ in range(25)]
        vectors[3] = np.zeros(48)
        vectors[17] = np.zeros(48)
        batch_factory = RandomProjectionFactory(num_bits=128, seed=seed)
        scalar_factory = RandomProjectionFactory(num_bits=128, seed=seed)
        batched = batch_factory.from_vectors(vectors)
        for signature, vector in zip(batched, vectors):
            reference = scalar_factory.from_vector(vector)
            assert signature.bits.dtype == np.uint8
            assert np.array_equal(signature.bits, reference.bits)
            assert signature.is_zero == reference.is_zero

    def test_empty_batch(self):
        assert RandomProjectionFactory(num_bits=32, seed=1).from_vectors([]) == []

    def test_zero_vectors_flagged(self):
        factory = RandomProjectionFactory(num_bits=32, seed=1)
        batched = factory.from_vectors([np.zeros(8), np.ones(8)])
        assert batched[0].is_zero and not batched[1].is_zero


class TestTableSignatures:
    @pytest.fixture(scope="class")
    def indexes(self):
        return D3LIndexes(config=D3LConfig(num_hashes=64, num_trees=8, embedding_dimension=16))

    @pytest.fixture(scope="class")
    def mixed_table(self):
        """Textual, numeric, constant, and effectively empty columns."""
        return Table.from_dict(
            "mixed",
            {
                "City": ["Belfast", "Salford", "Manchester", "Bolton"],
                "Patients": ["1202", "3572", "2209", "1840"],
                "Blank": ["", "", "", ""],
                "Code": ["M3 6AF", "BT7 1JL", "M3 1NN", "BL3 6PY"],
            },
        )

    def test_matches_per_attribute_signatures(self, indexes, mixed_table):
        profile = indexes.profile_table(mixed_table)
        batched = indexes.table_signatures(profile)
        for name, attribute_profile in profile.attributes.items():
            scalar = indexes.signatures_for(attribute_profile)
            for evidence in EvidenceType.indexed():
                left, right = batched[name][evidence], scalar[evidence]
                if right is None:
                    assert left is None
                else:
                    assert left == right

    def test_numeric_column_has_no_value_or_embedding_signature(self, indexes, mixed_table):
        profile = indexes.profile_table(mixed_table)
        batched = indexes.table_signatures(profile)
        assert batched["Patients"][EvidenceType.VALUE] is None
        assert batched["Patients"][EvidenceType.EMBEDDING] is None
        assert batched["Patients"][EvidenceType.NAME] is not None

    def test_add_table_indexes_identically_to_scalar_construction(self, mixed_table):
        """A lake indexed through the batch path answers lookups identically
        to indexes populated attribute-by-attribute from scalar signatures."""
        config = D3LConfig(num_hashes=64, num_trees=8, embedding_dimension=16)
        batched = D3LIndexes(config=config)
        batched.add_table(mixed_table)

        scalar = D3LIndexes(config=config)
        table_profile = scalar.profile_table(mixed_table)
        scalar.table_profiles[mixed_table.name] = table_profile
        for profile in table_profile.attributes.values():
            scalar.profiles[profile.ref] = profile
            signatures = scalar.signatures_for(profile)
            for evidence in EvidenceType.indexed():
                signature = signatures[evidence]
                if signature is None:
                    continue
                scalar._signatures[evidence][profile.ref] = signature
                raw = signature.hashvalues if evidence is not EvidenceType.EMBEDDING else signature.bits
                scalar._forests[evidence].insert(profile.ref, raw)
                scalar._matrices[evidence].add(
                    profile.ref,
                    raw,
                    signature.is_empty()
                    if evidence is not EvidenceType.EMBEDDING
                    else signature.is_zero,
                )

        for evidence in EvidenceType.indexed():
            batched_state = batched._matrices[evidence].export_state()
            scalar_state = scalar._matrices[evidence].export_state()
            assert batched_state[0] == scalar_state[0]
            assert np.array_equal(batched_state[1], scalar_state[1])
            assert np.array_equal(batched_state[2], scalar_state[2])
            for profile in table_profile.attributes.values():
                vectorized = batched.lookup(evidence, profile, k=5)
                reference = scalar.lookup(evidence, profile, k=5)
                assert vectorized == reference
