"""Tests for the coordinate-descent logistic regression."""

import numpy as np
import pytest

from repro.ml.logistic_regression import LogisticRegression


def _separable_data(seed=0, n=200):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, 3))
    true_weights = np.array([2.0, -1.5, 0.5])
    logits = X @ true_weights + 0.3
    y = (logits + 0.2 * rng.standard_normal(n) > 0).astype(int)
    return X, y


class TestValidation:
    def test_rejects_negative_regularisation(self):
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)

    def test_rejects_non_2d_features(self):
        model = LogisticRegression()
        with pytest.raises(ValueError):
            model.fit(np.zeros(3), [0, 1, 0])

    def test_rejects_length_mismatch(self):
        model = LogisticRegression()
        with pytest.raises(ValueError):
            model.fit([[1.0], [2.0]], [0])

    def test_rejects_empty_training_set(self):
        model = LogisticRegression()
        with pytest.raises(ValueError):
            model.fit(np.zeros((0, 2)), [])

    def test_rejects_non_binary_labels(self):
        model = LogisticRegression()
        with pytest.raises(ValueError):
            model.fit([[1.0], [2.0]], [0, 2])

    def test_predict_before_fit_raises(self):
        model = LogisticRegression()
        with pytest.raises(RuntimeError):
            model.predict([[1.0]])


class TestFitting:
    def test_high_accuracy_on_separable_data(self):
        X, y = _separable_data()
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_coefficient_signs_recovered(self):
        X, y = _separable_data()
        model = LogisticRegression().fit(X, y)
        assert model.coef_[0] > 0
        assert model.coef_[1] < 0

    def test_probabilities_in_unit_interval(self):
        X, y = _separable_data()
        model = LogisticRegression().fit(X, y)
        probabilities = model.predict_proba(X)
        assert np.all(probabilities >= 0.0)
        assert np.all(probabilities <= 1.0)

    def test_predictions_are_binary(self):
        X, y = _separable_data()
        model = LogisticRegression().fit(X, y)
        assert set(np.unique(model.predict(X))).issubset({0, 1})

    def test_decision_threshold(self):
        X, y = _separable_data()
        model = LogisticRegression().fit(X, y)
        strict = model.predict(X, threshold=0.9).sum()
        lenient = model.predict(X, threshold=0.1).sum()
        assert strict <= lenient

    def test_converges_and_reports_iterations(self):
        X, y = _separable_data(n=100)
        model = LogisticRegression(max_iter=500, tol=1e-8).fit(X, y)
        assert 1 <= model.n_iter_ <= 500

    def test_stronger_regularisation_shrinks_coefficients(self):
        X, y = _separable_data()
        weak = LogisticRegression(l2=1e-4).fit(X, y)
        strong = LogisticRegression(l2=10.0).fit(X, y)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_constant_labels_rejected(self):
        X = np.ones((10, 2))
        with pytest.raises(ValueError):
            LogisticRegression().fit(X, np.full(10, 2))

    def test_single_class_allowed_if_binary_value(self):
        # All-zero labels are technically binary: the model should fit and
        # predict the majority class.
        X = np.random.default_rng(0).standard_normal((20, 2))
        model = LogisticRegression().fit(X, np.zeros(20, dtype=int))
        assert model.score(X, np.zeros(20, dtype=int)) == 1.0

    def test_score_on_empty_set(self):
        X, y = _separable_data(n=50)
        model = LogisticRegression().fit(X, y)
        assert model.score(np.zeros((0, 3)), []) == 0.0
