"""Table II / Experiment 7 — space overhead of the indexes.

Reports the size of each system's discovery structures relative to the lake
size, for both corpora.  The shape to reproduce: D3L occupies more space than
TUS and Aurum because it materialises four LSH indexes plus finer-grained
attribute profiles.
"""

from conftest import run_once

from repro.evaluation.experiments import experiment_space_overhead


def test_table2_space_overhead(benchmark, record_rows, synthetic_suite, real_suite):
    rows = run_once(
        benchmark,
        experiment_space_overhead,
        {"synthetic": synthetic_suite, "smaller_real": real_suite},
    )
    record_rows("table2_space_overhead", rows, "Table II: index space relative to lake size")

    for row in rows:
        assert row["d3l_overhead"] > 0
        assert row["tus_overhead"] > 0
        assert row["aurum_overhead"] > 0
        # D3L builds more indexes than either baseline.
        assert row["d3l_overhead"] >= row["tus_overhead"]
        assert row["d3l_overhead"] >= row["aurum_overhead"]
