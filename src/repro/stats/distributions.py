"""Empirical distributions and the CCDF weights of Equation 2.

Equation 2 of the paper assigns each observed distance a weight equal to the
complementary cumulative distribution function of the distance population
evaluated at that distance: ``w = 1 - P(d <= D)``, i.e. the probability that
a randomly drawn distance from the population is larger than the observed
one.  Small distances (strong signals) relative to the population receive
weights close to 1.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, List, Sequence

import numpy as np


class EmpiricalDistribution:
    """Empirical distribution of a sample of real values in [0, 1]."""

    def __init__(self, values: Iterable[float]) -> None:
        self._values: List[float] = sorted(float(v) for v in values)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> List[float]:
        """The sorted sample."""
        return list(self._values)

    def cdf(self, x: float) -> float:
        """P(d <= x) under the empirical distribution (0.0 for empty samples)."""
        if not self._values:
            return 0.0
        return bisect_right(self._values, float(x)) / len(self._values)

    def ccdf(self, x: float) -> float:
        """P(d > x): the complementary CDF used as the Equation 2 weight."""
        return 1.0 - self.cdf(x)

    def quantile(self, q: float) -> float:
        """The q-quantile of the sample (0 <= q <= 1)."""
        if not self._values:
            raise ValueError("cannot compute the quantile of an empty sample")
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        return float(np.quantile(np.asarray(self._values), q))

    def mean(self) -> float:
        """Sample mean (0.0 for empty samples)."""
        if not self._values:
            return 0.0
        return float(np.mean(self._values))


def ccdf_weight(distance: float, population: Sequence[float]) -> float:
    """Equation 2: the weight of an observed distance within its population.

    ``population`` is the set R_t of all distances of one evidence type
    between a target attribute and every related attribute in the lake.  The
    weight of a member distance is the fraction of the population strictly
    greater than it, so the smallest observed distance gets the largest
    weight.  A singleton population yields weight 1.0 so that a lone strong
    signal is not discarded.
    """
    values = [float(v) for v in population]
    if not values:
        return 1.0
    if len(values) == 1:
        return 1.0
    greater = sum(1 for v in values if v > distance)
    return greater / len(values)


def ccdf_weights_many(
    distances: Sequence[float], population: Sequence[float]
) -> np.ndarray:
    """Equation 2 weights of many observed distances at once.

    Bit-identical to calling :func:`ccdf_weight` per distance — the count of
    population members strictly greater than each distance becomes one sorted
    ``searchsorted`` pass instead of a linear scan per call — which is what
    lets the batched query engine weight whole candidate pools per sweep.
    """
    query = np.asarray(distances, dtype=np.float64)
    size = len(population)
    if size <= 1:
        return np.ones(query.shape[0], dtype=np.float64)
    ordered = np.sort(np.asarray(population, dtype=np.float64))
    greater = size - np.searchsorted(ordered, query, side="right")
    return greater / size
