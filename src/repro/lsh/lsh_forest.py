"""LSH Forest (Bawa, Condie, Ganesan 2005): self-tuning top-k similarity search.

An LSH Forest stores each item in ``num_trees`` prefix trees; each tree keys
the item by a fixed-length tuple of signature positions.  Top-k queries
descend from the longest prefix to shorter ones, so the number of candidates
adapts to the query rather than to a global threshold — this is the property
the paper relies on to keep search time largely independent of lake size.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np


class _PrefixTree:
    """One tree of the forest: a sorted list of (key tuple, item) pairs."""

    def __init__(self, key_length: int) -> None:
        self.key_length = key_length
        self._entries: List[Tuple[Tuple[int, ...], Hashable]] = []
        self._sorted = True

    def insert(self, key: Tuple[int, ...], item: Hashable) -> None:
        self._entries.append((key, item))
        self._sorted = False

    def remove(self, item: Hashable) -> None:
        self._entries = [(key, entry) for key, entry in self._entries if entry != item]

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._entries.sort(key=lambda pair: pair[0])
            self._sorted = True

    def query_prefix(self, key: Tuple[int, ...], prefix_length: int) -> List[Hashable]:
        """All items whose key agrees with ``key`` on the first ``prefix_length`` positions."""
        self._ensure_sorted()
        if prefix_length <= 0 or not self._entries:
            return []
        prefix = key[:prefix_length]
        low_key = prefix
        high_key = prefix + ((np.iinfo(np.int64).max,) * (self.key_length - prefix_length))
        keys = [entry[0] for entry in self._entries]
        low = bisect_left(keys, low_key)
        high = bisect_right(keys, high_key)
        return [self._entries[i][1] for i in range(low, high)]

    def __len__(self) -> int:
        return len(self._entries)


class LSHForest:
    """Top-k index over signature arrays.

    ``num_hashes`` positions of each signature are split across ``num_trees``
    trees, each using ``num_hashes // num_trees`` positions as its key.
    """

    def __init__(self, num_hashes: int = 256, num_trees: int = 8, seed: int = 11) -> None:
        if num_trees <= 0 or num_hashes <= 0:
            raise ValueError("num_hashes and num_trees must be positive")
        if num_hashes < num_trees:
            raise ValueError("num_hashes must be at least num_trees")
        self.num_hashes = num_hashes
        self.num_trees = num_trees
        self.key_length = num_hashes // num_trees
        self.seed = seed
        self._trees = [_PrefixTree(self.key_length) for _ in range(num_trees)]
        self._signatures: Dict[Hashable, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._signatures)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._signatures

    def _tree_keys(self, signature: np.ndarray) -> List[Tuple[int, ...]]:
        keys = []
        for tree_index in range(self.num_trees):
            start = tree_index * self.key_length
            chunk = signature[start : start + self.key_length]
            keys.append(tuple(int(value) for value in chunk))
        return keys

    def insert(self, key: Hashable, signature: np.ndarray) -> None:
        """Insert (or replace) an item keyed by ``key``."""
        signature = np.asarray(signature)
        if signature.shape[0] < self.num_hashes:
            raise ValueError(
                f"signature of length {signature.shape[0]} is shorter than num_hashes={self.num_hashes}"
            )
        if key in self._signatures:
            self.remove(key)
        self._signatures[key] = signature
        for tree, tree_key in zip(self._trees, self._tree_keys(signature)):
            tree.insert(tree_key, key)

    def remove(self, key: Hashable) -> None:
        """Remove ``key`` (no-op when absent)."""
        if key not in self._signatures:
            return
        del self._signatures[key]
        for tree in self._trees:
            tree.remove(key)

    def signature(self, key: Hashable) -> np.ndarray:
        """Stored signature for ``key``."""
        return self._signatures[key]

    def query(
        self,
        signature: np.ndarray,
        k: int,
        exclude: Optional[Hashable] = None,
    ) -> List[Hashable]:
        """Return up to ``k`` candidate keys, most-specific prefixes first.

        Candidates are collected by descending prefix length; within a prefix
        length the order is arbitrary but deterministic.  The caller is
        expected to re-rank candidates by estimated distance (as D3L does).
        """
        if k <= 0:
            return []
        signature = np.asarray(signature)
        tree_keys = self._tree_keys(signature)
        seen: Set[Hashable] = set()
        results: List[Hashable] = []
        for prefix_length in range(self.key_length, 0, -1):
            for tree, tree_key in zip(self._trees, tree_keys):
                for item in tree.query_prefix(tree_key, prefix_length):
                    if item == exclude or item in seen:
                        continue
                    seen.add(item)
                    results.append(item)
            if len(results) >= k:
                break
        return results[: max(k, 0)] if len(results) > k else results

    def query_all(self, signature: np.ndarray, exclude: Optional[Hashable] = None) -> List[Hashable]:
        """Return every key sharing at least the length-1 prefix in some tree."""
        return self.query(signature, k=len(self._signatures) + 1, exclude=exclude)

    def keys(self) -> List[Hashable]:
        """All inserted keys."""
        return list(self._signatures)

    def estimated_bytes(self) -> int:
        """Approximate memory footprint (signatures plus tree entries)."""
        signature_bytes = sum(sig.nbytes for sig in self._signatures.values())
        tree_entries = sum(len(tree) for tree in self._trees)
        per_entry = self.key_length * 8 + 8
        return int(signature_bytes + tree_entries * per_entry)
